"""Shared benchmark configuration.

Each benchmark file regenerates one paper exhibit (table or figure),
prints the same rows/series the paper reports, and asserts the *shape*
invariants (orderings, crossovers, approximate factors).  Absolute
timings are simulation outputs, so pytest-benchmark's statistics measure
the harness itself; the scientific payload is in the printed reports and
shape assertions.
"""

import pytest

from repro.config import default_config


@pytest.fixture(scope="session")
def config():
    return default_config()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "exhibit(name): paper table/figure a benchmark regenerates")
