"""Ablation (paper Section 5.1.1): GPU Host Networking vs GPU-TN.

The paper declines to simulate the helper-thread class and argues
qualitatively that GPU-TN matches its intra-kernel latency without a
dedicated CPU polling thread.  This repository implements the class
(`repro.strategies.gpu_host`) and quantifies both halves of the claim.
"""

import pytest

from repro.apps.microbench import run_microbenchmark


@pytest.mark.exhibit("ablation-5.1.1")
def test_gpu_host_vs_gputn(benchmark, config, capsys):
    def run_all():
        return {s: run_microbenchmark(config, s)
                for s in ("gputn", "gpu-host", "gds", "hdn")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for s in ("gputn", "gpu-host", "gds", "hdn"):
            r = results[s]
            extra = ""
            if s == "gpu-host":
                extra = (f"  (+ dedicated helper core, "
                         f"{r.initiator.detail['helper_thread_busy_ns']} ns "
                         "of service work for one message)")
            print(f"  {s:9s} target @ "
                  f"{r.normalized_target_completion_ns / 1000:.2f} us{extra}")

    t = {s: results[s].normalized_target_completion_ns for s in results}
    # Intra-kernel strategies beat kernel-boundary ones ...
    assert t["gpu-host"] < t["gds"] < t["hdn"]
    # ... and GPU-TN beats the helper-thread class without burning a core.
    assert t["gputn"] < t["gpu-host"]
    assert results["gpu-host"].initiator.detail["helper_thread_busy_ns"] > 0
