"""Ablation (paper Section 4.2.3): messaging granularity.

The trigger threshold/counter lets one kernel express work-item,
work-group, pair-of-work-groups and kernel-level messaging.  This
ablation runs the same 8-work-group kernel at each granularity and
compares message counts and completion times.
"""

import numpy as np
import pytest

from repro.api import (
    GpuTnEndpoint,
    kernel_level_kernel,
    mixed_granularity_kernel,
    work_group_kernel,
)
from repro.cluster import Cluster

N_WG = 8
PAYLOAD = 64


def run_granularity(config, granularity: str):
    """Returns (last delivery time, number of wire messages)."""
    cluster = Cluster(n_nodes=2, config=config, trace=False)
    ep = GpuTnEndpoint(cluster[0])
    target = cluster[1]
    send = cluster[0].host.alloc(N_WG * PAYLOAD)

    plans = {
        # (kernel fn, messages, threshold per tag, groups per message)
        "work-group": (work_group_kernel, N_WG, 1, 1),
        "pair": (mixed_granularity_kernel, N_WG // 2, 2, 2),
        "kernel": (kernel_level_kernel, 1, N_WG, N_WG),
    }
    fn, n_msgs, threshold, span = plans[granularity]
    recvs = [target.host.alloc(PAYLOAD) for _ in range(n_msgs)]

    def driver():
        ops = []
        for m in range(n_msgs):
            op = yield from ep.trig_put(send, PAYLOAD, target.name,
                                        recvs[m].addr(), tag=0x300 + m,
                                        threshold=threshold)
            ops.append(op)
        args = {"buffers": [send], "fill": 1, "work_ns": 400}
        if granularity == "kernel":
            args["tag"] = 0x300
        else:
            args["tag_base"] = 0x300
        if granularity == "pair":
            args["group_span"] = span
        yield from ep.launch(fn, n_workgroups=N_WG, **args)
        for op in ops:
            yield ep.wait_delivered(op)
        return cluster.sim.now

    p = cluster.spawn(driver())
    done = cluster.sim.run_until_event(p)
    for r in recvs:
        assert (r.view(np.uint8) == 1).all()
    return done, cluster[0].nic.stats["tx_ops"]


@pytest.mark.exhibit("ablation-4.2.3")
@pytest.mark.parametrize("granularity", ("work-group", "pair", "kernel"))
def test_granularity_point(benchmark, config, granularity):
    done, n_msgs = benchmark(run_granularity, config, granularity)
    expected = {"work-group": N_WG, "pair": N_WG // 2, "kernel": 1}
    assert n_msgs == expected[granularity]


@pytest.mark.exhibit("ablation-4.2.3")
def test_granularity_tradeoff(benchmark, config, capsys):
    """Coarser granularity sends fewer messages but the first byte lands
    later (must wait for more work-groups); finer granularity overlaps
    earlier at the cost of more NIC operations."""
    def sweep():
        return {g: run_granularity(config, g)
                for g in ("work-group", "pair", "kernel")}

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for g, (done, msgs) in data.items():
            print(f"  {g:10s}: {msgs} messages, all delivered @ "
                  f"{done / 1000:.2f} us")

    msgs = {g: m for g, (_, m) in data.items()}
    assert msgs["work-group"] > msgs["pair"] > msgs["kernel"]
