"""Ablation (paper Section 3.3): trigger-list lookup organizations.

The paper bounds its prototype to 16 simultaneous trigger entries so an
associative lookup suffices, and notes a hash table avoids "extensive
list traversals" otherwise.  This ablation drives a trigger storm (many
active tags, many writes) through all three organizations and compares
the simulated NIC trigger-processing time.
"""

import pytest

from repro.cluster import Cluster
from repro.config import NicConfig, default_config


def run_trigger_storm(config, n_tags: int, writes_per_tag: int = 4) -> int:
    """All tags registered, then a burst of writes; returns drain time."""
    cluster = Cluster(n_nodes=2, config=config, trace=False)
    nic = cluster[0].nic
    src = cluster[0].host.alloc(64)
    dst = cluster[1].host.alloc(64)
    for tag in range(n_tags):
        nic.register_triggered_put(tag=tag, threshold=writes_per_tag,
                                   local_addr=src.addr(), nbytes=64,
                                   target="node1", remote_addr=dst.addr())
    for _ in range(writes_per_tag):
        for tag in range(n_tags):
            nic.mmio_write(nic.trigger_address, tag)
    cluster.run()
    assert nic.trigger_list.stats["fired"] == n_tags
    return cluster.sim.now


def config_for(kind: str, capacity):
    base = default_config()
    return base.with_(nic=NicConfig(trigger_lookup=kind,
                                    max_trigger_entries=capacity))


@pytest.mark.exhibit("ablation-3.3")
@pytest.mark.parametrize("kind", ("linked-list", "associative", "hash"))
def test_lookup_storm_16_entries(benchmark, kind):
    """At the paper's 16-entry bound all three organizations work."""
    cfg = config_for(kind, 16)
    drain = benchmark(run_trigger_storm, cfg, 16)
    assert drain > 0


@pytest.mark.exhibit("ablation-3.3")
def test_lookup_scaling_shapes(benchmark, capsys):
    """Beyond the bound: linked-list cost grows superlinearly with the
    number of active entries; hash stays near-linear."""
    def sweep():
        out = {}
        for kind in ("linked-list", "hash"):
            out[kind] = [run_trigger_storm(config_for(kind, None), n)
                         for n in (16, 64, 256)]
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for kind, times in data.items():
            print(f"  {kind:12s} drain(16/64/256 tags): "
                  + " / ".join(f"{t / 1000:.1f}us" for t in times))

    # Per-trigger cost at 256 tags vs 16 tags: the list degrades far
    # more than the hash.
    def per_trigger_growth(times):
        return (times[2] / 256) / (times[0] / 16)

    assert per_trigger_growth(data["linked-list"]) > 3.0
    assert per_trigger_growth(data["hash"]) < 2.0


@pytest.mark.exhibit("ablation-3.3")
def test_associative_capacity_is_a_real_constraint(benchmark):
    """The associative organization cannot exceed its CAM bound."""
    from repro.nic.lookup import TriggerListFull

    cfg = config_for("associative", 16)

    def overflow():
        with pytest.raises(TriggerListFull):
            run_trigger_storm(cfg, 17)
        return True

    assert benchmark.pedantic(overflow, rounds=1, iterations=1)
