"""Ablation (paper Section 3.2): relaxed synchronization.

The GPU may trigger operations the CPU has not yet registered; the NIC
absorbs early triggers into placeholder entries and fires on late
registration.  This ablation sweeps how late the CPU posts the operation
(relative to kernel launch) and shows that target completion is flat
while the registration lands before the in-kernel trigger would have
fired, then degrades gracefully -- instead of being incorrect.
"""

import pytest

from repro.apps.microbench import run_microbenchmark

DELAYS_NS = (0, 500, 1000, 1500, 2500, 5000, 10000)


@pytest.mark.exhibit("ablation-3.2")
def test_relaxed_sync_delay_sweep(benchmark, config, capsys):
    def sweep():
        return {
            d: run_microbenchmark(config, "gputn", overlap_post=True,
                                  post_delay_ns=d)
            for d in DELAYS_NS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for d, r in results.items():
            print(f"  post delay {d:>6} ns -> target @ "
                  f"{r.target_completion_ns / 1000:.2f} us "
                  f"(payload_ok={r.payload_ok})")

    # Correct under every interleaving -- the headline property.
    for d, r in results.items():
        assert r.payload_ok and r.memory_hazards == 0, d

    times = [results[d].target_completion_ns for d in DELAYS_NS]
    # While registration beats the trigger (< ~2 us of launch+kernel
    # work), completion time is unchanged: the post is fully hidden.
    assert times[0] == times[1] == times[2]
    # Very late posts push completion out by roughly the extra delay, no
    # more (hardware-synchronized handoff, no failure mode).
    assert times[-1] > times[0]
    assert times[-1] - times[0] <= DELAYS_NS[-1]
    # Monotone in the delay.
    assert all(a <= b for a, b in zip(times, times[1:]))


@pytest.mark.exhibit("ablation-3.2")
def test_overlap_post_not_slower_than_register_first(benchmark, config):
    def pair():
        base = run_microbenchmark(config, "gputn", overlap_post=False)
        overlap = run_microbenchmark(config, "gputn", overlap_post=True)
        return base, overlap

    base, overlap = benchmark.pedantic(pair, rounds=1, iterations=1)
    assert overlap.target_completion_ns <= base.target_completion_ns
