"""Figure 10: 8 MB ring Allreduce strong scaling (speedup vs CPU).

Paper: all GPU strategies ~1.4x at small node counts; HDN declines and
drops below the CPU near ~24 nodes; GDS declines less; GPU-TN keeps
providing speedup through 32 nodes and beyond.
"""

import pytest

from repro.analysis import figure10_report
from repro.apps.allreduce_bench import PAYLOAD_8MB, strong_scaling_study
from repro.collectives import run_ring_allreduce

NODE_COUNTS = (2, 8, 16, 24, 32)


@pytest.mark.exhibit("figure10")
def test_figure10_regenerate(benchmark, config, capsys):
    study = benchmark.pedantic(
        strong_scaling_study,
        kwargs={"config": config, "node_counts": NODE_COUNTS,
                "nbytes": PAYLOAD_8MB},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        figure10_report(node_counts=NODE_COUNTS, config=config)

    hdn = study.speedup_vs_cpu("hdn")
    gds = study.speedup_vs_cpu("gds")
    gputn = study.speedup_vs_cpu("gputn")
    # All GPU strategies beat the CPU at small node counts.
    assert hdn[0] > 1.0 and gds[0] > 1.0 and gputn[0] > 1.0
    # HDN declines monotonically and crosses below the CPU near 24 nodes.
    assert all(a >= b for a, b in zip(hdn, hdn[1:]))
    crossover = study.crossover_node_count("hdn")
    assert crossover is not None and 16 <= crossover <= 32, \
        f"paper: ~24 nodes, got {crossover}"
    # GDS and GPU-TN never drop below the CPU; GPU-TN leads at scale.
    assert study.crossover_node_count("gds") is None
    assert study.crossover_node_count("gputn") is None
    assert gputn[-1] > gds[-1] > hdn[-1]


@pytest.mark.exhibit("figure10")
@pytest.mark.parametrize("strategy", ("cpu", "hdn", "gds", "gputn"))
def test_figure10_single_point(benchmark, config, strategy):
    result = benchmark(run_ring_allreduce, config, strategy, 8, PAYLOAD_8MB)
    assert result.correct and result.memory_hazards == 0
