"""Figure 11 / Table 3: deep-learning workload projection on 8 nodes.

Paper: projected app-level speedups vary from little improvement (CIFAR)
up to ~20% over HDN and ~5% over GDS (AN4 LSTM); GPU-TN benefits most
when there are many small-to-medium collectives.
"""

import pytest

from repro.analysis import figure11_report
from repro.apps.deeplearning import WORKLOADS, project_deep_learning


@pytest.mark.exhibit("figure11")
def test_figure11_regenerate(benchmark, config, capsys):
    projections = benchmark.pedantic(
        project_deep_learning, kwargs={"config": config, "n_nodes": 8},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        figure11_report(n_nodes=8, config=config)

    for key, proj in projections.items():
        # GPU-TN fastest on every workload; Amdahl cap respected.
        assert proj.speedup["gputn"] >= proj.speedup["gds"] \
            >= proj.speedup["hdn"], key
        cap = 1 / (1 - WORKLOADS[key].pct_blocked)
        assert proj.speedup["gputn"] <= cap + 1e-9

    tn_over_hdn = {k: p.speedup_over("gputn", "hdn")
                   for k, p in projections.items()}
    # AN4 LSTM gains most; CIFAR ~nothing (paper's two named endpoints).
    assert max(tn_over_hdn, key=tn_over_hdn.get) == "an4-lstm"
    assert tn_over_hdn["cifar"] < 1.10
    assert tn_over_hdn["an4-lstm"] > 1.10
    # GPU-TN over GDS is a smaller, positive margin.
    for k, p in projections.items():
        assert 1.0 <= p.speedup_over("gputn", "gds") < 1.25, k


@pytest.mark.exhibit("figure11")
def test_figure11_single_workload(benchmark, config):
    projs = benchmark(project_deep_learning, config, ("cifar",), 4)
    assert projs["cifar"].speedup["cpu"] == pytest.approx(1.0)
