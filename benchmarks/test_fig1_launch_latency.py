"""Figure 1: kernel launch latencies vs. queued kernel commands.

Paper: per-kernel launch latency on three modern GPUs varies from
~3 us to ~20 us depending on queue depth; even the best case is 3-4 us.
"""

import pytest

from repro.analysis import figure1_report
from repro.apps.launch_study import measure_launch_latency
from repro.gpu.dispatcher import FIGURE1_GPUS

DEPTHS = (1, 4, 16, 64, 256)


@pytest.mark.exhibit("figure1")
def test_figure1_regenerate(benchmark, config, capsys):
    data = benchmark.pedantic(
        figure1_report, kwargs={"depths": DEPTHS, "config": config},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        figure1_report(depths=DEPTHS, config=config)

    # Shape assertions from the paper's text.
    for name, lat in data.items():
        assert all(a >= b for a, b in zip(lat, lat[1:])), \
            f"{name}: latency must amortize with queue depth"
        assert 3.0 <= lat[-1] <= 4.6, f"{name}: best case must be 3-4 us"
    assert 18.0 <= data["GPU 1"][0] <= 21.0, "worst case ~20 us"
    assert data["GPU 3"][0] <= 5.0, "best GPU stays near the floor"


@pytest.mark.exhibit("figure1")
@pytest.mark.parametrize("gpu", sorted(FIGURE1_GPUS))
def test_figure1_single_gpu_depth1(benchmark, config, gpu):
    model = FIGURE1_GPUS[gpu]
    per_kernel = benchmark(measure_launch_latency, config, model, 1)
    assert per_kernel == model.per_kernel_ns(1)
