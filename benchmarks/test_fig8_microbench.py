"""Figure 8: microbenchmark latency decomposition.

Paper: target completion GPU-TN 2.71 us / GDS 3.76 us / HDN 4.21 us from
kernel-launch start -- GPU-TN ~25% faster than GDS and ~35% than HDN --
and with GPU-TN the target receives data before the initiator's kernel
finishes.
"""

import pytest

from repro.analysis import figure8_report
from repro.apps.microbench import run_all_strategies, run_microbenchmark


@pytest.mark.exhibit("figure8")
def test_figure8_regenerate(benchmark, config, capsys):
    results = benchmark.pedantic(run_all_strategies, args=(config,),
                                 rounds=1, iterations=1)
    with capsys.disabled():
        print()
        figure8_report(config)

    t = {k: results[k].normalized_target_completion_ns
         for k in ("gputn", "gds", "hdn")}
    assert t["gputn"] < t["gds"] < t["hdn"]
    gain_gds = 1 - t["gputn"] / t["gds"]
    gain_hdn = 1 - t["gputn"] / t["hdn"]
    assert 0.15 <= gain_gds <= 0.35, f"paper ~25%, got {gain_gds:.0%}"
    assert 0.25 <= gain_hdn <= 0.45, f"paper ~35%, got {gain_hdn:.0%}"
    # Intra-kernel delivery property.
    r = results["gputn"]
    assert r.target_completion_ns < r.initiator.kernel_finished


@pytest.mark.exhibit("figure8")
@pytest.mark.parametrize("strategy", ("cpu", "hdn", "gds", "gputn"))
def test_figure8_single_strategy(benchmark, config, strategy):
    result = benchmark(run_microbenchmark, config, strategy)
    assert result.payload_ok and result.memory_hazards == 0
