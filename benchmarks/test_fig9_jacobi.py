"""Figure 9: 2D Jacobi relaxation speedup over local grid sizes.

Paper: speedup vs HDN for one iteration at varying NxN local grids --
GPU-TN up to ~10% over GDS and ~20% over HDN on medium grids; the CPU
wins below ~N=100 and loses above; all strategies converge at large N.
"""

import numpy as np
import pytest

from repro.analysis import figure9_report
from repro.apps.jacobi import jacobi_reference, run_jacobi

SIZES = (16, 64, 128, 256, 512, 1024)


@pytest.mark.exhibit("figure9")
def test_figure9_regenerate(benchmark, config, capsys):
    data = benchmark.pedantic(
        figure9_report, kwargs={"sizes": SIZES, "iters": 2, "config": config},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        figure9_report(sizes=SIZES, iters=2, config=config)

    gputn, gds, cpu = data["gputn"], data["gds"], data["cpu"]
    # GPU-TN > GDS > 1 (HDN) at every size; gains shrink with N.
    for i in range(len(SIZES)):
        assert gputn[i] > gds[i] > 1.0
    assert gputn[0] > gputn[-1]
    assert gputn[-1] < 1.10 and gds[-1] < 1.05, "convergence at large N"
    # CPU crossover: wins small grids, loses large ones.
    assert cpu[0] > 1.0 and cpu[-1] < 1.0
    crossover = next(n for n, v in zip(SIZES, cpu) if v < 1.0)
    assert 64 <= crossover <= 512


@pytest.mark.exhibit("figure9")
@pytest.mark.parametrize("strategy", ("cpu", "hdn", "gds", "gputn"))
def test_figure9_single_iteration(benchmark, config, strategy):
    result = benchmark(run_jacobi, config, strategy, 128)
    ref = jacobi_reference(128, 2, 2, 1, seed=7)
    assert np.allclose(result.grid, ref, rtol=1e-6)
    assert result.memory_hazards == 0
