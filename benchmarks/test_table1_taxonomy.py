"""Table 1: qualitative comparison of GPU networking strategies."""

import pytest

from repro.analysis import table1_report
from repro.strategies import STRATEGIES


@pytest.mark.exhibit("table1")
def test_table1_regenerate(benchmark, capsys):
    rows = benchmark.pedantic(table1_report, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table1_report()

    # Exactly the paper's five rows, in the paper's column semantics.
    assert [r[0] for r in rows] == [
        "Host-Driven Networking (HDN)",
        "GPU Native Networking",
        "GPU Host Networking",
        "GPU Direct Async (GDS)",
        "GPU Triggered Networking (GPU-TN)",
    ]
    by_name = {r[0]: r for r in rows}
    assert by_name["Host-Driven Networking (HDN)"][1:3] == ("No", "No")
    assert by_name["GPU Native Networking"][1:3] == ("Yes", "Yes")
    assert by_name["GPU Host Networking"][1:3] == ("No", "Yes")
    assert by_name["GPU Direct Async (GDS)"][1:3] == ("Yes", "No")
    assert by_name["GPU Triggered Networking (GPU-TN)"][1:3] == ("Yes", "Yes")
    assert by_name["GPU Triggered Networking (GPU-TN)"][3] == "Trigger"
    # Both triggered+intra-kernel strategies exist, but only GPU-TN gets
    # there without a GPU-resident network stack.
    assert STRATEGIES["gpu-native"].gpu_overhead == "Network Stack"
