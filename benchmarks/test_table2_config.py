"""Table 2: GPU-TN simulation configuration."""

import pytest

from repro.analysis import table2_report


@pytest.mark.exhibit("table2")
def test_table2_regenerate(benchmark, config, capsys):
    table = benchmark.pedantic(table2_report, args=(config,),
                               rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table2_report(config)

    cpu = table["CPU and Memory Configuration"]
    gpu = table["GPU Configuration"]
    net = table["Network Configuration"]
    assert cpu["Type"] == "8 Wide OOO, 4GHz, 8 cores"
    assert cpu["I,D-Cache"] == "64K, 2-way, 2 cycles"
    assert cpu["L2-Cache"] == "2MB, 8-way, 4 cycles"
    assert cpu["L3-Cache"] == "16MB, 16-way, 20 cycles"
    assert cpu["System Memory"] == "DDR4, 8 Channels, 2133MHz"
    assert gpu["Type"] == "1 GHz, 24 Compute Units"
    assert gpu["D-Cache"] == "16kB, 64B line, 16-way, 25 cycles"
    assert gpu["I-Cache"] == "32kB, 64B line, 8-way, 25 cycles"
    assert gpu["L2-Cache"] == "768kB, 64B line, 16-way, 150 cycles"
    assert gpu["Kernel Latencies"] == "1.5us launch / 1.5us teardown"
    assert net["Latency"] == "100ns Link, 100ns Switch"
    assert net["Bandwidth"] == "100Gbps"
    assert net["Topology"] == "Star (single switch)"
