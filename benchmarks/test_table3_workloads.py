"""Table 3: CNTK workload description."""

import pytest

from repro.analysis import table3_report


@pytest.mark.exhibit("table3")
def test_table3_regenerate(benchmark, capsys):
    rows = benchmark.pedantic(table3_report, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        table3_report()

    assert rows == [
        ("AlexNet", "Classification", "14%", "4672"),
        ("AN4 LSTM", "Speech", "50%", "131192"),
        ("CIFAR", "Classification", "4%", "939820"),
        ("Large Synth", "Synthetic", "28%", "52800"),
        ("MNIST Conv", "Text Recognition", "12%", "900000"),
        ("MNIST Hidden", "Text Recognition", "29%", "900000"),
    ]
