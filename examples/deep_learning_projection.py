#!/usr/bin/env python3
"""Deep-learning training projection (Table 3 + Figure 11).

Projects application-level speedup for the paper's six CNTK workloads on
an 8-node cluster, using synthetic Allreduce traces that reproduce
Table 3's %blocked / reduction counts (see DESIGN.md for the
substitution) and this repository's simulated Allreduce times.

Run:  python examples/deep_learning_projection.py [--nodes 8]
"""

import argparse

from repro import default_config, project_deep_learning
from repro.analysis.tables import render_table
from repro.apps.deeplearning import WORKLOADS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--workloads", nargs="+", default=sorted(WORKLOADS),
                        choices=sorted(WORKLOADS))
    args = parser.parse_args()

    print("Table 3 workloads:")
    print(render_table(
        ["name", "domain", "%blocked", "reductions"],
        [(w.name, w.domain, f"{w.pct_blocked:.0%}", w.n_reductions)
         for k, w in WORKLOADS.items() if k in args.workloads]))
    print()

    print(f"Simulating Allreduce behaviour on {args.nodes} nodes ...")
    projections = project_deep_learning(default_config(),
                                        workloads=args.workloads,
                                        n_nodes=args.nodes)

    rows = []
    for key, proj in projections.items():
        rows.append([
            proj.workload,
            *(f"{proj.speedup[s]:.3f}" for s in ("cpu", "hdn", "gds", "gputn")),
            f"{proj.speedup_over('gputn', 'hdn'):.3f}",
        ])
    print()
    print(render_table(
        ["workload", "CPU", "HDN", "GDS", "GPU-TN", "GPU-TN/HDN"], rows,
        title="Projected app-level speedup (baseline: measured CPU-Allreduce "
              "configuration)"))
    print("\nPaper's Figure 11 story: gains track how much of the run is "
          "blocked on Allreduce and how small its messages are -- AN4 LSTM "
          "(50% blocked, small gradients) gains most, CIFAR (4%) barely "
          "moves.")


if __name__ == "__main__":
    main()
