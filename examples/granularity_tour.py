#!/usr/bin/env python3
"""A tour of the GPU-TN kernel API (paper Figure 7 + Sections 3.2/3.4).

Demonstrates, on one simulated 3-node cluster:

1. work-item-level triggering      (Figure 7a),
2. work-group-level triggering     (Figure 7b),
3. kernel-level triggering via NIC counters (Figure 7c),
4. mixed granularity with threshold=2       (Section 4.2.3),
5. relaxed synchronization: the GPU triggers *before* the CPU registers
   (Section 3.2), and
6. the dynamic-communication extension: the GPU picks the target node at
   trigger time (Section 3.4).

Run:  python examples/granularity_tour.py
"""

import numpy as np

from repro import Cluster, default_config
from repro.api import (
    GpuTnEndpoint,
    dynamic_target_kernel,
    kernel_level_kernel,
    mixed_granularity_kernel,
    work_group_kernel,
    work_item_kernel,
)


def fresh():
    cluster = Cluster(n_nodes=3, config=default_config())
    return cluster, GpuTnEndpoint(cluster[0])


def show(title, cluster, detail):
    assert cluster.total_hazards() == 0
    print(f"  [ok] {title:<46s} {detail}")


def demo_work_item():
    cluster, ep = fresh()
    target = cluster[1]
    items = 16
    send = cluster[0].host.alloc(items * 8)
    recvs = [target.host.alloc(8) for _ in range(items)]

    def driver():
        ops = []
        for i in range(items):
            op = yield from ep.trig_put(send, 8, target.name, recvs[i].addr(),
                                        tag=0x100 + i, offset=i * 8)
            ops.append(op)
        yield from ep.launch(work_item_kernel, n_workgroups=1, wg_size=items,
                             tag_base=0x100, buffers=[send], fill=1,
                             items_per_group=items)
        for op in ops:
            yield ep.wait_delivered(op)

    cluster.sim.run_until_event(cluster.spawn(driver()))
    assert all((r.view(np.uint8) == 1).all() for r in recvs)
    show("work-item level (Fig 7a)", cluster, f"{items} messages, 1 per item")


def demo_work_group():
    cluster, ep = fresh()
    target = cluster[1]
    n_wg = 4
    send = cluster[0].host.alloc(n_wg * 64)
    recvs = [target.host.alloc(64) for _ in range(n_wg)]

    def driver():
        ops = []
        for wg in range(n_wg):
            op = yield from ep.trig_put(send, 64, target.name,
                                        recvs[wg].addr(), tag=0x200 + wg,
                                        offset=wg * 64)
            ops.append(op)
        yield from ep.launch(work_group_kernel, n_workgroups=n_wg,
                             tag_base=0x200, buffers=[send], fill=2)
        for op in ops:
            yield ep.wait_delivered(op)

    cluster.sim.run_until_event(cluster.spawn(driver()))
    show("work-group level (Fig 7b)", cluster, f"{n_wg} messages, 1 per group")


def demo_kernel_level():
    cluster, ep = fresh()
    target = cluster[1]
    n_wg = 8
    send = cluster[0].host.alloc(256)
    recv = target.host.alloc(256)

    def driver():
        op = yield from ep.trig_put(send, 256, target.name, recv.addr(),
                                    tag=0x300, threshold=n_wg)
        yield from ep.launch(kernel_level_kernel, n_workgroups=n_wg,
                             tag=0x300, buffers=[send], fill=3)
        yield ep.wait_delivered(op)
        return op.entry.counter

    count = cluster.sim.run_until_event(cluster.spawn(driver()))
    show("kernel level (Fig 7c)", cluster,
         f"1 message after NIC counted {count}/{n_wg} group writes")


def demo_mixed():
    cluster, ep = fresh()
    target = cluster[1]
    n_wg, span = 8, 2
    send = cluster[0].host.alloc(256)
    recvs = [target.host.alloc(64) for _ in range(n_wg // span)]

    def driver():
        ops = []
        for g in range(n_wg // span):
            op = yield from ep.trig_put(send, 64, target.name,
                                        recvs[g].addr(), tag=0x400 + g,
                                        threshold=span)
            ops.append(op)
        yield from ep.launch(mixed_granularity_kernel, n_workgroups=n_wg,
                             tag_base=0x400, group_span=span,
                             buffers=[send], fill=4)
        for op in ops:
            yield ep.wait_delivered(op)

    cluster.sim.run_until_event(cluster.spawn(driver()))
    show("mixed granularity (Sec 4.2.3)", cluster,
         f"{n_wg // span} messages, threshold={span} (one per group pair)")


def demo_relaxed_sync():
    cluster, ep = fresh()
    target = cluster[1]
    send = cluster[0].host.alloc(64)
    recv = target.host.alloc(64)

    def driver():
        # Launch FIRST: the kernel's trigger lands on the NIC as a
        # placeholder entry before anything is registered.
        inst = yield from ep.launch(work_group_kernel, n_workgroups=1,
                                    tag_base=0x500, buffers=[send], fill=5)
        yield inst.finished                  # kernel done, trigger absorbed
        yield cluster.sim.timeout(5_000)     # CPU is busy for 5 more us ...
        op = yield from ep.trig_put(send, 64, target.name, recv.addr(),
                                    tag=0x500)
        delivered = yield ep.wait_delivered(op)
        return delivered.delivered_at

    t = cluster.sim.run_until_event(cluster.spawn(driver()))
    assert (recv.view(np.uint8) == 5).all()
    show("relaxed synchronization (Sec 3.2)", cluster,
         f"GPU triggered first; late CPU registration fired it at "
         f"{t / 1000:.1f} us")


def demo_dynamic():
    cluster, ep = fresh()
    targets = [cluster[1], cluster[2]]
    send = cluster[0].host.alloc(128)
    recvs = [t.host.alloc(64) for t in targets]

    def driver():
        ops = []
        for g in range(2):
            op = yield from ep.register_dynamic(
                send, 64, tag=0x600 + g, default_target=targets[0].name,
                default_remote_addr=recvs[0].addr())
            ops.append(op)
        yield from ep.launch(dynamic_target_kernel, n_workgroups=2,
                             tag=0x600, buffers=[send], fill=6,
                             targets=[t.name for t in targets],
                             remote_addrs=[r.addr() for r in recvs])
        for op in ops:
            yield ep.wait_delivered(op)

    cluster.sim.run_until_event(cluster.spawn(driver()))
    assert all((r.view(np.uint8) == 6).all() for r in recvs)
    show("dynamic communication (Sec 3.4)", cluster,
         "GPU chose node1 AND node2 as targets at trigger time")


def main() -> None:
    print("GPU-TN kernel API tour (all runs hazard-free and verified):")
    demo_work_item()
    demo_work_group()
    demo_kernel_level()
    demo_mixed()
    demo_relaxed_sync()
    demo_dynamic()


if __name__ == "__main__":
    main()
