#!/usr/bin/env python3
"""2D Jacobi relaxation across all four networking strategies (Figure 9).

Runs a distributed 2D Jacobi solver on a 2x2 simulated cluster for a
sweep of local grid sizes, verifies every distributed result against a
single-grid NumPy reference, and prints the paper's Figure 9 as a table.

Run:  python examples/jacobi_stencil.py [--sizes 16 64 256] [--iters 2]
"""

import argparse

import numpy as np

from repro import default_config, run_jacobi
from repro.analysis.tables import render_table, sparkline
from repro.apps.jacobi import jacobi_reference

STRATEGIES = ("cpu", "hdn", "gds", "gputn", "gputn-persistent")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[16, 64, 128, 256, 512])
    parser.add_argument("--iters", type=int, default=2)
    args = parser.parse_args()

    config = default_config()
    speedups = {s: [] for s in STRATEGIES if s != "hdn"}
    for n in args.sizes:
        ref = jacobi_reference(n, 2, 2, args.iters, seed=7)
        times = {}
        for strategy in STRATEGIES:
            result = run_jacobi(config, strategy, n=n, iters=args.iters)
            assert np.allclose(result.grid, ref, rtol=1e-6), \
                f"{strategy} at N={n} diverged from the reference!"
            assert result.memory_hazards == 0
            times[strategy] = result.total_ns
        for s in speedups:
            speedups[s].append(times["hdn"] / times[s])
        print(f"N={n:4d}: all {len(STRATEGIES)} strategies verified against "
              f"the NumPy reference")

    rows = [[s] + [f"{v:.3f}" for v in vals] + [sparkline(vals)]
            for s, vals in speedups.items()]
    print()
    print(render_table(
        ["strategy"] + [f"N={n}" for n in args.sizes] + ["shape"], rows,
        title=f"Speedup vs HDN, {args.iters} iteration(s) "
              "(gputn-persistent = this repo's extension)",
    ))
    print("\nPaper's Figure 9 story: the CPU wins tiny grids, GPU-TN leads "
          "the GPU strategies, and everything converges once compute "
          "dominates.")


if __name__ == "__main__":
    main()
