#!/usr/bin/env python3
"""NIC-offloaded broadcast and barrier from chained triggered operations.

Triggered operations were invented for NIC-progressed collective
sequences (the paper's Section 6 / Underwood et al.).  This example
builds both canonical offloaded collectives on the GPU-TN NIC:

* a binomial-tree **broadcast** whose forwarding puts are pre-registered
  and chained on the arrival itself -- after setup, the payload hops
  NIC-to-NIC with zero CPU/GPU involvement;
* a **barrier** that GPU kernels enter with a single trigger store
  (paper §4.2.5: "more complex semantics such as execution barriers can
  be built out of these primitives").

Run:  python examples/offloaded_collectives.py [--nodes 8]
"""

import argparse

import numpy as np

from repro import Cluster, default_config
from repro.collectives import nic_barrier, nic_broadcast
from repro.gpu.kernel import KernelDescriptor


def demo_broadcast(n_nodes: int) -> None:
    cluster = Cluster(n_nodes=n_nodes, config=default_config())
    payload = np.arange(4096, dtype=np.uint8)
    handles = nic_broadcast(cluster, payload)
    busy_before = cluster.total_cpu_busy_ns()
    cluster.run()

    print(f"Broadcast of {payload.nbytes} B over {n_nodes} nodes "
          "(binomial tree, NIC-chained forwarding):")
    for r in range(n_nodes):
        ok = (handles.buffers[r].view(np.uint8) == payload).all()
        t = (handles.received[r].value.delivered_at
             if r != handles.root else 0)
        print(f"  rank {r}: received @ {t / 1000:6.2f} us  verified={bool(ok)}")
    print(f"  CPU work during the collective: "
          f"{cluster.total_cpu_busy_ns() - busy_before} ns (fully offloaded)")


def demo_gpu_barrier(n_nodes: int) -> None:
    cluster = Cluster(n_nodes=n_nodes, config=default_config())
    handles = nic_barrier(cluster)

    def make_kernel(rank):
        def kernel(ctx):
            # Uneven work before the rendezvous.
            yield ctx.compute(2_000 * (rank + 1))
            yield ctx.fence_release_system()
            yield ctx.store_trigger(handles.enter_tag[rank])
        return kernel

    for r in range(n_nodes):
        cluster[r].gpu.launch(KernelDescriptor(fn=make_kernel(r),
                                               n_workgroups=1,
                                               name=f"enter-{r}"))
    cluster.run()

    print(f"\nBarrier across {n_nodes} nodes, entered from inside GPU "
          "kernels (one trigger store each):")
    for r in range(n_nodes):
        ev = handles.released[r]
        t = ev.value if isinstance(ev.value, int) else ev.value.delivered_at
        print(f"  rank {r}: released @ {t / 1000:6.2f} us")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8)
    args = parser.parse_args()
    demo_broadcast(args.nodes)
    demo_gpu_barrier(args.nodes)


if __name__ == "__main__":
    main()
