#!/usr/bin/env python3
"""Quickstart: one GPU-triggered put between two simulated nodes.

Walks the exact host flow of paper Figure 6 and the kernel flow of
Figure 7b, then prints the event timeline -- including the paper's
signature observation that the target receives the data *before* the
initiator's kernel finishes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, GpuTnEndpoint, default_config
from repro.api import work_group_kernel

MESSAGE_BYTES = 256


def main() -> None:
    # RdmaInit(): build a 2-node cluster on the paper's Table 2 system.
    cluster = Cluster(n_nodes=2, config=default_config())
    initiator, target = cluster[0], cluster[1]
    ep = GpuTnEndpoint(initiator)

    send_buf = initiator.host.alloc(MESSAGE_BYTES, name="send")
    recv_buf = target.host.alloc(MESSAGE_BYTES, name="recv")

    timeline = {}

    def driver():
        # TrigPut(): the CPU builds and registers the network operation.
        op = yield from ep.trig_put(send_buf, MESSAGE_BYTES, target.name,
                                    recv_buf.addr(), tag=0x42)
        timeline["registered"] = cluster.sim.now

        # LaunchKern(): the kernel fills the buffer, fences it to system
        # scope, and stores the tag to the NIC trigger address (Fig. 7b).
        inst = yield from ep.launch(work_group_kernel, n_workgroups=1,
                                    tag_base=0x42, buffers=[send_buf],
                                    fill=0xAB, work_ns=500)
        timeline["kernel_enqueued"] = cluster.sim.now

        timeline["delivered"] = (yield ep.wait_delivered(op)).delivered_at
        timeline["kernel_finished"] = yield inst.finished
        ep.free(op)

    proc = cluster.spawn(driver())
    cluster.run()
    if not proc.ok:
        raise proc.value

    assert (recv_buf.view(np.uint8) == 0xAB).all(), "payload corrupted!"
    assert cluster.total_hazards() == 0, "memory-model hazard!"

    print("GPU-TN quickstart: 256 B put, triggered from inside a kernel")
    print("-" * 60)
    for what, t in sorted(timeline.items(), key=lambda kv: kv[1]):
        print(f"  {t / 1000:7.2f} us  {what}")
    print("-" * 60)
    gap = timeline["kernel_finished"] - timeline["delivered"]
    print(f"Target had the data {gap / 1000:.2f} us BEFORE the initiator's "
          f"kernel finished -- that is intra-kernel networking.")


if __name__ == "__main__":
    main()
