#!/usr/bin/env python3
"""Strong-scaling ring Allreduce study (Figure 10).

Runs the paper's 8 MB single-precision ring Allreduce over a node sweep
under all four strategies, verifying every result bitwise against a
ring-order NumPy reference, and reports speedup vs the CPU baseline.

Run:  python examples/ring_allreduce.py [--nodes 2 8 16 24 32] [--mb 8]
"""

import argparse

from repro import default_config
from repro.analysis.tables import render_table, sparkline
from repro.apps.allreduce_bench import strong_scaling_study
from repro.config import MB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=[2, 8, 16, 24, 32])
    parser.add_argument("--mb", type=int, default=8,
                        help="payload size in MiB (paper: 8)")
    args = parser.parse_args()

    study = strong_scaling_study(default_config(), node_counts=args.nodes,
                                 nbytes=args.mb * MB)

    rows = []
    for strategy in ("hdn", "gds", "gputn"):
        sp = study.speedup_vs_cpu(strategy)
        rows.append([strategy] + [f"{v:.3f}" for v in sp] + [sparkline(sp)])
    print(render_table(
        ["strategy"] + [f"P={p}" for p in args.nodes] + ["shape"], rows,
        title=f"{args.mb} MiB ring Allreduce: speedup vs CPU "
              "(every run verified bitwise)",
    ))

    crossover = study.crossover_node_count("hdn")
    if crossover:
        print(f"\nHDN drops below the CPU at P={crossover} "
              "(paper: ~24 nodes) -- kernel-boundary overheads eat the "
              "GPU's advantage as chunks shrink.")
    print("GPU-TN keeps scaling: the whole collective runs inside one "
          "persistent kernel with pipelined triggered puts.")


if __name__ == "__main__":
    main()
