"""Legacy setup shim: enables `pip install -e . --no-use-pep517` on
environments without the `wheel` package (offline installs)."""

from setuptools import setup

setup()
