"""repro — a simulation-based reproduction of GPU Triggered Networking (SC17).

The package implements, in pure Python + NumPy:

* a discrete-event simulator (``repro.sim``) standing in for gem5,
* a coherent-SoC node model: CPU (``repro.host``), GPU (``repro.gpu``),
  NIC with Portals-4-style triggered operations (``repro.nic``), shared
  memory with a scoped memory model (``repro.memory``),
* a star-topology fabric (``repro.net``),
* the GPU-TN programming model (``repro.api``) -- the paper's contribution,
* four end-to-end networking strategies (``repro.strategies``): CPU, HDN,
  GDS and GPU-TN,
* libNBC-style non-blocking collectives (``repro.collectives``), and
* the paper's applications (``repro.apps``): latency microbenchmark,
  2D Jacobi relaxation, ring Allreduce, deep-learning projection.

Quickstart::

    from repro import default_config, run_microbenchmark
    result = run_microbenchmark(default_config(), strategy="gputn")
    print(result.target_completion_ns)
"""

from repro.config import SystemConfig, default_config
from repro.version import __version__

__all__ = ["SystemConfig", "default_config", "__version__"]


def __getattr__(name: str):
    # Lazy re-exports keep `import repro` light while exposing the full API.
    import importlib

    lazy = {
        "Experiment": ("repro.runtime", "Experiment"),
        "ResultCache": ("repro.runtime", "ResultCache"),
        "RunRecord": ("repro.runtime", "RunRecord"),
        "Sweep": ("repro.runtime", "Sweep"),
        "discrete_gpu_config": ("repro.presets", "discrete_gpu_config"),
        "run_microbenchmark": ("repro.apps.microbench", "run_microbenchmark"),
        "run_jacobi": ("repro.apps.jacobi", "run_jacobi"),
        "run_allreduce": ("repro.apps.allreduce_bench", "run_allreduce"),
        "project_deep_learning": ("repro.apps.deeplearning", "project_deep_learning"),
        "Cluster": ("repro.cluster", "Cluster"),
        "STRATEGIES": ("repro.strategies", "STRATEGIES"),
    }
    if name in lazy:
        module, attr = lazy[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
