"""repro — a simulation-based reproduction of GPU Triggered Networking (SC17).

The package implements, in pure Python + NumPy:

* a discrete-event simulator (``repro.sim``) standing in for gem5,
* a coherent-SoC node model: CPU (``repro.host``), GPU (``repro.gpu``),
  NIC with Portals-4-style triggered operations (``repro.nic``), shared
  memory with a scoped memory model (``repro.memory``),
* a switched fabric with star / fat-tree / dragonfly / torus topologies
  (``repro.net``),
* the GPU-TN programming model (``repro.api``) -- the paper's contribution,
* four end-to-end networking strategies (``repro.strategies``): CPU, HDN,
  GDS and GPU-TN,
* libNBC-style non-blocking collectives (``repro.collectives``),
* the paper's applications (``repro.apps``): latency microbenchmark,
  2D Jacobi relaxation, ring Allreduce, deep-learning projection, and
* the supporting subsystems: experiment runtime (``repro.runtime``),
  invariant fuzzing (``repro.validate``), fault injection
  (``repro.faults``), background traffic generation (``repro.traffic``),
  metrics (``repro.metrics``) and the simulator performance harness
  (``repro.bench``).

This module is the **public facade**: every blessed entry point is
importable directly from ``repro`` (lazily, so ``import repro`` stays
light).  Deep imports (``from repro.runtime import Experiment``) keep
working -- the facade re-exports, it does not relocate.

Quickstart::

    from repro import Cluster, GpuTnEndpoint, default_config
    # ... build a cluster, register triggered puts, launch kernels; see
    # examples/quickstart.py for the end-to-end Figure 6/7 flow.

Or at the experiment level::

    from repro import Experiment, Observers, attach_metrics  # noqa: F401
    from repro.apps.microbench import MicrobenchExperiment
    record = MicrobenchExperiment().run({"strategy": "gputn"})
    print(record.metrics["target_completion_ns"])
"""

from repro.config import SystemConfig, default_config
from repro.version import __version__

#: The blessed public surface.  Names not importable eagerly above are
#: provided lazily through ``__getattr__`` (PEP 562).
__all__ = [
    "CacheBackend",
    "Cluster",
    "CollectiveExperiment",
    "Experiment",
    "FaultPlan",
    "GpuTnEndpoint",
    "Job",
    "JobStore",
    "LocalDirBackend",
    "MetricsRegistry",
    "Observers",
    "QueueConfig",
    "ReliabilityConfig",
    "ResultCache",
    "RunRecord",
    "STRATEGIES",
    "SubmitThrottled",
    "Sweep",
    "SystemConfig",
    "__version__",
    "attach_metrics",
    "attach_traffic",
    "default_config",
    "discrete_gpu_config",
    "make_topology",
    "project_deep_learning",
    "run_allreduce",
    "run_bench",
    "run_collective",
    "run_congestion_campaign",
    "run_jacobi",
    "run_microbenchmark",
    "run_topo_campaign",
]

#: Lazy re-exports: public name -> (module, attribute).
_LAZY = {
    "CacheBackend": ("repro.service", "CacheBackend"),
    "Cluster": ("repro.cluster", "Cluster"),
    "CollectiveExperiment": ("repro.collectives", "CollectiveExperiment"),
    "Experiment": ("repro.runtime", "Experiment"),
    "FaultPlan": ("repro.faults", "FaultPlan"),
    "GpuTnEndpoint": ("repro.api", "GpuTnEndpoint"),
    "Job": ("repro.service", "Job"),
    "JobStore": ("repro.service", "JobStore"),
    "LocalDirBackend": ("repro.service", "LocalDirBackend"),
    "MetricsRegistry": ("repro.metrics", "MetricsRegistry"),
    "Observers": ("repro.runtime", "Observers"),
    "QueueConfig": ("repro.config", "QueueConfig"),
    "ReliabilityConfig": ("repro.config", "ReliabilityConfig"),
    "ResultCache": ("repro.runtime", "ResultCache"),
    "RunRecord": ("repro.runtime", "RunRecord"),
    "STRATEGIES": ("repro.strategies", "STRATEGIES"),
    "SubmitThrottled": ("repro.service", "SubmitThrottled"),
    "Sweep": ("repro.runtime", "Sweep"),
    "attach_metrics": ("repro.metrics", "attach_metrics"),
    "attach_traffic": ("repro.traffic", "attach_traffic"),
    "discrete_gpu_config": ("repro.presets", "discrete_gpu_config"),
    "make_topology": ("repro.net", "make_topology"),
    "project_deep_learning": ("repro.apps.deeplearning", "project_deep_learning"),
    "run_allreduce": ("repro.apps.allreduce_bench", "run_allreduce"),
    "run_bench": ("repro.bench", "run_bench"),
    "run_collective": ("repro.collectives", "run_collective"),
    "run_congestion_campaign": ("repro.apps.congestion",
                                "run_congestion_campaign"),
    "run_jacobi": ("repro.apps.jacobi", "run_jacobi"),
    "run_microbenchmark": ("repro.apps.microbench", "run_microbenchmark"),
    "run_topo_campaign": ("repro.apps.topo_scale", "run_topo_campaign"),
}


def __getattr__(name: str):
    # Lazy re-exports keep `import repro` light while exposing the full API.
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module), attr)


def __dir__():
    return sorted(set(globals()) | set(__all__))
