"""Command-line entry: regenerate the paper's tables and figures.

Usage::

    python -m repro                 # everything (Figure 10/11 take ~2 min)
    python -m repro fig1 fig8 tab2  # a subset
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    figure1_report,
    figure8_report,
    figure9_report,
    figure10_report,
    figure11_report,
    table1_report,
    table2_report,
    table3_report,
)

_EXHIBITS = {
    "tab1": ("Table 1", table1_report),
    "tab2": ("Table 2", table2_report),
    "tab3": ("Table 3", table3_report),
    "fig1": ("Figure 1", figure1_report),
    "fig8": ("Figure 8", figure8_report),
    "fig9": ("Figure 9", figure9_report),
    "fig10": ("Figure 10", figure10_report),
    "fig11": ("Figure 11", figure11_report),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate exhibits from 'GPU Triggered Networking for "
                    "Intra-Kernel Communications' (SC17).")
    parser.add_argument("exhibits", nargs="*", choices=[*_EXHIBITS, []],
                        help=f"subset to run (default: all of {list(_EXHIBITS)})")
    args = parser.parse_args(argv)
    picks = args.exhibits or list(_EXHIBITS)
    for key in picks:
        name, fn = _EXHIBITS[key]
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        fn()
    return 0


if __name__ == "__main__":
    sys.exit(main())
