"""Command-line entry: regenerate the paper's tables and figures.

Usage::

    python -m repro                     # everything (Figure 10/11 dominate)
    python -m repro fig1 fig8 tab2      # a subset
    python -m repro fig9 fig10 -j 8     # fan sweep points over 8 processes
    python -m repro --no-cache fig10    # force fresh simulation
    python -m repro fig8 --export-trace traces/   # Perfetto-loadable JSON

Results are cached on disk (``.repro-cache/`` by default, override with
``$REPRO_CACHE_DIR``) keyed by code version, configuration hash and sweep
point, so re-rendering an exhibit is free once its runs exist.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    figure1_report,
    figure8_report,
    figure9_report,
    figure10_report,
    figure11_report,
    table1_report,
    table2_report,
    table3_report,
)
from repro.runtime import ResultCache

_EXHIBITS = {
    "tab1": ("Table 1", table1_report),
    "tab2": ("Table 2", table2_report),
    "tab3": ("Table 3", table3_report),
    "fig1": ("Figure 1", figure1_report),
    "fig8": ("Figure 8", figure8_report),
    "fig9": ("Figure 9", figure9_report),
    "fig10": ("Figure 10", figure10_report),
    "fig11": ("Figure 11", figure11_report),
}

#: Exhibits that run simulation sweeps (and so accept jobs / cache).
_SWEEPING = {"fig1", "fig9", "fig10", "fig11"}
#: Exhibits whose tracer timelines can be exported.
_TRACEABLE = {"fig8"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate exhibits from 'GPU Triggered Networking for "
                    "Intra-Kernel Communications' (SC17).")
    parser.add_argument("exhibits", nargs="*", choices=[*_EXHIBITS, []],
                        help=f"subset to run (default: all of {list(_EXHIBITS)})")
    parser.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="fan sweep points out over N worker processes "
                             "(results are bit-identical to -j 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache location (default: .repro-cache, "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--export-trace", metavar="DIR", default=None,
                        help="write Chrome trace-event JSON for traceable "
                             "exhibits (fig8) into DIR")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    picks = args.exhibits or list(_EXHIBITS)
    if args.export_trace and not _TRACEABLE & set(picks):
        print(f"warning: --export-trace has no effect; none of {picks} is "
              f"traceable (traceable: {sorted(_TRACEABLE)})", file=sys.stderr)
    for key in picks:
        name, fn = _EXHIBITS[key]
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        kwargs = {}
        if key in _SWEEPING:
            kwargs["jobs"] = args.jobs
            kwargs["cache"] = cache
        if key in _TRACEABLE and args.export_trace:
            kwargs["export_dir"] = args.export_trace
        fn(**kwargs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
