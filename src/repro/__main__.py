"""Command-line entry: regenerate the paper's tables and figures.

Usage::

    python -m repro                     # everything (Figure 10/11 dominate)
    python -m repro fig1 fig8 tab2      # a subset
    python -m repro fig9 fig10 -j 8     # fan sweep points over 8 processes
    python -m repro --no-cache fig10    # force fresh simulation
    python -m repro fig8 --export-trace traces/   # Perfetto-loadable JSON

Results are cached on disk (``.repro-cache/`` by default, override with
``$REPRO_CACHE_DIR``) keyed by code version, configuration hash and sweep
point, so re-rendering an exhibit is free once its runs exist.

The ``validate`` subcommand runs the invariant-checking schedule fuzzer
instead of an exhibit (see :mod:`repro.validate`)::

    python -m repro validate                        # 100 seeds x 3 workloads
    python -m repro validate --seeds 25 --jobs 4    # quicker, parallel
    python -m repro validate --workloads jacobi --fail-fast --json out.json

The ``faults`` subcommand runs seeded fault-injection campaigns with the
go-back-N reliable transport armed (see :mod:`repro.faults`)::

    python -m repro faults                          # 25 seeds x 3 workloads
    python -m repro faults --seeds 10 --jobs 2      # CI smoke
    python -m repro faults --workloads allreduce --fail-fast --json out.json
    python -m repro faults --degraded               # goodput/p99 vs loss rate

The ``stats`` subcommand runs a workload with a
:class:`repro.metrics.MetricsRegistry` attached and prints the
per-component hardware breakdown -- FIFO depths, CU occupancy, per-link
bytes, latency histograms (see :mod:`repro.metrics`)::

    python -m repro stats                           # microbench, gputn
    python -m repro stats jacobi allreduce --strategy gds
    python -m repro stats degraded --json stats.json
    python -m repro stats microbench --export-trace traces/

The ``bench`` subcommand times the simulator itself -- raw engine event
throughput plus the standard workloads -- and writes ``BENCH_core.json``
(see :mod:`repro.bench`)::

    python -m repro bench                           # all workloads, 3 repeats
    python -m repro bench --repeat 1 --json         # CI smoke + report file
    python -m repro bench --workloads engine jacobi --json bench.json
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    figure1_report,
    figure8_report,
    figure9_report,
    figure10_report,
    figure11_report,
    table1_report,
    table2_report,
    table3_report,
)
from repro.runtime import ResultCache

_EXHIBITS = {
    "tab1": ("Table 1", table1_report),
    "tab2": ("Table 2", table2_report),
    "tab3": ("Table 3", table3_report),
    "fig1": ("Figure 1", figure1_report),
    "fig8": ("Figure 8", figure8_report),
    "fig9": ("Figure 9", figure9_report),
    "fig10": ("Figure 10", figure10_report),
    "fig11": ("Figure 11", figure11_report),
}

#: Exhibits that run simulation sweeps (and so accept jobs / cache).
_SWEEPING = {"fig1", "fig9", "fig10", "fig11"}
#: Exhibits whose tracer timelines can be exported.
_TRACEABLE = {"fig8"}


def _validate_main(argv) -> int:
    from repro.validate import FUZZ_WORKLOADS, run_campaign

    parser = argparse.ArgumentParser(
        prog="python -m repro validate",
        description="Fuzz event schedules and timing knobs over the paper's "
                    "workloads with every DESIGN.md §6 invariant monitor "
                    "armed.  Any failure replays from its (workload, seed) "
                    "pair alone.")
    parser.add_argument("--seeds", type=int, default=100, metavar="N",
                        help="fuzz cases per workload (default: 100)")
    parser.add_argument("--seed-start", type=int, default=0, metavar="S",
                        help="first seed of the range (default: 0)")
    parser.add_argument("--workloads", nargs="+", choices=list(FUZZ_WORKLOADS),
                        default=list(FUZZ_WORKLOADS), metavar="W",
                        help=f"subset of {list(FUZZ_WORKLOADS)} (default: all)")
    parser.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="worker processes (results identical to -j 1)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop scheduling new batches after the first "
                             "failing case")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the full campaign report as JSON")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1, got {args.seeds}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    report = run_campaign(workloads=args.workloads, seeds=args.seeds,
                          seed_start=args.seed_start, jobs=args.jobs,
                          fail_fast=args.fail_fast)
    for workload, (passed, total) in sorted(report.by_workload().items()):
        marker = "ok  " if passed == total else "FAIL"
        print(f"{marker} {workload:<12} {passed}/{total} cases clean")
    for record in report.failures:
        m = record.metrics
        print(f"\nFAIL {m['workload']} seed={m['seed']} "
              f"params={m['inner_params']} knobs={m['knobs']}")
        if m["violation"]:
            v = m["violation"]
            print(f"  [{v['invariant']}] {v['message']}")
            for line in v.get("context", ()):
                print(f"    {line}")
        if m["crash"]:
            print(f"  crash: {m['crash']}")
        print(f"  replay: python -m repro validate --workloads "
              f"{m['workload']} --seeds 1 --seed-start {m['seed']}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    total_failed = len(report.failures)
    print(f"\n{report.total - total_failed}/{report.total} cases clean"
          + (f", {total_failed} FAILED" if total_failed else ""))
    return 0 if report.ok else 1


def _faults_main(argv) -> int:
    from repro.faults import FAULT_WORKLOADS, run_faults_campaign

    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Run seeded fault-injection campaigns: per-seed "
                    "drop/corruption/jitter/flap/stall scenarios on the "
                    "fabric, the go-back-N reliable transport armed on "
                    "every NIC, and all invariant monitors (including "
                    "reliable-delivery) watching.  Any failure replays "
                    "from its (workload, seed) pair alone.")
    parser.add_argument("--seeds", type=int, default=25, metavar="N",
                        help="fault cases per workload (default: 25)")
    parser.add_argument("--seed-start", type=int, default=0, metavar="S",
                        help="first seed of the range (default: 0)")
    parser.add_argument("--workloads", nargs="+", choices=list(FAULT_WORKLOADS),
                        default=list(FAULT_WORKLOADS), metavar="W",
                        help=f"subset of {list(FAULT_WORKLOADS)} (default: all)")
    parser.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="worker processes (results identical to -j 1)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop scheduling new batches after the first "
                             "failing case")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the full campaign report as JSON")
    parser.add_argument("--degraded", action="store_true",
                        help="instead of a campaign, run the degraded-mode "
                             "study: goodput and p50/p99 latency per "
                             "strategy across loss rates")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1, got {args.seeds}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    if args.degraded:
        from repro.apps.degraded import degraded_report

        degraded_report(jobs=args.jobs)
        return 0

    report = run_faults_campaign(workloads=args.workloads, seeds=args.seeds,
                                 seed_start=args.seed_start, jobs=args.jobs,
                                 fail_fast=args.fail_fast)
    for workload, (passed, total) in sorted(report.by_workload().items()):
        marker = "ok  " if passed == total else "FAIL"
        print(f"{marker} {workload:<12} {passed}/{total} cases clean")
    if report.gave_up:
        print(f"note: {len(report.gave_up)} case(s) exhausted the retry "
              "budget and died cleanly with TransportError (still a pass)")
    for record in report.failures:
        m = record.metrics
        print(f"\nFAIL {m['workload']} seed={m['seed']} "
              f"params={m['inner_params']} faults={m['faults']}")
        if m["violation"]:
            v = m["violation"]
            print(f"  [{v['invariant']}] {v['message']}")
            for line in v.get("context", ()):
                print(f"    {line}")
        if m["crash"]:
            print(f"  crash: {m['crash']}")
        print(f"  replay: python -m repro faults --workloads "
              f"{m['workload']} --seeds 1 --seed-start {m['seed']}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    total_failed = len(report.failures)
    print(f"\n{report.total - total_failed}/{report.total} cases clean"
          + (f", {total_failed} FAILED" if total_failed else ""))
    return 0 if report.ok else 1


def _stats_workloads():
    """Workload name -> (experiment factory, stats-sized param overlay).

    Overlays shrink the heavyweight defaults (e.g. the 8 MiB Figure 10
    allreduce) to something a smoke run finishes in seconds; ``strategy``
    is merged in from the command line.
    """
    from repro.apps.degraded import DegradedExperiment
    from repro.apps.jacobi import JacobiExperiment
    from repro.apps.microbench import MicrobenchExperiment
    from repro.collectives.ring import AllreduceExperiment

    return {
        "microbench": (MicrobenchExperiment, {}),
        "jacobi": (JacobiExperiment, {}),
        "allreduce": (AllreduceExperiment, {"nbytes": 256 * 1024}),
        "degraded": (DegradedExperiment, {"loss": 0.02}),
    }


def _print_stats(name: str, telemetry) -> None:
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
    for key, value in sorted(telemetry.get("counters", {}).items()):
        print(f"  counter    {key:<44} {value}")
    for key, g in sorted(telemetry.get("gauges", {}).items()):
        print(f"  gauge      {key:<44} last={g['value']} "
              f"min={g['min']} max={g['max']}")
    for key, h in sorted(telemetry.get("histograms", {}).items()):
        print(f"  histogram  {key:<44} n={h['count']} p50={h['p50']} "
              f"p99={h['p99']} max={h['max']}")
    for key, s in sorted(telemetry.get("series", {}).items()):
        print(f"  series     {key:<44} observed={s['observed']} "
              f"min={s['min']} max={s['max']} last={s['last']}")


def _bench_main(argv) -> int:
    from repro.bench import DEFAULT_REPORT_PATH, WORKLOADS, run_bench

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time the standard workloads (raw engine stress, "
                    "Figure 8 microbench, Jacobi, ring allreduce) and "
                    "report events/sec, wall time and peak RSS -- the "
                    "measured standard engine optimizations are held to.")
    parser.add_argument("--workloads", nargs="+", choices=list(WORKLOADS),
                        default=list(WORKLOADS), metavar="W",
                        help=f"subset of {list(WORKLOADS)} (default: all)")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="timed runs per workload; best wall time is "
                             "reported (default: 3)")
    parser.add_argument("--json", metavar="FILE", nargs="?", default=None,
                        const=DEFAULT_REPORT_PATH,
                        help="write the report as JSON (default file: "
                             f"{DEFAULT_REPORT_PATH})")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")

    report = run_bench(workloads=args.workloads, repeat=args.repeat)
    if args.json:
        path = report.write(args.json)
        print(f"report written to {path}")
    return 0


def _stats_main(argv) -> int:
    from repro.metrics import MetricsRegistry
    from repro.runtime import Observers
    from repro.runtime.traceexport import export_chrome_trace

    workloads = _stats_workloads()
    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="Run a workload with the repro.metrics observability "
                    "layer attached and print the per-component hardware "
                    "breakdown: doorbell-FIFO depth, CU occupancy, "
                    "per-link bytes, trigger-list activity and latency "
                    "histograms.")
    parser.add_argument("workloads", nargs="*", choices=[*workloads, []],
                        help=f"subset of {list(workloads)} "
                             "(default: microbench)")
    parser.add_argument("--strategy", default="gputn",
                        choices=["gputn", "gds", "hdn"],
                        help="initiation strategy (default: gputn)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write params + metrics + telemetry per "
                             "workload as JSON")
    parser.add_argument("--export-trace", metavar="DIR", default=None,
                        help="run traced and write Perfetto JSON (spans "
                             "plus metric counter tracks) into DIR")
    args = parser.parse_args(argv)

    doc = {}
    for pick in (args.workloads or ["microbench"]):
        factory, overlay = workloads[pick]
        params = dict(overlay, strategy=args.strategy)
        registry = MetricsRegistry()
        execution = factory().execute(
            params, trace=True if args.export_trace else None,
            observers=Observers(metrics=registry))
        record = execution.record
        _print_stats(f"{pick} ({args.strategy})", record.telemetry)
        doc[pick] = {"params": record.params, "metrics": record.metrics,
                     "telemetry": record.telemetry}
        if args.export_trace:
            path = export_chrome_trace(
                execution.cluster.tracer,
                f"{args.export_trace}/{pick}-{args.strategy}.json",
                metrics=registry)
            print(f"  trace written to {path}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"\nstats written to {args.json}")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["validate"]:
        return _validate_main(argv[1:])
    if argv[:1] == ["faults"]:
        return _faults_main(argv[1:])
    if argv[:1] == ["stats"]:
        return _stats_main(argv[1:])
    if argv[:1] == ["bench"]:
        return _bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate exhibits from 'GPU Triggered Networking for "
                    "Intra-Kernel Communications' (SC17).")
    parser.add_argument("exhibits", nargs="*", choices=[*_EXHIBITS, []],
                        help=f"subset to run (default: all of {list(_EXHIBITS)})")
    parser.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help="fan sweep points out over N worker processes "
                             "(results are bit-identical to -j 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache location (default: .repro-cache, "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--export-trace", metavar="DIR", default=None,
                        help="write Chrome trace-event JSON for traceable "
                             "exhibits (fig8) into DIR")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    picks = args.exhibits or list(_EXHIBITS)
    if args.export_trace and not _TRACEABLE & set(picks):
        print(f"warning: --export-trace has no effect; none of {picks} is "
              f"traceable (traceable: {sorted(_TRACEABLE)})", file=sys.stderr)
    for key in picks:
        name, fn = _EXHIBITS[key]
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        kwargs = {}
        if key in _SWEEPING:
            kwargs["jobs"] = args.jobs
            kwargs["cache"] = cache
        if key in _TRACEABLE and args.export_trace:
            kwargs["export_dir"] = args.export_trace
        fn(**kwargs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
