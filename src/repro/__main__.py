"""Command-line entry: regenerate the paper's tables and figures.

Usage::

    python -m repro                     # everything (Figure 10/11 dominate)
    python -m repro fig1 fig8 tab2      # a subset
    python -m repro fig9 fig10 -j 8     # fan sweep points over 8 processes
    python -m repro --no-cache fig10    # force fresh simulation
    python -m repro fig8 --export-trace traces/   # Perfetto-loadable JSON

Results are cached on disk (``.repro-cache/`` by default, override with
``$REPRO_CACHE_DIR``) keyed by code version, configuration hash and sweep
point, so re-rendering an exhibit is free once its runs exist.

The ``validate`` subcommand runs the invariant-checking schedule fuzzer
instead of an exhibit (see :mod:`repro.validate`)::

    python -m repro validate                        # 100 seeds x 3 workloads
    python -m repro validate --seeds 25 --jobs 4    # quicker, parallel
    python -m repro validate --workloads jacobi --fail-fast --json out.json

The ``faults`` subcommand runs seeded fault-injection campaigns with the
go-back-N reliable transport armed (see :mod:`repro.faults`)::

    python -m repro faults                          # 25 seeds x 3 workloads
    python -m repro faults --seeds 10 --jobs 2      # CI smoke
    python -m repro faults --workloads allreduce --fail-fast --json out.json
    python -m repro faults --degraded               # goodput/p99 vs loss rate

The ``jobs`` subcommand is the resumable face of the same campaigns: it
journals every completed case into a job store (``.repro-jobs/`` by
default, override with ``$REPRO_JOBS_DIR``), streams per-case progress,
and survives SIGINT/SIGTERM -- a preempted job resumes from the journal,
re-running only the cases that never finished (see :mod:`repro.service`)::

    python -m repro jobs submit validate --seeds 500 --jobs 8
    python -m repro jobs status                     # every stored job
    python -m repro jobs status <job-id>
    python -m repro jobs resume <job-id> --jobs 8

The ``congestion`` subcommand runs the under-load study: background
traffic (:mod:`repro.traffic`) fills finite switch queues
(:mod:`repro.net.queues`) while a foreground stream is timed per ARQ
transport and initiation strategy, with the packet-conservation and
exactly-once monitors armed at every point::

    python -m repro congestion                      # full acceptance grid
    python -m repro congestion --loads 0.5 --jobs 4
    python -m repro congestion --disciplines red-ecn --transports selective-repeat
    python -m repro jobs submit congestion --loads 0.2 0.8 --json out.json

The ``stats`` subcommand runs a workload with a
:class:`repro.metrics.MetricsRegistry` attached and prints the
per-component hardware breakdown -- FIFO depths, CU occupancy, per-link
bytes, latency histograms (see :mod:`repro.metrics`)::

    python -m repro stats                           # microbench, gputn
    python -m repro stats jacobi allreduce --strategy gds
    python -m repro stats degraded --json stats.json
    python -m repro stats microbench --export-trace traces/

The ``bench`` subcommand times the simulator itself -- raw engine event
throughput plus the standard workloads -- and writes ``BENCH_core.json``
(see :mod:`repro.bench`)::

    python -m repro bench                           # all workloads, 3 repeats
    python -m repro bench --repeat 1 --json         # CI smoke + report file
    python -m repro bench --workloads engine jacobi --json bench.json
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    figure1_report,
    figure8_report,
    figure9_report,
    figure10_report,
    figure11_report,
    table1_report,
    table2_report,
    table3_report,
)
from repro.runtime import ResultCache

_EXHIBITS = {
    "tab1": ("Table 1", table1_report),
    "tab2": ("Table 2", table2_report),
    "tab3": ("Table 3", table3_report),
    "fig1": ("Figure 1", figure1_report),
    "fig8": ("Figure 8", figure8_report),
    "fig9": ("Figure 9", figure9_report),
    "fig10": ("Figure 10", figure10_report),
    "fig11": ("Figure 11", figure11_report),
}

#: Exhibits that run simulation sweeps (and so accept jobs / cache).
_SWEEPING = {"fig1", "fig9", "fig10", "fig11"}
#: Exhibits whose tracer timelines can be exported.
_TRACEABLE = {"fig8"}


# --------------------------------------------------------------- shared args
def add_jobs_arg(parser: argparse.ArgumentParser,
                 help: str = "worker processes (results identical to -j 1)"
                 ) -> None:
    """The one ``--jobs`` flag every sweeping subcommand shares."""
    parser.add_argument("-j", "--jobs", type=int, default=1, metavar="N",
                        help=help)


def check_jobs_arg(parser: argparse.ArgumentParser,
                   args: argparse.Namespace) -> None:
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")


def add_dispatch_args(parser: argparse.ArgumentParser) -> None:
    """Remote-dispatch surface shared by every campaign subcommand."""
    parser.add_argument("--listen", metavar="[HOST:]PORT", default=None,
                        help="open the job to remote workers at this "
                             "address (0 = ephemeral port); join with "
                             "`python -m repro worker serve --connect "
                             "HOST:PORT`")
    parser.add_argument("--priority", type=int, default=0, metavar="P",
                        help="job priority: higher preempts lower at point "
                             "granularity within this process (default: 0)")
    parser.add_argument("--window", type=int, default=None, metavar="N",
                        help="max in-flight points across all workers "
                             "(default: max(4, 2*jobs))")


def check_dispatch_args(parser: argparse.ArgumentParser,
                        args: argparse.Namespace) -> None:
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    if args.jobs == 0 and args.listen is None:
        parser.error("--jobs 0 is remote-only; it needs --listen so "
                     "workers can join")
    if args.window is not None and args.window < 1:
        parser.error(f"--window must be >= 1, got {args.window}")


def add_campaign_args(parser: argparse.ArgumentParser, *,
                      workloads, seeds_default: int) -> None:
    """The seeded-campaign surface shared by ``validate``/``faults``
    (and their ``jobs submit`` spellings)."""
    parser.add_argument("--seeds", type=int, default=seeds_default,
                        metavar="N",
                        help=f"cases per workload (default: {seeds_default})")
    parser.add_argument("--seed-start", type=int, default=0, metavar="S",
                        help="first seed of the range (default: 0)")
    parser.add_argument("--workloads", nargs="+", choices=list(workloads),
                        default=list(workloads), metavar="W",
                        help=f"subset of {list(workloads)} (default: all)")
    add_jobs_arg(parser)
    add_dispatch_args(parser)
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop dispatching new cases after the first "
                             "failing case (in-flight cases still finish)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="reuse case records across campaigns via a "
                             "ResultCache at DIR (hit/miss tally lands in "
                             "the summary and the --json report)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the full campaign report as JSON")


def check_campaign_args(parser: argparse.ArgumentParser,
                        args: argparse.Namespace) -> None:
    if args.seeds < 1:
        parser.error(f"--seeds must be >= 1, got {args.seeds}")
    check_dispatch_args(parser, args)


def check_topology_specs(parser: argparse.ArgumentParser, specs,
                         node_counts) -> None:
    """Fail fast (exit 2, grammar in the message) on any bad topology
    spec or spec/size mismatch -- shared by ``topo`` and ``congestion``
    so neither campaign dies mid-sweep with a raw traceback."""
    from repro.net import make_topology

    for spec in specs:
        for n in node_counts:
            try:
                make_topology(spec, n)
            except ValueError as err:
                parser.error(f"topology {spec!r} at {n} nodes: {err}")


# ----------------------------------------------------------------- campaigns
def _campaign_kind(kind: str):
    """Late-bound campaign plumbing: (workloads, runner, seeds, blurb)."""
    if kind == "validate":
        from repro.validate import FUZZ_WORKLOADS, run_campaign
        return FUZZ_WORKLOADS, run_campaign, 100, (
            "Fuzz event schedules and timing knobs over the paper's "
            "workloads with every DESIGN.md §6 invariant monitor armed.  "
            "Any failure replays from its (workload, seed) pair alone.")
    from repro.faults import FAULT_WORKLOADS, run_faults_campaign
    return FAULT_WORKLOADS, run_faults_campaign, 25, (
        "Run seeded fault-injection campaigns: per-seed "
        "drop/corruption/jitter/flap/stall scenarios on the fabric, the "
        "go-back-N reliable transport armed on every NIC, and all "
        "invariant monitors (including reliable-delivery) watching.  "
        "Any failure replays from its (workload, seed) pair alone.")


def _campaign_progress(event) -> None:
    """One line per resolved case, streamed as the service reports it."""
    m = event.record.metrics
    if "workload" in m and "seed" in m:
        what = f"{m['workload']} seed={m['seed']}"
        marker = "ok" if m.get("ok") else "FAIL"
    else:
        what = f"{event.record.experiment}[{event.index}]"
        marker = "done"
    src = "" if event.source == "run" else f" [{event.source}]"
    print(f"[{event.done}/{event.total}] {what} {marker}{src}", flush=True)


def _print_campaign_report(kind: str, report, json_path=None) -> int:
    """Shared summary/failure/json rendering for both campaign kinds."""
    for workload, (passed, total) in sorted(report.by_workload().items()):
        marker = "ok  " if passed == total else "FAIL"
        print(f"{marker} {workload:<12} {passed}/{total} cases clean")
    if kind == "faults" and report.gave_up:
        print(f"note: {len(report.gave_up)} case(s) exhausted the retry "
              "budget and died cleanly with TransportError (still a pass)")
    scenario_key = "knobs" if kind == "validate" else "faults"
    for record in report.failures:
        m = record.metrics
        print(f"\nFAIL {m['workload']} seed={m['seed']} "
              f"params={m['inner_params']} {scenario_key}={m[scenario_key]}")
        if m["violation"]:
            v = m["violation"]
            print(f"  [{v['invariant']}] {v['message']}")
            for line in v.get("context", ()):
                print(f"    {line}")
        if m["crash"]:
            print(f"  crash: {m['crash']}")
        print(f"  replay: python -m repro {kind} --workloads "
              f"{m['workload']} --seeds 1 --seed-start {m['seed']}")
    if json_path:
        import json

        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"\nreport written to {json_path}")
    if report.cache_stats is not None:
        print(f"\ncache: {report.cache_stats['hits']} hits, "
              f"{report.cache_stats['misses']} misses")
    total_failed = len(report.failures)
    print(f"\n{report.total - total_failed}/{report.total} cases clean"
          + (f", {total_failed} FAILED" if total_failed else ""))
    return 0 if report.ok else 1


def _campaign_main(kind: str, argv, store=None, echo: bool = False,
                   checkpoint=None) -> int:
    workloads, runner, seeds_default, description = _campaign_kind(kind)
    parser = argparse.ArgumentParser(prog=f"python -m repro {kind}",
                                     description=description)
    add_campaign_args(parser, workloads=workloads,
                      seeds_default=seeds_default)
    if kind == "faults":
        parser.add_argument("--degraded", action="store_true",
                            help="instead of a campaign, run the "
                                 "degraded-mode study: goodput and p50/p99 "
                                 "latency per strategy across loss rates")
    args = parser.parse_args(argv)
    check_campaign_args(parser, args)

    if kind == "faults" and args.degraded:
        from repro.apps.degraded import degraded_report

        degraded_report(jobs=args.jobs)
        return 0

    from repro.service import JobPreempted

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    try:
        report = runner(workloads=args.workloads, seeds=args.seeds,
                        seed_start=args.seed_start, jobs=args.jobs,
                        fail_fast=args.fail_fast, cache=cache, store=store,
                        progress=_campaign_progress if echo else None,
                        checkpoint=checkpoint, listen=args.listen,
                        priority=args.priority, window=args.window)
    except JobPreempted as preempt:
        print(f"\npreempted at {preempt.done}/{preempt.total} cases; resume "
              f"with: python -m repro jobs resume {preempt.job_id}",
              flush=True)
        return 130
    return _print_campaign_report(kind, report, args.json)


# ---------------------------------------------------------------------- jobs
def _jobs_main(argv) -> int:
    from repro.service import Job, JobPreempted, JobStore, SubmitThrottled

    commands = ("submit", "status", "list", "resume", "cancel")
    if not argv or argv[0] not in commands:
        print(f"usage: python -m repro jobs {{{','.join(commands)}}} ...\n"
              "  submit {validate,faults,topo,congestion} [--store DIR] "
              "[campaign args]\n"
              "  status [JOB_ID] [--store DIR] [--json]\n"
              "  resume JOB_ID [--store DIR] [-j N] [--json FILE]\n"
              "  cancel JOB_ID [--store DIR]",
              file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]

    if command == "cancel":
        parser = argparse.ArgumentParser(
            prog="python -m repro jobs cancel",
            description="Journal a cancel request: a running job stops "
                        "dispatching new points within one poll interval "
                        "(in-flight points finish and stay journaled); a "
                        "job that is not running is marked cancelled.")
        parser.add_argument("job_id")
        parser.add_argument("--store", metavar="DIR", default=None)
        args = parser.parse_args(rest)
        store = JobStore(args.store)
        try:
            status = store.request_cancel(args.job_id)
        except KeyError as missing:
            print(missing.args[0], file=sys.stderr)
            return 1
        print(f"job {args.job_id} {status}")
        return 0

    if command == "submit":
        parser = argparse.ArgumentParser(
            prog="python -m repro jobs submit",
            description="Submit a journaled campaign job and run it; every "
                        "completed case lands in the job store, so a killed "
                        "or preempted campaign resumes from where it "
                        "stopped.")
        parser.add_argument("kind", choices=["validate", "faults", "topo",
                                             "congestion"])
        parser.add_argument("--store", metavar="DIR", default=None,
                            help="job store root (default: .repro-jobs, or "
                                 "$REPRO_JOBS_DIR)")
        parser.add_argument("--checkpoint-interval-ns", type=int, default=None,
                            metavar="NS",
                            help="snapshot every point's simulator state "
                                 "every NS sim-ns into the job's checkpoint "
                                 "directory; a killed worker resumes its "
                                 "in-flight point from the latest snapshot "
                                 "instead of t=0 (records stay byte-"
                                 "identical)")
        parser.add_argument("--max-active", type=int, default=None,
                            metavar="N",
                            help="backpressure: reject this submission (exit "
                                 "75) if N jobs are already running in the "
                                 "store")
        parser.add_argument("--min-submit-interval", type=float, default=0.0,
                            metavar="SECONDS",
                            help="backpressure: reject this submission (exit "
                                 "75) if a new job was submitted to the "
                                 "store less than SECONDS ago")
        args, campaign_argv = parser.parse_known_args(rest)
        if (args.checkpoint_interval_ns is not None
                and args.checkpoint_interval_ns <= 0):
            parser.error("--checkpoint-interval-ns must be positive")
        checkpoint = args.checkpoint_interval_ns
        store = JobStore(args.store, max_active=args.max_active,
                         min_interval_s=args.min_submit_interval)
        try:
            if args.kind == "topo":
                return _topo_main(campaign_argv, store=store,
                                  echo=True, checkpoint=checkpoint)
            if args.kind == "congestion":
                return _congestion_main(campaign_argv, store=store,
                                        echo=True, checkpoint=checkpoint)
            return _campaign_main(args.kind, campaign_argv,
                                  store=store, echo=True,
                                  checkpoint=checkpoint)
        except SubmitThrottled as throttled:
            print(f"submission rejected: {throttled}", file=sys.stderr)
            return 75  # EX_TEMPFAIL: retry later

    if command in ("status", "list"):
        parser = argparse.ArgumentParser(
            prog=f"python -m repro jobs {command}",
            description="Show stored jobs (or one job's detail).")
        parser.add_argument("job_id", nargs="?", default=None)
        parser.add_argument("--store", metavar="DIR", default=None)
        parser.add_argument("--json", action="store_true",
                            help="machine-readable output")
        args = parser.parse_args(rest)
        store = JobStore(args.store)
        job_ids = [args.job_id] if args.job_id else store.jobs()
        try:
            rows = [Job.load(store, job_id).status() for job_id in job_ids]
        except KeyError as missing:
            print(missing.args[0], file=sys.stderr)
            return 1
        if args.json:
            import json

            print(json.dumps(rows, indent=2, sort_keys=True))
        elif not rows:
            print(f"no jobs in {store.root}")
        else:
            for row in rows:
                sources = row.get("sources") or {}
                breakdown = ", ".join(
                    f"{sources[k]} {label}"
                    for k, label in (("run", "recomputed"),
                                     ("restored", "restored"),
                                     ("cache", "cached"),
                                     ("journal", "journaled"))
                    if sources.get(k))
                ckpts = row.get("checkpoints", 0)
                print(f"{row['job_id']}  {row['status']:<10} "
                      f"{row.get('journaled', 0)}/{row['total']} journaled  "
                      f"{row['experiment']}"
                      + (f"  [{breakdown}]" if breakdown else "")
                      + (f"  {ckpts} checkpoint(s) on disk" if ckpts else ""))
        return 0

    # resume
    parser = argparse.ArgumentParser(
        prog="python -m repro jobs resume",
        description="Continue a stored job: journaled cases replay for "
                    "free, only the holes execute.")
    parser.add_argument("job_id")
    parser.add_argument("--store", metavar="DIR", default=None)
    add_jobs_arg(parser)
    add_dispatch_args(parser)
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the campaign report as JSON")
    args = parser.parse_args(rest)
    check_dispatch_args(parser, args)
    store = JobStore(args.store)
    try:
        job = Job.load(store, args.job_id)
    except KeyError as missing:
        print(missing.args[0], file=sys.stderr)
        return 1
    job.priority = args.priority
    if args.listen is not None:
        host, port = job.listen(args.listen)
        print(f"job {job.id} listening on {host}:{port} -- join with: "
              f"python -m repro worker serve --connect {host}:{port}",
              flush=True)
    try:
        records = job.run(jobs=args.jobs, progress=_campaign_progress,
                          window=args.window)
    except JobPreempted as preempt:
        print(f"\npreempted at {preempt.done}/{preempt.total} cases; resume "
              f"with: python -m repro jobs resume {preempt.job_id}",
              flush=True)
        return 130
    done = [r for r in records if r is not None]
    print(f"\njob {job.id} {job.status()['status']}: "
          f"{job.stats['journal']} journaled, {job.stats['cache']} cached, "
          f"{job.stats['restored']} restored, {job.stats['run']} ran")
    kind = job.spec.experiment
    if kind in ("validate", "faults"):
        if kind == "validate":
            from repro.validate.fuzz import FuzzReport as Report
        else:
            from repro.faults.campaign import FaultsReport as Report
        return _print_campaign_report(kind, Report(records=done), args.json)
    print(f"{len(done)}/{len(records)} points complete")
    return 0


# --------------------------------------------------------------------- worker
def _worker_cli(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Serve this machine's cycles to a listening job: "
                    "connect to a dispatcher (a campaign started with "
                    "--listen), handshake, and run (index, point) tasks "
                    "until the job finishes.  Stale workers -- code or "
                    "protocol version mismatch -- are rejected "
                    "deterministically at the handshake.")
    parser.add_argument("verb", choices=["serve"])
    parser.add_argument("--connect", metavar="HOST:PORT", required=True,
                        help="dispatcher address printed by the submitting "
                             "process")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="shared-filesystem job store: when the job's "
                             "spec is present here, the payload is loaded "
                             "from disk instead of shipped over the wire")
    parser.add_argument("--retry", type=float, default=30.0, metavar="S",
                        help="keep retrying the connection for S seconds "
                             "when the dispatcher is unreachable "
                             "(default: 30)")
    parser.add_argument("--once", action="store_true",
                        help="serve one connection then exit instead of "
                             "reconnecting until the job's final stop")
    args = parser.parse_args(argv)
    if args.retry < 0:
        parser.error(f"--retry must be >= 0, got {args.retry}")
    from repro.service.remote import serve_worker

    def log(message: str) -> None:
        print(f"[worker] {message}", flush=True)

    return serve_worker(args.connect, store=args.store, retry_s=args.retry,
                        once=args.once, log=log)


# ----------------------------------------------------------------- topo
def _topo_progress(event) -> None:
    p = event.record.params
    marker = "ok" if event.record.metrics["correct"] else "FAIL"
    src = "" if event.source == "run" else f" [{event.source}]"
    print(f"[{event.done}/{event.total}] {p['topology']} {p['schedule']} "
          f"{p['strategy']} n={p['n_nodes']} "
          f"{event.record.metrics['total_ns']}ns {marker}{src}", flush=True)


def _topo_main(argv, store=None, echo: bool = False,
               checkpoint=None) -> int:
    from repro.apps.topo_scale import (TOPO_SCHEDULES, TOPO_STRATEGIES,
                                       TOPO_TOPOLOGIES, run_topo_campaign)
    from repro.collectives.algorithms import SCHEDULE_BUILDERS

    parser = argparse.ArgumentParser(
        prog="python -m repro topo",
        description="Scale-out study: run the collective schedule zoo "
                    "across datacenter topologies and node counts, "
                    "verifying every point against the NumPy schedule "
                    "oracle and reporting GPU-TN speedup over GDS/HDN.")
    parser.add_argument("--topologies", nargs="+", metavar="T",
                        default=list(TOPO_TOPOLOGIES),
                        help="topology spec strings, e.g. star fat-tree:k=4 "
                             f"torus:8x8 dragonfly (default: "
                             f"{list(TOPO_TOPOLOGIES)})")
    parser.add_argument("--schedules", nargs="+", metavar="S",
                        choices=sorted(SCHEDULE_BUILDERS),
                        default=list(TOPO_SCHEDULES),
                        help=f"subset of {sorted(SCHEDULE_BUILDERS)} "
                             "(default: all)")
    parser.add_argument("--strategies", nargs="+", metavar="B",
                        choices=["cpu", "hdn", "gds", "gputn"],
                        default=list(TOPO_STRATEGIES),
                        help="backends to compare (default: gputn gds hdn)")
    parser.add_argument("--nodes", nargs="+", type=int, default=[16, 64],
                        metavar="N", help="node counts (default: 16 64)")
    parser.add_argument("--nbytes", type=int, default=64 * 1024, metavar="B",
                        help="payload bytes, padded to whole float32 chunks "
                             "(default: 65536)")
    parser.add_argument("--seed", type=int, default=11,
                        help="data seed (default: 11)")
    add_jobs_arg(parser)
    add_dispatch_args(parser)
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop dispatching new points after the first "
                             "oracle mismatch")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="reuse point records across campaigns via a "
                             "ResultCache at DIR")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    check_dispatch_args(parser, args)
    if any(n < 2 for n in args.nodes):
        parser.error("--nodes entries must be >= 2")
    check_topology_specs(parser, args.topologies, args.nodes)

    from repro.service import JobPreempted

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    try:
        report = run_topo_campaign(
            topologies=args.topologies, schedules=args.schedules,
            strategies=args.strategies, node_counts=args.nodes,
            nbytes=args.nbytes, seed=args.seed, jobs=args.jobs,
            fail_fast=args.fail_fast, cache=cache, store=store,
            progress=_topo_progress if echo else None,
            checkpoint=checkpoint, listen=args.listen,
            priority=args.priority, window=args.window)
    except JobPreempted as preempt:
        print(f"\npreempted at {preempt.done}/{preempt.total} points; resume "
              f"with: python -m repro jobs resume {preempt.job_id}",
              flush=True)
        return 130

    cases = report.by_case()
    speedups = report.speedups()
    print(f"{'topology':<16} {'schedule':<20} {'n':>4}  "
          + "".join(f"{s:>12}" for s in args.strategies)
          + "  gputn speedup")
    for key in sorted(cases):
        topo, sched, n = key
        times = cases[key]
        cols = "".join(f"{times.get(s, '-'):>12}" for s in args.strategies)
        sp = speedups.get(key, {})
        sp_txt = " ".join(f"{s}:{v:.2f}x" for s, v in sorted(sp.items()))
        print(f"{topo:<16} {sched:<20} {n:>4}  {cols}  {sp_txt}")
    for r in report.failures:
        p = r.params
        print(f"\nFAIL {p['topology']} {p['schedule']} {p['strategy']} "
              f"n={p['n_nodes']}: result diverged from the NumPy oracle")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    if report.cache_stats is not None:
        print(f"\ncache: {report.cache_stats['hits']} hits, "
              f"{report.cache_stats['misses']} misses")
    failed = len(report.failures)
    print(f"\n{report.total - failed}/{report.total} points verified"
          + (f", {failed} FAILED" if failed else ""))
    return 0 if report.ok else 1


# ------------------------------------------------------------- congestion
def _congestion_progress(event) -> None:
    p = event.record.params
    m = event.record.metrics
    marker = "ok" if m["ok"] else "FAIL"
    src = "" if event.source == "run" else f" [{event.source}]"
    print(f"[{event.done}/{event.total}] load={p['load']} "
          f"{p['discipline']} {p['transport']} {p['strategy']} "
          f"p99={m['p99_latency_ns']}ns {marker}{src}", flush=True)


def _congestion_main(argv, store=None, echo: bool = False,
                     checkpoint=None) -> int:
    from repro.apps.congestion import (CONGESTION_DISCIPLINES,
                                       CONGESTION_LOADS,
                                       CONGESTION_STRATEGIES,
                                       CONGESTION_TRANSPORTS,
                                       run_congestion_campaign)

    parser = argparse.ArgumentParser(
        prog="python -m repro congestion",
        description="Under-load study: sweep background load x switch-queue "
                    "discipline x ARQ transport x initiation strategy on a "
                    "congested fat tree, reporting foreground goodput and "
                    "p50/p99 latency with the packet-conservation and "
                    "exactly-once monitors armed at every point.")
    parser.add_argument("--loads", nargs="+", type=float, metavar="L",
                        default=list(CONGESTION_LOADS),
                        help="background load per node as a fraction of "
                             f"link rate (default: {list(CONGESTION_LOADS)})")
    parser.add_argument("--disciplines", nargs="+", metavar="D",
                        choices=["drop-tail", "red", "red-ecn", "none"],
                        default=list(CONGESTION_DISCIPLINES),
                        help="switch-queue disciplines (default: "
                             f"{list(CONGESTION_DISCIPLINES)})")
    parser.add_argument("--transports", nargs="+", metavar="T",
                        choices=["go-back-n", "selective-repeat"],
                        default=list(CONGESTION_TRANSPORTS),
                        help="ARQ engines (selective-repeat pairs with AIMD "
                             f"pacing; default: {list(CONGESTION_TRANSPORTS)})")
    parser.add_argument("--strategies", nargs="+", metavar="B",
                        choices=["hdn", "gds", "gputn"],
                        default=list(CONGESTION_STRATEGIES),
                        help="initiation strategies to compare (default: "
                             f"{list(CONGESTION_STRATEGIES)})")
    parser.add_argument("--topology", default="fat-tree:k=4", metavar="SPEC",
                        help="topology spec string (default: fat-tree:k=4)")
    parser.add_argument("--nodes", type=int, default=16, metavar="N",
                        help="cluster size (default: 16)")
    parser.add_argument("--messages", type=int, default=32, metavar="M",
                        help="foreground messages per point (default: 32)")
    parser.add_argument("--nbytes", type=int, default=1024, metavar="B",
                        help="foreground message size (default: 1024)")
    parser.add_argument("--bg-horizon-ns", type=int, default=120_000,
                        metavar="NS",
                        help="background-traffic generation horizon "
                             "(default: 120000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="traffic/RED seed (default: 0)")
    add_jobs_arg(parser)
    add_dispatch_args(parser)
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop dispatching new points after the first "
                             "monitor violation or give-up")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="reuse point records across campaigns via a "
                             "ResultCache at DIR")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    check_dispatch_args(parser, args)
    if args.nodes < 2:
        parser.error(f"--nodes must be >= 2, got {args.nodes}")
    if args.messages < 1:
        parser.error(f"--messages must be >= 1, got {args.messages}")
    if any(load < 0 for load in args.loads):
        parser.error("--loads entries must be >= 0")
    check_topology_specs(parser, [args.topology], [args.nodes])

    from repro.service import JobPreempted

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    try:
        report = run_congestion_campaign(
            loads=args.loads, disciplines=args.disciplines,
            transports=args.transports, strategies=args.strategies,
            topology=args.topology, n_nodes=args.nodes,
            messages=args.messages, nbytes=args.nbytes,
            bg_horizon_ns=args.bg_horizon_ns, seed=args.seed,
            jobs=args.jobs, fail_fast=args.fail_fast, cache=cache,
            store=store, progress=_congestion_progress if echo else None,
            checkpoint=checkpoint, listen=args.listen,
            priority=args.priority, window=args.window)
    except JobPreempted as preempt:
        print(f"\npreempted at {preempt.done}/{preempt.total} points; resume "
              f"with: python -m repro jobs resume {preempt.job_id}",
              flush=True)
        return 130

    print(f"{'load':>5} {'discipline':<11} {'transport':<17}  "
          + "".join(f"{s + ' p99':>13}" for s in args.strategies)
          + "  goodput(B/us)")
    for key in sorted(report.by_case()):
        load, disc, transport = key
        per_strategy = report.by_case()[key]
        cols = "".join(
            f"{per_strategy[s]['p99_latency_ns'] if s in per_strategy else '-':>13}"
            for s in args.strategies)
        good = " ".join(
            f"{s}:{m['goodput_bytes_per_us']}"
            for s, m in sorted(per_strategy.items()))
        print(f"{load:>5} {disc:<11} {transport:<17}  {cols}  {good}")
    for r in report.failures:
        p, m = r.params, r.metrics
        why = ("gave up" if m["gave_up"] else
               "; ".join(v["invariant"] for v in m["violations"])
               or f"delivered {m['delivered']}/{m['requested']}")
        print(f"\nFAIL load={p['load']} {p['discipline']} {p['transport']} "
              f"{p['strategy']}: {why}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    if report.cache_stats is not None:
        print(f"\ncache: {report.cache_stats['hits']} hits, "
              f"{report.cache_stats['misses']} misses")
    failed = len(report.failures)
    print(f"\n{report.total - failed}/{report.total} points clean"
          + (f", {failed} FAILED" if failed else ""))
    return 0 if report.ok else 1


def _stats_workloads():
    """Workload name -> (experiment factory, stats-sized param overlay).

    Overlays shrink the heavyweight defaults (e.g. the 8 MiB Figure 10
    allreduce) to something a smoke run finishes in seconds; ``strategy``
    is merged in from the command line.
    """
    from repro.apps.degraded import DegradedExperiment
    from repro.apps.jacobi import JacobiExperiment
    from repro.apps.microbench import MicrobenchExperiment
    from repro.collectives.ring import AllreduceExperiment

    return {
        "microbench": (MicrobenchExperiment, {}),
        "jacobi": (JacobiExperiment, {}),
        "allreduce": (AllreduceExperiment, {"nbytes": 256 * 1024}),
        "degraded": (DegradedExperiment, {"loss": 0.02}),
    }


def _print_stats(name: str, telemetry) -> None:
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
    for key, value in sorted(telemetry.get("counters", {}).items()):
        print(f"  counter    {key:<44} {value}")
    for key, g in sorted(telemetry.get("gauges", {}).items()):
        print(f"  gauge      {key:<44} last={g['value']} "
              f"min={g['min']} max={g['max']}")
    for key, h in sorted(telemetry.get("histograms", {}).items()):
        print(f"  histogram  {key:<44} n={h['count']} p50={h['p50']} "
              f"p99={h['p99']} max={h['max']}")
    for key, s in sorted(telemetry.get("series", {}).items()):
        print(f"  series     {key:<44} observed={s['observed']} "
              f"min={s['min']} max={s['max']} last={s['last']}")


def _bench_main(argv) -> int:
    from repro.bench import (DEFAULT_REPORT_PATH, WORKLOADS,
                             compare_to_baseline, run_bench)

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time the standard workloads (raw engine stress, "
                    "Figure 8 microbench, Jacobi, ring allreduce) and "
                    "report events/sec, wall time and peak RSS -- the "
                    "measured standard engine optimizations are held to.")
    parser.add_argument("--workloads", nargs="+", choices=list(WORKLOADS),
                        default=list(WORKLOADS), metavar="W",
                        help=f"subset of {list(WORKLOADS)} (default: all)")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="timed runs per workload; best wall time is "
                             "reported (default: 3)")
    parser.add_argument("--json", metavar="FILE", nargs="?", default=None,
                        const=DEFAULT_REPORT_PATH,
                        help="write the report as JSON (default file: "
                             f"{DEFAULT_REPORT_PATH})")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="regression gate: exit 1 if any shared "
                             "workload's events/sec drops more than "
                             "--max-drop below this BENCH_core.json")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        metavar="FRAC",
                        help="allowed fractional rate drop vs --baseline "
                             "(default: 0.20)")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1, got {args.repeat}")
    if not 0 < args.max_drop < 1:
        parser.error(f"--max-drop must be in (0, 1), got {args.max_drop}")
    baseline = None
    if args.baseline is not None:
        import json

        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as err:
            parser.error(f"--baseline {args.baseline}: {err}")

    report = run_bench(workloads=args.workloads, repeat=args.repeat)
    if args.json:
        path = report.write(args.json)
        print(f"report written to {path}")
    if baseline is not None:
        failures = compare_to_baseline(report, baseline,
                                       max_drop=args.max_drop)
        if failures:
            for line in failures:
                print(f"REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"baseline gate ok (allowed drop: {args.max_drop:.0%})")
    return 0


def _stats_main(argv) -> int:
    from repro.metrics import MetricsRegistry
    from repro.runtime import Observers
    from repro.runtime.traceexport import export_chrome_trace

    workloads = _stats_workloads()
    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="Run a workload with the repro.metrics observability "
                    "layer attached and print the per-component hardware "
                    "breakdown: doorbell-FIFO depth, CU occupancy, "
                    "per-link bytes, trigger-list activity and latency "
                    "histograms.")
    parser.add_argument("workloads", nargs="*", choices=[*workloads, []],
                        help=f"subset of {list(workloads)} "
                             "(default: microbench)")
    parser.add_argument("--strategy", default="gputn",
                        choices=["gputn", "gds", "hdn"],
                        help="initiation strategy (default: gputn)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write params + metrics + telemetry per "
                             "workload as JSON")
    parser.add_argument("--export-trace", metavar="DIR", default=None,
                        help="run traced and write Perfetto JSON (spans "
                             "plus metric counter tracks) into DIR")
    args = parser.parse_args(argv)

    doc = {}
    for pick in (args.workloads or ["microbench"]):
        factory, overlay = workloads[pick]
        params = dict(overlay, strategy=args.strategy)
        registry = MetricsRegistry()
        execution = factory().execute(
            params, trace=True if args.export_trace else None,
            observers=Observers(metrics=registry))
        record = execution.record
        _print_stats(f"{pick} ({args.strategy})", record.telemetry)
        doc[pick] = {"params": record.params, "metrics": record.metrics,
                     "telemetry": record.telemetry}
        if args.export_trace:
            path = export_chrome_trace(
                execution.cluster.tracer,
                f"{args.export_trace}/{pick}-{args.strategy}.json",
                metrics=registry)
            print(f"  trace written to {path}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"\nstats written to {args.json}")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["validate"]:
        return _campaign_main("validate", argv[1:])
    if argv[:1] == ["faults"]:
        return _campaign_main("faults", argv[1:])
    if argv[:1] == ["topo"]:
        return _topo_main(argv[1:], echo=True)
    if argv[:1] == ["congestion"]:
        return _congestion_main(argv[1:], echo=True)
    if argv[:1] == ["jobs"]:
        return _jobs_main(argv[1:])
    if argv[:1] == ["worker"]:
        return _worker_cli(argv[1:])
    if argv[:1] == ["stats"]:
        return _stats_main(argv[1:])
    if argv[:1] == ["bench"]:
        return _bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate exhibits from 'GPU Triggered Networking for "
                    "Intra-Kernel Communications' (SC17).")
    parser.add_argument("exhibits", nargs="*", choices=[*_EXHIBITS, []],
                        help=f"subset to run (default: all of {list(_EXHIBITS)})")
    add_jobs_arg(parser, help="fan sweep points out over N worker processes "
                              "(results are bit-identical to -j 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache location (default: .repro-cache, "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--export-trace", metavar="DIR", default=None,
                        help="write Chrome trace-event JSON for traceable "
                             "exhibits (fig8) into DIR")
    args = parser.parse_args(argv)
    check_jobs_arg(parser, args)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    picks = args.exhibits or list(_EXHIBITS)
    if args.export_trace and not _TRACEABLE & set(picks):
        print(f"warning: --export-trace has no effect; none of {picks} is "
              f"traceable (traceable: {sorted(_TRACEABLE)})", file=sys.stderr)
    for key in picks:
        name, fn = _EXHIBITS[key]
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        kwargs = {}
        if key in _SWEEPING:
            kwargs["jobs"] = args.jobs
            kwargs["cache"] = cache
        if key in _TRACEABLE and args.export_trace:
            kwargs["export_dir"] = args.export_trace
        fn(**kwargs)
    if cache is not None and (cache.hits or cache.misses):
        # stderr: exhibit stdout must stay byte-identical across cached
        # and uncached reruns.
        print(f"cache: {cache.hits} hits, {cache.misses} misses",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
