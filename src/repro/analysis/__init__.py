"""Analysis and reporting: render every paper table/figure as text.

* :func:`~repro.analysis.tables.render_table` -- generic aligned-column
  renderer used by all reports;
* :mod:`~repro.analysis.report` -- one ``figure_N()`` / ``table_N()``
  function per paper exhibit, each returning the rows it printed so the
  benchmark harness can assert on them.
"""

from repro.analysis.report import (
    figure1_report,
    figure8_report,
    figure9_report,
    figure10_report,
    figure11_report,
    table1_report,
    table2_report,
    table3_report,
)
from repro.analysis.tables import render_table

__all__ = [
    "figure1_report",
    "figure8_report",
    "figure9_report",
    "figure10_report",
    "figure11_report",
    "render_table",
    "table1_report",
    "table2_report",
    "table3_report",
]
