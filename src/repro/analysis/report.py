"""One report function per paper exhibit.

Each ``figure_N`` / ``table_N`` runs the corresponding experiment on the
Table 2 configuration, renders the same rows/series the paper reports,
and returns the underlying data so benchmarks and tests can assert on it.
All entry points accept an optional :class:`~repro.config.SystemConfig`
and scale-reduction knobs so the full suite runs in seconds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.tables import render_table, sparkline
from repro.config import MB, SystemConfig, default_config
from repro.gpu.dispatcher import FIGURE1_GPUS
from repro.runtime import ResultCache, Sweep, export_chrome_trace
from repro.strategies import STRATEGIES

__all__ = [
    "figure1_report",
    "figure8_report",
    "figure9_report",
    "figure10_report",
    "figure11_report",
    "table1_report",
    "table2_report",
    "table3_report",
]


# ------------------------------------------------------------------ figures

def figure1_report(depths: Sequence[int] = (1, 4, 16, 64, 256),
                   measured: bool = True,
                   config: Optional[SystemConfig] = None,
                   jobs: int = 1,
                   cache: Optional[ResultCache] = None) -> Dict[str, List[float]]:
    """Figure 1: kernel launch latency (us) vs queue depth, three GPUs.

    With ``measured=True`` the latencies are *measured* by launching empty
    kernel batches on the simulated device; otherwise the analytic model
    values are reported.
    """
    from repro.apps.launch_study import LaunchLatencyExperiment

    config = config or default_config()
    data: Dict[str, List[float]] = {}
    if measured:
        sweep = Sweep(LaunchLatencyExperiment(),
                      grid={"gpu": list(FIGURE1_GPUS),
                            "queue_depth": list(depths)})
        records = sweep.run(config=config, jobs=jobs, cache=cache)
        by_point = {(r.params["gpu"], r.params["queue_depth"]):
                    r.metrics["per_kernel_ns"] for r in records}
        for name in FIGURE1_GPUS:
            data[name] = [by_point[(name, d)] / 1000.0 for d in depths]
    else:
        for name, model in FIGURE1_GPUS.items():
            data[name] = [model.per_kernel_ns(d) / 1000.0 for d in depths]
    rows = [[name] + [f"{v:.1f}" for v in vals] + [sparkline(vals)]
            for name, vals in data.items()]
    print(render_table(
        ["GPU"] + [f"depth={d}" for d in depths] + ["shape"], rows,
        title="Figure 1: per-kernel launch latency (us) vs. queued kernel commands",
    ))
    return data


def figure8_report(config: Optional[SystemConfig] = None,
                   export_dir: Union[str, Path, None] = None
                   ) -> Dict[str, Dict[str, float]]:
    """Figure 8: microbenchmark latency decomposition (us).

    With ``export_dir`` set, each strategy's full simulation timeline is
    also written as Chrome trace-event JSON (``fig8-<strategy>.json``),
    loadable in Perfetto / chrome://tracing.
    """
    from repro.apps.microbench import execute_all_strategies

    executions = execute_all_strategies(config)
    results = {s: e.raw for s, e in executions.items()}
    if export_dir is not None:
        for strategy, execution in executions.items():
            path = export_chrome_trace(
                execution.cluster.tracer,
                Path(export_dir) / f"fig8-{strategy}.json")
            print(f"trace: {path}")
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for key in ("gputn", "gds", "hdn"):
        r = results[key]
        spans = {
            phase: (r.spans.get(("initiator", f"kernel-{phase}")) or (0, 0))
            for phase in ("launch", "exec", "teardown")
        }
        t0 = r.t0_ns
        entry = {
            "launch_us": (spans["launch"][1] - spans["launch"][0]) / 1000,
            "exec_us": (spans["exec"][1] - spans["exec"][0]) / 1000,
            "teardown_us": (spans["teardown"][1] - spans["teardown"][0]) / 1000,
            "target_us": r.normalized_target_completion_ns / 1000,
        }
        data[key] = entry
        rows.append([
            STRATEGIES[key].display_name,
            f"{entry['launch_us']:.2f}", f"{entry['exec_us']:.2f}",
            f"{entry['teardown_us']:.2f}", f"{entry['target_us']:.2f}",
        ])
        del t0
    gputn, gds, hdn = (data[k]["target_us"] for k in ("gputn", "gds", "hdn"))
    print(render_table(
        ["strategy", "launch", "exec", "teardown", "target done @"], rows,
        title="Figure 8: latency decomposition (us, from kernel-launch start)",
    ))
    print(f"GPU-TN vs GDS: {100 * (1 - gputn / gds):.1f}% faster "
          f"(paper: ~25%);  vs HDN: {100 * (1 - gputn / hdn):.1f}% (paper: ~35%)")
    return data


def figure9_report(sizes: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024),
                   iters: int = 2,
                   config: Optional[SystemConfig] = None,
                   jobs: int = 1,
                   cache: Optional[ResultCache] = None) -> Dict[str, List[float]]:
    """Figure 9: Jacobi speedup vs HDN over local grid sizes."""
    from repro.apps.jacobi import JacobiExperiment

    config = config or default_config()
    strategies = ("cpu", "gds", "gputn")
    sweep = Sweep(JacobiExperiment(),
                  grid={"strategy": ["hdn", *strategies], "n": list(sizes)},
                  base={"iters": iters})
    records = sweep.run(config=config, jobs=jobs, cache=cache)
    total_ns = {(r.params["strategy"], r.params["n"]): r.metrics["total_ns"]
                for r in records}
    data: Dict[str, List[float]] = {s: [] for s in strategies}
    for n in sizes:
        hdn = total_ns[("hdn", n)]
        for s in strategies:
            data[s].append(hdn / total_ns[(s, n)])
    rows = [[s] + [f"{v:.3f}" for v in vals] + [sparkline(vals)]
            for s, vals in data.items()]
    print(render_table(
        ["strategy"] + [f"N={n}" for n in sizes] + ["shape"], rows,
        title="Figure 9: 2D Jacobi speedup vs HDN (one rank per node, 2x2 nodes)",
    ))
    return data


def figure10_report(node_counts: Sequence[int] = (2, 5, 8, 11, 14, 17, 20, 23, 26, 29, 32),
                    nbytes: int = 8 * MB,
                    config: Optional[SystemConfig] = None,
                    jobs: int = 1,
                    cache: Optional[ResultCache] = None) -> Dict[str, List[float]]:
    """Figure 10: 8 MB Allreduce strong scaling, speedup vs CPU."""
    from repro.collectives import AllreduceExperiment

    config = config or default_config()
    strategies = ("hdn", "gds", "gputn")
    sweep = Sweep(AllreduceExperiment(),
                  grid={"strategy": ["cpu", *strategies],
                        "n_nodes": list(node_counts)},
                  base={"nbytes": nbytes})
    records = sweep.run(config=config, jobs=jobs, cache=cache)
    total_ns: Dict[Tuple[str, int], int] = {}
    for r in records:
        s, p = r.params["strategy"], r.params["n_nodes"]
        if s != "cpu" and not r.metrics["correct"]:
            raise AssertionError(f"wrong allreduce data: {s} at P={p}")
        total_ns[(s, p)] = r.metrics["total_ns"]
    data: Dict[str, List[float]] = {s: [] for s in strategies}
    for p in node_counts:
        cpu = total_ns[("cpu", p)]
        for s in strategies:
            data[s].append(cpu / total_ns[(s, p)])
    rows = [[s] + [f"{v:.3f}" for v in vals] + [sparkline(vals)]
            for s, vals in data.items()]
    print(render_table(
        ["strategy"] + [f"P={p}" for p in node_counts] + ["shape"], rows,
        title=f"Figure 10: {nbytes // MB} MB ring Allreduce, speedup vs CPU",
    ))
    return data


def figure11_report(n_nodes: int = 8,
                    config: Optional[SystemConfig] = None,
                    jobs: int = 1,
                    cache: Optional[ResultCache] = None) -> Dict[str, Dict[str, float]]:
    """Figure 11: projected deep-learning speedups on 8 nodes."""
    from repro.apps.deeplearning import project_deep_learning

    projs = project_deep_learning(config, n_nodes=n_nodes, jobs=jobs,
                                  result_cache=cache)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for key, proj in projs.items():
        data[key] = dict(proj.speedup)
        rows.append([proj.workload]
                    + [f"{proj.speedup[s]:.3f}" for s in ("cpu", "hdn", "gds", "gputn")]
                    + [f"{proj.speedup_over('gputn', 'hdn'):.3f}",
                       f"{proj.speedup_over('gputn', 'gds'):.3f}"])
    print(render_table(
        ["workload", "CPU", "HDN", "GDS", "GPU-TN", "TN/HDN", "TN/GDS"], rows,
        title=f"Figure 11: deep-learning projection, {n_nodes} nodes "
              "(speedup vs measured CPU-Allreduce config)",
    ))
    return data


# ------------------------------------------------------------------- tables

def table1_report() -> List[Tuple[str, str, str, str, str]]:
    """Table 1: qualitative strategy comparison."""
    order = ("hdn", "gpu-native", "gpu-host", "gds", "gputn")
    rows = [STRATEGIES[k].table_row() for k in order]
    print(render_table(
        ["", "GPU Triggered", "Intra-Kernel", "GPU Overhead", "CPU Overhead"],
        rows, title="Table 1: qualitative comparison of GPU networking strategies",
    ))
    return rows


def table2_report(config: Optional[SystemConfig] = None) -> Dict[str, Dict[str, object]]:
    """Table 2: simulation configuration."""
    config = config or default_config()
    table = config.describe()
    for section, entries in table.items():
        print(render_table(["parameter", "value"], list(entries.items()),
                           title=section))
        print()
    return table


def table3_report() -> List[Tuple[str, str, str, str]]:
    """Table 3: CNTK workload description."""
    from repro.apps.deeplearning import table3_rows

    rows = table3_rows()
    print(render_table(["Name", "Domain", "%Blocked", "Reductions"], rows,
                       title="Table 3: CNTK workload description"))
    return rows
