"""Plain-text table rendering."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table; every cell is str()-ed."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells += [[str(c) for c in row] for row in rows]
    n_cols = max(len(r) for r in cells)
    for r in cells:
        r.extend([""] * (n_cols - len(r)))
    widths = [max(len(r[i]) for r in cells) for i in range(n_cols)]
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    out.append(sep)
    for r in cells[1:]:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def sparkline(values: Sequence[float]) -> str:
    """A unicode mini-chart for figure-shaped data in terminal reports."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[3] * len(values)
    return "".join(
        _BLOCKS[min(int((v - lo) / (hi - lo) * (len(_BLOCKS) - 1)),
                    len(_BLOCKS) - 1)]
        for v in values
    )
