"""The GPU-TN programming model (paper Section 4).

Two halves, mirroring the paper:

* :mod:`~repro.api.host_api` -- the Figure 6 host-side flow
  (``RdmaInit`` / ``TrigPut`` / ``GetTriggerAddr`` / ``LaunchKern``)
  wrapped in :class:`~repro.api.host_api.GpuTnEndpoint`;
* :mod:`~repro.api.kernel_api` -- kernel-program factories for every
  granularity of Figure 7: work-item (7a), work-group (7b), kernel-level
  (7c), the mixed granularity of §4.2.3, local-completion polling
  (§4.2.4) and target-side notification (§4.2.5).

The §3.4 *dynamic communication* extension (GPU contributes operation
fields at trigger time) is exposed through
:meth:`~repro.api.host_api.GpuTnEndpoint.register_dynamic` plus the
``dynamic=True`` path of the kernel API.
"""

from repro.api.host_api import GpuTnEndpoint, TriggeredOp
from repro.api.shmem import ShmemContext, SymmetricBuffer, shmem_barrier_all
from repro.api.kernel_api import (
    dynamic_target_kernel,
    kernel_level_kernel,
    mixed_granularity_kernel,
    work_group_kernel,
    work_item_kernel,
)

__all__ = [
    "GpuTnEndpoint",
    "ShmemContext",
    "SymmetricBuffer",
    "TriggeredOp",
    "dynamic_target_kernel",
    "kernel_level_kernel",
    "mixed_granularity_kernel",
    "shmem_barrier_all",
    "work_group_kernel",
    "work_item_kernel",
]
