"""Host-side GPU-TN API (paper Figure 6).

:class:`GpuTnEndpoint` wraps one node's host/NIC/GPU with the five steps
of the paper's host pseudocode::

    int rank = RdmaInit();                  -> GpuTnEndpoint(node)
    TrigPut(TAG+i, buf, target, thresh);    -> ep.trig_put(...)
    char *trigAddr = GetTriggerAddr();      -> ep.trigger_address
    LaunchKern(trigAddr, TAG, N_MSGS, buf); -> ep.launch(...)
    // cleanup, more compute                -> ep.free(...)

``trig_put`` is a generator (charges the CPU registration cost); crucially
it may be called *before or after* ``launch`` -- the relaxed
synchronization of Section 3.2 makes both orders correct, and overlapping
registration with kernel launch is the paper's headline optimization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.cluster import Node
from repro.gpu.device import KernelInstance
from repro.gpu.kernel import KernelDescriptor, KernelFn
from repro.memory import Buffer
from repro.nic.device import PutHandle
from repro.nic.triggered import TriggerEntry
from repro.sim import Event

__all__ = ["GpuTnEndpoint", "TriggeredOp"]

_tag_space = itertools.count(0x100)


@dataclass
class TriggeredOp:
    """A registered (or pending-registration) triggered operation."""

    tag: int
    threshold: int
    entry: Optional[TriggerEntry] = None
    #: host-visible completion flag word (local completion, §4.2.4)
    local_flag: Optional[Tuple[Buffer, int]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def handle(self) -> PutHandle:
        if self.entry is None or self.entry.op is None:
            raise RuntimeError(f"triggered op tag={self.tag} not yet registered")
        return self.entry.op.meta["handle"]

    @property
    def fired(self) -> bool:
        return self.entry is not None and self.entry.fired


class GpuTnEndpoint:
    """Per-node facade over the GPU-TN programming model."""

    def __init__(self, node: Node):
        if node.gpu is None:
            raise ValueError(f"GPU-TN endpoint requires a GPU on node {node.name}")
        self.node = node
        self.sim = node.sim
        self.host = node.host
        self.nic = node.nic
        self.gpu = node.gpu
        self._flag_pool: Optional[Buffer] = None
        self._flag_next = 0

    # ------------------------------------------------------------ step 1/3
    @property
    def rank(self) -> str:
        """RdmaInit(): the endpoint's identity on the fabric."""
        return self.node.name

    @property
    def trigger_address(self) -> int:
        """GetTriggerAddr(): the MMIO address kernels store tags to."""
        return self.nic.trigger_address

    @staticmethod
    def fresh_tag() -> int:
        """Allocate a globally unique trigger tag."""
        return next(_tag_space)

    def alloc_flag(self) -> Tuple[Buffer, int]:
        """A uint32 completion-flag word in registered memory."""
        if self._flag_pool is None or self._flag_next + 4 > self._flag_pool.nbytes:
            self._flag_pool = self.host.alloc(4096, name=f"{self.node.name}.flags")
            self._flag_next = 0
        slot = (self._flag_pool, self._flag_next)
        self._flag_next += 4
        return slot

    # -------------------------------------------------------------- step 2
    def trig_put(self, buf: Buffer, nbytes: int, target: str, remote_addr: int,
                 tag: Optional[int] = None, threshold: int = 1,
                 wire_tag: Optional[int] = None, offset: int = 0,
                 with_local_flag: bool = False):
        """TrigPut(): register a triggered put with the NIC (generator).

        Returns a :class:`TriggeredOp`.  Safe to call after the kernel has
        already started triggering (relaxed synchronization).
        """
        tag = self.fresh_tag() if tag is None else tag
        flag = self.alloc_flag() if with_local_flag else None
        op = TriggeredOp(tag=tag, threshold=threshold, local_flag=flag)
        op.entry = yield from self.host.register_triggered_put(
            tag=tag, threshold=threshold, buf=buf, nbytes=nbytes, target=target,
            remote_addr=remote_addr, wire_tag=wire_tag, offset=offset,
            local_flag=flag,
        )
        return op

    def register_dynamic(self, buf: Buffer, nbytes: int,
                         tag: Optional[int] = None, threshold: int = 1,
                         default_target: Optional[str] = None,
                         default_remote_addr: int = 0,
                         wire_tag: Optional[int] = None):
        """Section 3.4 extension: register a triggered-put *template* whose
        target/addresses the GPU may fill in at trigger time via
        ``ctx.store_trigger_dynamic``.  Generator, like :meth:`trig_put`.
        """
        tag = self.fresh_tag() if tag is None else tag
        op = TriggeredOp(tag=tag, threshold=threshold)
        op.entry = yield from self.host.register_triggered_put(
            tag=tag, threshold=threshold, buf=buf, nbytes=nbytes,
            target=default_target or self.node.name + "-unset",
            remote_addr=default_remote_addr, wire_tag=wire_tag,
        )
        return op

    # -------------------------------------------------------------- step 4
    def launch(self, fn: KernelFn, n_workgroups: int, wg_size: int = 256,
               name: str = "", **args: Any):
        """LaunchKern(): dispatch a kernel with the trigger address and
        tags in its arguments (generator; returns a KernelInstance)."""
        desc = KernelDescriptor(
            fn=fn, n_workgroups=n_workgroups, wg_size=wg_size,
            name=name or getattr(fn, "__name__", "kernel"),
            args={"trig_addr": self.trigger_address, **args},
        )
        inst = yield from self.host.launch_kernel(desc)
        return inst

    # -------------------------------------------------------------- step 5
    def free(self, op: TriggeredOp) -> None:
        """Release a consumed trigger entry's NIC slot."""
        if op.entry is not None:
            self.nic.trigger_list.free(op.entry)
            op.entry = None

    # ------------------------------------------------------------ waiting
    def wait_local(self, op: TriggeredOp) -> Event:
        """Event: send buffer reusable (local completion, §4.2.4)."""
        return op.handle.local

    def wait_delivered(self, op: TriggeredOp) -> Event:
        """Event: payload landed at the target (simulator oracle)."""
        return op.handle.delivered

    def local_flag_value(self, op: TriggeredOp) -> int:
        if op.local_flag is None:
            raise ValueError("op was registered without with_local_flag=True")
        buf, off = op.local_flag
        return int(buf.view(np.uint32, count=1, offset=off)[0])
