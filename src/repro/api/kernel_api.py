"""Kernel-side GPU-TN API: the Figure 7 granularities as kernel factories.

Each factory returns a kernel program (generator function over
:class:`~repro.gpu.kernel.KernelContext`) that

1. performs per-work-group compute (``work_ns`` or ``work_bytes`` per
   group, optionally writing real data),
2. makes the written buffers system-visible (barrier + release fence),
3. triggers the NIC at the requested granularity, and
4. optionally performs trailing compute ("do additional work").

Factories and their paper sources:

* :func:`work_item_kernel`      -- Figure 7a (one tag per work-item),
* :func:`work_group_kernel`     -- Figure 7b (one tag per work-group,
  leader work-item stores after a barrier),
* :func:`kernel_level_kernel`   -- Figure 7c (single tag, NIC counter
  synchronizes the whole kernel: threshold = #work-groups),
* :func:`mixed_granularity_kernel` -- §4.2.3 (a tag per group of
  ``group_span`` work-groups; threshold = ``group_span``).

All take ``buffers`` (the send buffers to publish) and standard kernel
arguments through the returned function's ``args``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.gpu.kernel import KernelContext
from repro.memory import Buffer

__all__ = [
    "kernel_level_kernel",
    "mixed_granularity_kernel",
    "work_group_kernel",
    "work_item_kernel",
]


def _do_work(ctx: KernelContext):
    """Shared compute prologue driven by kernel args."""
    work_ns = ctx.desc.args.get("work_ns", 0)
    work_bytes = ctx.desc.args.get("work_bytes", 0)
    fill = ctx.desc.args.get("fill")
    buffers: Sequence[Buffer] = ctx.desc.args.get("buffers", ())
    if fill is not None:
        for buf in buffers:
            per_wg = buf.nbytes // ctx.n_workgroups
            if per_wg:
                data = np.full(per_wg, fill, dtype=np.uint8)
                ctx.write(buf, data, offset=ctx.wg_id * per_wg)
    if work_bytes:
        yield ctx.compute_bytes(work_bytes)
    if work_ns:
        yield ctx.compute(work_ns)


def _publish(ctx: KernelContext):
    """Barrier + system-scope release of the send buffers (§4.2.6)."""
    buffers: Sequence[Buffer] = ctx.desc.args.get("buffers", ())
    yield ctx.barrier()
    yield ctx.fence_release_system(*buffers)


def _trailing_work(ctx: KernelContext):
    extra = ctx.desc.args.get("extra_work_ns", 0)
    if extra:
        yield ctx.compute(extra)


def work_item_kernel(ctx: KernelContext):
    """Figure 7a: every work-item triggers its own tag.

    args: tag_base, buffers, work_ns/work_bytes, [items_per_group]
    Tags are ``tag_base + global_item_id``; thresholds on the host side
    are 1 per tag.
    """
    yield from _do_work(ctx)
    # Work-item granularity uses a fence (no barrier needed: each item
    # publishes independently).
    buffers: Sequence[Buffer] = ctx.desc.args.get("buffers", ())
    yield ctx.fence_release_system(*buffers)
    n_items = ctx.desc.args.get("items_per_group", ctx.wg_size)
    base = ctx.arg("tag_base") + ctx.wg_id * n_items
    yield ctx.store_trigger_per_workitem(base, n_items)
    yield from _trailing_work(ctx)


def work_group_kernel(ctx: KernelContext):
    """Figure 7b: the leader work-item of each group triggers one tag.

    args: tag_base, buffers, work_ns/work_bytes
    Tag is ``tag_base + wg_id``; host threshold 1 per tag.
    """
    yield from _do_work(ctx)
    yield from _publish(ctx)
    if ctx.is_leader:
        yield ctx.store_trigger(ctx.arg("tag_base") + ctx.wg_id)
    yield from _trailing_work(ctx)


def kernel_level_kernel(ctx: KernelContext):
    """Figure 7c: all groups store the *same* tag; the NIC counter fires
    at threshold = n_workgroups, giving kernel-wide synchronization
    without any GPU-side global barrier.

    args: tag, buffers, work_ns/work_bytes
    """
    yield from _do_work(ctx)
    yield from _publish(ctx)
    if ctx.is_leader:
        yield ctx.store_trigger(ctx.arg("tag"))
    yield from _trailing_work(ctx)


def mixed_granularity_kernel(ctx: KernelContext):
    """Section 4.2.3: one message per ``group_span`` work-groups.

    args: tag_base, group_span, buffers, work_ns/work_bytes
    Tag is ``tag_base + wg_id // group_span``; host threshold is
    ``group_span`` per tag.
    """
    span = ctx.arg("group_span")
    if span <= 0:
        raise ValueError(f"group_span must be positive, got {span}")
    yield from _do_work(ctx)
    yield from _publish(ctx)
    if ctx.is_leader:
        yield ctx.store_trigger(ctx.arg("tag_base") + ctx.wg_id // span)
    yield from _trailing_work(ctx)


def dynamic_target_kernel(ctx: KernelContext):
    """Section 3.4 extension: the kernel picks the target node at run time
    (e.g. data-dependent routing) via a wide dynamic trigger store.

    args: tag, buffers, targets (list of node names), remote_addrs,
          work_ns/work_bytes
    The work-group id selects the destination: group g sends to
    ``targets[g % len(targets)]``.
    """
    targets: List[str] = ctx.arg("targets")
    remote_addrs: List[int] = ctx.arg("remote_addrs")
    if len(targets) != len(remote_addrs):
        raise ValueError("targets and remote_addrs must pair up")
    yield from _do_work(ctx)
    yield from _publish(ctx)
    if ctx.is_leader:
        pick = ctx.wg_id % len(targets)
        yield ctx.store_trigger_dynamic(
            ctx.arg("tag") + ctx.wg_id, target=targets[pick],
            remote_addr=remote_addrs[pick],
        )
    yield from _trailing_work(ctx)
