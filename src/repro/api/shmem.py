"""An OpenSHMEM-flavored convenience layer over the simulated cluster.

The paper's related work positions GPU networking against PGAS-style
interfaces (CUDA-aware OpenSHMEM, NVSHMEM).  This module provides that
familiar surface on top of this repository's primitives, so downstream
users can write SHMEM-style programs against the simulator:

* symmetric heap allocation (:meth:`ShmemContext.symmetric_alloc` gives
  every PE a same-size buffer; addresses resolve per-PE),
* ``put`` / ``get`` / ``put_signal`` one-sided operations,
* ``quiet`` (wait for local completion of all pending puts),
* ``wait_until`` (point-to-point synchronization on a flag word),
* ``barrier_all`` built on the NIC-offloaded barrier.

All methods that consume simulated time are generators for use inside
simulation processes, mirroring the rest of the package.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster import Cluster
from repro.collectives.offload import nic_barrier
from repro.memory import Buffer
from repro.nic.device import PutHandle
from repro.sim import AllOf, Event

__all__ = ["ShmemContext", "SymmetricBuffer", "shmem_barrier_all"]


class SymmetricBuffer:
    """One symmetric allocation: a same-size registered buffer on each PE."""

    def __init__(self, per_pe: Dict[int, Buffer], name: str):
        self.per_pe = per_pe
        self.name = name
        self.nbytes = per_pe[0].nbytes

    def on(self, pe: int) -> Buffer:
        try:
            return self.per_pe[pe]
        except KeyError:
            raise KeyError(f"PE {pe} outside the job ({len(self.per_pe)} PEs)") \
                from None

    def view(self, pe: int, dtype=np.uint8) -> np.ndarray:
        return self.on(pe).view(dtype)


class ShmemContext:
    """SHMEM-style operations for one PE (node)."""

    def __init__(self, cluster: Cluster, pe: int):
        self.cluster = cluster
        self.pe = pe
        self.node = cluster[pe]
        self._pending: List[PutHandle] = []
        self._barrier_seq = 0

    # ------------------------------------------------------------ identity
    @property
    def my_pe(self) -> int:
        return self.pe

    @property
    def n_pes(self) -> int:
        return len(self.cluster)

    # ---------------------------------------------------------- allocation
    @staticmethod
    def symmetric_alloc(cluster: Cluster, nbytes: int,
                        name: str = "symm") -> SymmetricBuffer:
        """Allocate the same-size registered buffer on every PE."""
        return SymmetricBuffer(
            {pe: cluster[pe].host.alloc(nbytes, name=f"{name}.{pe}")
             for pe in range(len(cluster))},
            name=name)

    # ------------------------------------------------------------- movement
    def put(self, dest: SymmetricBuffer, data: np.ndarray, target_pe: int,
            offset: int = 0):
        """Non-blocking put of ``data`` into ``dest`` on ``target_pe``.

        Generator; completion is deferred (track with :meth:`quiet`).
        """
        data = np.ascontiguousarray(data)
        staging = self.node.host.alloc(data.nbytes, name="shmem.stage")
        self.node.host.cpu_write(staging, data.view(np.uint8).reshape(-1))
        if target_pe == self.pe:
            self.node.host.cpu_write(dest.on(self.pe),
                                     data.view(np.uint8).reshape(-1),
                                     offset=offset)
            yield self.node.sim.timeout(0)
            return
        handle = yield from self.node.host.put(
            staging, data.nbytes, self.cluster[target_pe].name,
            dest.on(target_pe).addr(offset))
        self._pending.append(handle)

    def put_signal(self, dest: SymmetricBuffer, data: np.ndarray,
                   signal: SymmetricBuffer, target_pe: int):
        """Put followed by a signal-word update visible to ``wait_until``
        (delivery order on one path guarantees data-before-signal)."""
        yield from self.put(dest, data, target_pe)
        one = np.ones(1, dtype=np.uint32)
        yield from self.put(signal, one, target_pe)

    def get(self, source: SymmetricBuffer, nbytes: int, source_pe: int,
            dtype=np.uint8):
        """Blocking get: returns the fetched array."""
        local = self.node.host.alloc(nbytes, name="shmem.get")
        if source_pe == self.pe:
            yield self.node.sim.timeout(0)
            return source.view(self.pe, dtype)[: nbytes // np.dtype(dtype).itemsize].copy()
        handle = self.node.nic.post_get(local.addr(), nbytes,
                                        self.cluster[source_pe].name,
                                        source.on(source_pe).addr())
        yield handle.complete
        return local.view(dtype)

    # ------------------------------------------------------- synchronization
    def quiet(self):
        """Wait until every pending put has completed locally."""
        pending, self._pending = self._pending, []
        if pending:
            yield AllOf(self.node.sim, [h.local for h in pending])

    def wait_until(self, flag: SymmetricBuffer, at_least: int = 1,
                   offset: int = 0):
        """Spin on a local uint32 flag word (shmem_wait_until GE)."""
        value = yield from self.node.host.poll_flag(flag.on(self.pe),
                                                    offset=offset,
                                                    at_least=at_least)
        return value


def shmem_barrier_all(cluster: Cluster) -> Dict[int, Event]:
    """Arm and enter a cluster-wide barrier from the host on every PE;
    returns the per-PE release events (NIC-offloaded tree)."""
    handles = nic_barrier(cluster,
                          wire_base=0x3900 + len(cluster),
                          trig_base=0x7800 + len(cluster))
    for pe in range(len(cluster)):
        nic = cluster[pe].nic
        nic.mmio_write(nic.trigger_address, handles.enter_tag[pe])
    return handles.released
