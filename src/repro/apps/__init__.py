"""The paper's evaluation applications.

* :mod:`~repro.apps.launch_study` -- the Figure 1 kernel-launch study;
* :mod:`~repro.apps.microbench` -- the Section 5.2 latency microbenchmark
  and its Figure 8 decomposition;
* :mod:`~repro.apps.jacobi` -- the Section 5.3 2D Jacobi relaxation with
  halo exchange (Figure 9);
* :mod:`~repro.apps.allreduce_bench` -- the Section 5.4.1 ring Allreduce
  strong-scaling study (Figure 10);
* :mod:`~repro.apps.deeplearning` -- the Section 5.4.2 deep-learning
  projection (Table 3 workloads, Figure 11);
* :mod:`~repro.apps.degraded` -- strategy goodput and tail latency under
  packet loss with the reliable transport recovering
  (``python -m repro faults --degraded``);
* :mod:`~repro.apps.topo_scale` -- the scale-out study: the collective
  schedule zoo across datacenter topologies at 16-256 nodes
  (``python -m repro topo``);
* :mod:`~repro.apps.congestion` -- the under-load study: strategies vs
  background traffic, finite switch queues and congestion-controlled
  transports (``python -m repro congestion``);
* :mod:`~repro.apps.resumable` -- the checkpoint-safe token-ring relay:
  the reference workload for deterministic checkpoint/restore and
  incremental re-simulation (DESIGN.md §12).
"""

from repro.apps.allreduce_bench import run_allreduce, strong_scaling_study
from repro.apps.congestion import (
    CongestionExperiment,
    CongestionReport,
    run_congestion_campaign,
)
from repro.apps.deeplearning import WORKLOADS, project_deep_learning
from repro.apps.degraded import (
    DegradedExperiment,
    degraded_report,
    run_degraded_sweep,
)
from repro.apps.jacobi import (
    JacobiExperiment,
    JacobiResult,
    jacobi_reference,
    run_jacobi,
)
from repro.apps.launch_study import LaunchLatencyExperiment, measure_launch_latency
from repro.apps.microbench import (
    MicrobenchExperiment,
    MicrobenchResult,
    run_microbenchmark,
)
from repro.apps.resumable import ResumableRingExperiment
from repro.apps.topo_scale import TopoScaleReport, run_topo_campaign

__all__ = [
    "CongestionExperiment",
    "CongestionReport",
    "DegradedExperiment",
    "JacobiExperiment",
    "JacobiResult",
    "LaunchLatencyExperiment",
    "MicrobenchExperiment",
    "MicrobenchResult",
    "ResumableRingExperiment",
    "TopoScaleReport",
    "WORKLOADS",
    "degraded_report",
    "jacobi_reference",
    "measure_launch_latency",
    "project_deep_learning",
    "run_allreduce",
    "run_congestion_campaign",
    "run_degraded_sweep",
    "run_jacobi",
    "run_microbenchmark",
    "run_topo_campaign",
    "strong_scaling_study",
]
