"""The Section 5.4.1 Allreduce strong-scaling study (Figure 10).

A thin application layer over :mod:`repro.collectives`: fixes the 8 MB
single-precision payload, sweeps node counts, and reports speedup against
the CPU-only configuration as the paper does.  The sweep itself runs on
:class:`repro.runtime.Sweep`, so it parallelizes across a process pool
(``jobs``) and caches results on disk (``cache``) like every other
exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.collectives import AllreduceExperiment, AllreduceResult, run_ring_allreduce
from repro.config import MB, SystemConfig, default_config
from repro.runtime import ResultCache, Sweep
from repro.strategies import EVALUATED_STRATEGIES

__all__ = ["ScalingStudy", "run_allreduce", "strong_scaling_study"]

PAYLOAD_8MB = 8 * MB


def run_allreduce(config: Optional[SystemConfig] = None, strategy: str = "gputn",
                  n_nodes: int = 8, nbytes: int = PAYLOAD_8MB) -> AllreduceResult:
    """One Allreduce under one strategy (verifies the data)."""
    return run_ring_allreduce(config, strategy=strategy, n_nodes=n_nodes,
                              nbytes=nbytes)


@dataclass
class ScalingStudy:
    """Figure 10's dataset: per-strategy times over a node sweep."""

    nbytes: int
    node_counts: List[int]
    total_ns: Dict[str, List[int]] = field(default_factory=dict)

    def speedup_vs_cpu(self, strategy: str) -> List[float]:
        return [c / t for c, t in zip(self.total_ns["cpu"],
                                      self.total_ns[strategy])]

    def crossover_node_count(self, strategy: str) -> Optional[int]:
        """First node count where the strategy drops below the CPU."""
        for p, s in zip(self.node_counts, self.speedup_vs_cpu(strategy)):
            if s < 1.0:
                return p
        return None


def strong_scaling_study(config: Optional[SystemConfig] = None,
                         node_counts: Sequence[int] = (2, 5, 8, 11, 14, 17,
                                                       20, 23, 26, 29, 32),
                         nbytes: int = PAYLOAD_8MB,
                         strategies: Sequence[str] = EVALUATED_STRATEGIES,
                         jobs: int = 1,
                         cache: Optional[ResultCache] = None) -> ScalingStudy:
    """Run the full Figure 10 sweep, verifying every result's data."""
    config = config or default_config()
    sweep = Sweep(AllreduceExperiment(),
                  grid={"strategy": list(strategies),
                        "n_nodes": list(node_counts)},
                  base={"nbytes": nbytes})
    records = sweep.run(config=config, jobs=jobs, cache=cache)

    study = ScalingStudy(nbytes=nbytes, node_counts=list(node_counts))
    for strategy in strategies:
        study.total_ns[strategy] = []
    for record in records:
        strategy, p = record.params["strategy"], record.params["n_nodes"]
        if not record.metrics["correct"]:
            raise AssertionError(f"wrong allreduce data: {strategy} P={p}")
        study.total_ns[strategy].append(record.metrics["total_ns"])
    return study
