"""Under-load study: GPU-TN vs host-driven strategies on a congested fabric.

The paper -- and every study in this repo so far -- measures on an idle
or *lossy* network; real deployments lose the latency war to *load*:
background flows filling switch queues, incast bursts overrunning the
last hop, and the transport's own recovery traffic.  This study is the
comparison the paper never ran: a 16-node fat tree, seeded background
traffic (:mod:`repro.traffic`) at a swept load level, finite switch
queues with a swept discipline (:mod:`repro.net.queues`), a swept ARQ
engine (:mod:`repro.nic.transport`), and the Section 5.2 foreground
message stream timed under all of it.

Each point reports foreground **goodput** and **p50/p99 latency** plus
queue-depth/drop/mark and background-delivery counters, and hard-fails
if either correctness monitor trips:

* :class:`~repro.validate.monitors.PacketConservationMonitor` -- no
  packet leak: injected == scheduled-for-delivery + fault drops + queue
  drops, and all transport state drained at end of run;
* :class:`~repro.validate.monitors.ReliableDeliveryMonitor` -- every
  flow accepted exactly-once, exactly-in-order, to the highest sequence
  sent.

Campaign axes (``repro congestion``): load level x queue discipline
(drop-tail vs RED+ECN) x transport (go-back-N vs selective-repeat with
AIMD pacing) x strategy (hdn / gds / gputn), run as one service-layer
:class:`repro.service.Job` (journaled, resumable, cached, parallel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.config import KB, QueueConfig, ReliabilityConfig, SystemConfig
from repro.nic.transport import TransportError
from repro.runtime import Experiment, Sweep
from repro.sim import AnyOf
from repro.strategies import get_flow
from repro.validate.monitors import (PacketConservationMonitor,
                                     ReliableDeliveryMonitor)
from repro.validate.violations import InvariantViolation

__all__ = ["CONGESTION_DISCIPLINES", "CONGESTION_LOADS",
           "CONGESTION_STRATEGIES", "CONGESTION_TRANSPORTS",
           "CongestionExperiment", "CongestionReport",
           "run_congestion_campaign"]

#: Default campaign axes (ISSUE 8 acceptance grid).
CONGESTION_LOADS: Tuple[float, ...] = (0.2, 0.5, 0.8)
CONGESTION_DISCIPLINES: Tuple[str, ...] = ("drop-tail", "red-ecn")
CONGESTION_TRANSPORTS: Tuple[str, ...] = ("go-back-n", "selective-repeat")
CONGESTION_STRATEGIES: Tuple[str, ...] = ("hdn", "gds", "gputn")

#: Simulated-time ceiling per point; generous past any drain horizon.
_LIMIT_NS = 50_000_000

_PATTERN = 0xA7
_BASE_WIRE_TAG = 0x700
_BASE_TRIG_TAG = 0x61

#: Background-traffic message size: big enough that a handful of
#: concurrent flows builds real queue depth, small enough to drain.
_BG_NBYTES = 4 * KB


def _queue_config(discipline: str) -> Optional[QueueConfig]:
    """Map a study discipline axis value onto a :class:`QueueConfig`."""
    if discipline == "none":
        return None
    if discipline == "drop-tail":
        return QueueConfig(discipline="drop-tail", capacity_bytes=32 * KB)
    if discipline == "red":
        return QueueConfig(discipline="red", capacity_bytes=32 * KB,
                           red_min_bytes=8 * KB, red_max_bytes=24 * KB)
    if discipline == "red-ecn":
        return QueueConfig(discipline="red", ecn=True, capacity_bytes=32 * KB,
                           red_min_bytes=8 * KB, red_max_bytes=24 * KB)
    raise ValueError(f"unknown queue discipline {discipline!r}; choose from "
                     "['drop-tail', 'red', 'red-ecn', 'none']")


def _reliability_config(transport: str) -> ReliabilityConfig:
    """Map a study transport axis value onto a :class:`ReliabilityConfig`.

    ``selective-repeat`` always runs with AIMD pacing armed -- the point
    of the axis is "congestion-controlled transport vs the PR-3 engine".
    """
    if transport == "go-back-n":
        return ReliabilityConfig()
    if transport == "selective-repeat":
        return ReliabilityConfig(mode="selective-repeat", pacing=True,
                                 cwnd_floor=1)
    raise ValueError(f"unknown transport {transport!r}; choose from "
                     "['go-back-n', 'selective-repeat']")


class CongestionExperiment(Experiment):
    """One (strategy, transport, discipline, load) point under load.

    A foreground stream of ``messages`` transfers runs node0 ->
    node(n-1) -- the longest path through the fat tree -- while every
    node offers Poisson background traffic at ``load`` x link rate
    (``load=0`` disables background entirely).  Both correctness
    monitors are armed; violations land in the metrics (``ok=False``),
    never crash the sweep.
    """

    name = "congestion"
    defaults = {"strategy": "gputn", "transport": "go-back-n",
                "discipline": "drop-tail", "load": 0.0,
                "topology": "fat-tree:k=4", "n_nodes": 16,
                "nbytes": 1024, "messages": 32,
                "bg_horizon_ns": 120_000, "seed": 0}

    def configure(self, params: Dict[str, Any],
                  config: SystemConfig) -> SystemConfig:
        from dataclasses import replace

        spec = params["topology"]
        if spec == config.network.topology:
            return config
        return config.with_(network=replace(config.network, topology=spec))

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        cluster = Cluster(n_nodes=int(params["n_nodes"]), config=config,
                          trace=trace)
        cluster.enable_reliability(_reliability_config(params["transport"]))
        qc = _queue_config(params["discipline"])
        if qc is not None:
            cluster.enable_queues(qc)
        return cluster

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        monitors = [PacketConservationMonitor(), ReliableDeliveryMonitor()]
        for monitor in monitors:
            monitor.attach(cluster)
        background = None
        load = float(params["load"])
        if load > 0.0:
            from repro.sim.rng import RandomStreams
            from repro.traffic import PoissonTraffic, attach_traffic

            # Offered load per node as a fraction of link rate: a message
            # occupies ser(nbytes) on its first link, so mean gap =
            # ser / load keeps each source's offered rate at `load`.
            ser = cluster.config.network.serialization_ns(_BG_NBYTES)
            pattern = PoissonTraffic(
                mean_gap_ns=max(1, int(ser / load)), nbytes=_BG_NBYTES)
            background = attach_traffic(
                cluster, pattern, horizon_ns=int(params["bg_horizon_ns"]),
                streams=RandomStreams(int(params["seed"])))
        outcome: Dict[str, Any] = {"latencies": [], "delivered": 0,
                                   "gave_up": False, "span_ns": 0}
        driver = cluster.spawn(
            self._stream(cluster, params, outcome), name="congestion-stream")
        return {"procs": [driver], "outcome": outcome,
                "monitors": monitors, "background": background}

    def _stream(self, cluster: Cluster, params: Dict[str, Any],
                outcome: Dict[str, Any]):
        strategy = params["strategy"]
        nbytes = int(params["nbytes"])
        initiator, target = cluster[0], cluster[-1]
        init_fn, target_fn = get_flow(strategy)
        one_sided = strategy in ("gds", "gputn", "gpu-host", "gpu-native")
        send_buf = initiator.host.alloc(nbytes, name="cong-send")
        recv_buf = target.host.alloc(nbytes, name="cong-recv")
        remote_addr = recv_buf.addr() if one_sided else None
        # Watch the transport's give-up probe: a dead flow must end the
        # stream as a structured outcome, not park it forever.
        give_up_ev = cluster.sim.event("cong-give-up")
        initiator.nic.transport.probes.append(
            lambda kind, peer, seq, now: kind == "give-up"
            and not give_up_ev.triggered and give_up_ev.succeed(now))
        start = cluster.sim.now
        for i in range(int(params["messages"])):
            wire_tag = _BASE_WIRE_TAG + i
            kwargs: Dict[str, Any] = {}
            if strategy == "gputn":
                kwargs["tag"] = _BASE_TRIG_TAG + i
            t0 = cluster.sim.now
            tproc = cluster.spawn(
                target_fn(target, recv_buf, nbytes, wire_tag),
                name=f"cong-target-{i}")
            iproc = cluster.spawn(
                init_fn(initiator, target.name, send_buf, nbytes, remote_addr,
                        wire_tag, pattern=_PATTERN, **kwargs),
                name=f"cong-init-{i}")
            gave_up = False
            try:
                yield iproc
                done = yield AnyOf(cluster.sim, [tproc, give_up_ev])
                gave_up = tproc not in done
                observed_at = done.get(tproc)
            except TransportError:
                gave_up = True
            if gave_up:
                outcome["gave_up"] = True
                for proc in (tproc, iproc):
                    if not proc.processed:
                        proc.kill()
                break
            if strategy == "gputn":
                # Reap the fired trigger entry: the associative lookup
                # holds 16 slots and the stream outlives that.
                entry = initiator.nic.trigger_list.entry(kwargs["tag"])
                if entry is not None:
                    initiator.nic.trigger_list.free(entry)
            latency = int(observed_at) - t0
            outcome["latencies"].append(latency)
            if cluster.metrics is not None:
                cluster.metrics.histogram("app.message_latency_ns").record(
                    latency)
            outcome["delivered"] += 1
        outcome["span_ns"] = cluster.sim.now - start
        return outcome["delivered"]

    def drive(self, cluster: Cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        cluster.run(until=_LIMIT_NS)

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        outcome = ctx["outcome"]
        violations: List[Dict[str, Any]] = []
        for monitor in ctx["monitors"]:
            try:
                monitor.finalize()
            except InvariantViolation as violation:
                violations.append(violation.to_dict())
        latencies = outcome["latencies"]
        goodput = (outcome["delivered"] * int(params["nbytes"])
                   / outcome["span_ns"] if outcome["span_ns"] else 0.0)
        queues = cluster.fabric.queues
        background = ctx["background"]
        metrics: Dict[str, Any] = {
            "strategy": params["strategy"],
            "transport": params["transport"],
            "discipline": params["discipline"],
            "load": params["load"],
            "delivered": outcome["delivered"],
            "requested": params["messages"],
            "gave_up": outcome["gave_up"],
            "span_ns": outcome["span_ns"],
            "goodput_bytes_per_us": round(goodput * 1_000, 3),
            "p50_latency_ns": int(np.percentile(latencies, 50)) if latencies else None,
            "p99_latency_ns": int(np.percentile(latencies, 99)) if latencies else None,
            "max_latency_ns": max(latencies) if latencies else None,
            "queue": dict(queues.stats) if queues is not None else None,
            "background": dict(background.stats) if background is not None else None,
            "violations": violations,
            "ok": (not violations and not outcome["gave_up"]
                   and outcome["delivered"] == int(params["messages"])),
        }
        return metrics, dict(outcome)


@dataclass
class CongestionReport:
    """All RunRecords of one congestion campaign plus summary accessors."""

    records: List[Any] = field(default_factory=list)
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[Any]:
        return [r for r in self.records if not r.metrics["ok"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_case(self) -> Dict[Tuple[float, str, str], Dict[str, Any]]:
        """(load, discipline, transport) -> {strategy: metrics}."""
        out: Dict[Tuple[float, str, str], Dict[str, Any]] = {}
        for r in self.records:
            p = r.params
            key = (p["load"], p["discipline"], p["transport"])
            out.setdefault(key, {})[p["strategy"]] = r.metrics
        return out

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"total": self.total, "ok": self.ok,
                               "cases": []}
        for (load, disc, transport), per_strategy in sorted(self.by_case().items()):
            doc["cases"].append({
                "load": load, "discipline": disc, "transport": transport,
                "strategies": {
                    s: {"goodput_bytes_per_us": m["goodput_bytes_per_us"],
                        "p50_latency_ns": m["p50_latency_ns"],
                        "p99_latency_ns": m["p99_latency_ns"],
                        "delivered": m["delivered"],
                        "ok": m["ok"]}
                    for s, m in sorted(per_strategy.items())},
            })
        if self.cache_stats is not None:
            doc["cache"] = dict(self.cache_stats)
        return doc


def run_congestion_campaign(loads: Sequence[float] = CONGESTION_LOADS,
                            disciplines: Sequence[str] = CONGESTION_DISCIPLINES,
                            transports: Sequence[str] = CONGESTION_TRANSPORTS,
                            strategies: Sequence[str] = CONGESTION_STRATEGIES,
                            topology: str = "fat-tree:k=4", n_nodes: int = 16,
                            messages: int = 32, nbytes: int = 1024,
                            bg_horizon_ns: int = 120_000, seed: int = 0,
                            jobs: int = 1,
                            config: Optional[SystemConfig] = None,
                            fail_fast: bool = False,
                            cache: Optional[Any] = None,
                            store: Optional[Any] = None,
                            progress: Optional[Any] = None,
                            checkpoint: Optional[Any] = None,
                            listen: Optional[Any] = None, priority: int = 0,
                            window: Optional[int] = None
                            ) -> CongestionReport:
    """The full load x discipline x transport x strategy grid as one
    service-layer job (same contract as the topo/faults campaigns:
    journaled via ``store``, cached via ``cache`` -- a ResultCache,
    bare CacheBackend, or root path -- streamed through ``progress``,
    cooperatively cancelled on ``fail_fast``; ``listen``/``priority``/
    ``window`` feed the remote-worker dispatcher)."""
    from repro.service.backends import as_result_cache
    from repro.service.job import Job

    cache = as_result_cache(cache)
    points = [{"strategy": s, "transport": t, "discipline": d, "load": load,
               "topology": topology, "n_nodes": n_nodes, "messages": messages,
               "nbytes": nbytes, "bg_horizon_ns": bg_horizon_ns, "seed": seed}
              for load in loads
              for d in disciplines
              for t in transports
              for s in strategies]
    if not points:
        raise ValueError("empty campaign: no load/discipline/transport axis")
    job = Job.from_sweep(Sweep(CongestionExperiment(), points=points),
                         config=config, cache=cache, store=store,
                         checkpoint=checkpoint, priority=priority)
    if listen is not None:
        host, port = job.listen(listen)
        print(f"job {job.id} listening on {host}:{port} -- join with: "
              f"python -m repro worker serve --connect {host}:{port}",
              flush=True)

    def on_point(event) -> None:
        if progress is not None:
            progress(event)
        if fail_fast and not event.record.metrics["ok"]:
            job.cancel()

    records = job.run(jobs=jobs, progress=on_point, window=window)
    return CongestionReport(
        records=[r for r in records if r is not None],
        cache_stats=cache.stats() if cache is not None else None)
