"""Deep-learning Allreduce projection (paper Section 5.4.2, Table 3, Figure 11).

The paper ran six Microsoft Cognitive Toolkit (CNTK) workloads on the
Stampede supercomputer, measured "the frequency, time, and data size of
the various Allreduce calls", and *projected* application-level speedup
by substituting simulated Allreduce times -- valid because synchronous
SGD leaves no computation/communication overlap to model.

We cannot run CNTK on Stampede, so we substitute a **synthetic trace
generator** (documented in DESIGN.md): each workload is characterized by

* the published Table 3 columns (%blocked on Allreduce, #reductions), and
* a gradient-tensor size profile drawn from the workload's architecture
  class (AlexNet's conv+FC tensors, LSTM gate matrices, the small CIFAR
  convnet, ...).

The projection then matches the paper's arithmetic exactly::

    speedup(s) = 1 / ( (1 - B) + B * T_s / T_ref )

where ``B`` is the blocked fraction under the measured (CPU Allreduce)
configuration, ``T_s`` the simulated per-epoch Allreduce time under
strategy ``s`` and ``T_ref`` under the measured configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collectives.ring import AllreduceExperiment
from repro.config import KB, MB, SystemConfig, default_config
from repro.runtime import ResultCache, Sweep
from repro.sim.rng import RandomStreams
from repro.strategies import EVALUATED_STRATEGIES

__all__ = [
    "DLProjection",
    "WORKLOADS",
    "WorkloadSpec",
    "project_deep_learning",
    "table3_rows",
]

_DEFAULT_NODES = 8


@dataclass(frozen=True)
class WorkloadSpec:
    """One Table 3 row plus a synthetic gradient-size profile.

    ``size_profile`` maps an Allreduce payload size (bytes) to its share
    of the workload's reduction calls.
    """

    name: str
    domain: str
    pct_blocked: float          # fraction of run time blocked on Allreduce
    n_reductions: int           # total reduction calls (Table 3)
    size_profile: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not 0.0 < self.pct_blocked < 1.0:
            raise ValueError(f"{self.name}: %blocked must be in (0,1)")
        if self.n_reductions <= 0:
            raise ValueError(f"{self.name}: need positive reduction count")
        total = sum(w for _, w in self.size_profile)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: size profile weights sum to {total}")

    def sample_sizes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        sizes = np.array([s for s, _ in self.size_profile])
        weights = np.array([w for _, w in self.size_profile])
        return rng.choice(sizes, size=n, p=weights)


#: Table 3 of the paper, with synthetic size profiles per architecture
#: class (parameter-tensor sizes in bytes; weights = share of calls).
WORKLOADS: Dict[str, WorkloadSpec] = {
    "alexnet": WorkloadSpec(
        name="AlexNet", domain="Classification",
        pct_blocked=0.14, n_reductions=4672,
        # Classic AlexNet tensors: conv layers are small, fc6/fc7 huge.
        size_profile=(
            (128 * KB, 0.25), (1 * MB, 0.25), (3 * MB, 0.25),
            (16 * MB, 0.125), (64 * MB, 0.125),
        ),
    ),
    "an4-lstm": WorkloadSpec(
        name="AN4 LSTM", domain="Speech",
        pct_blocked=0.50, n_reductions=131192,
        # LSTM gate matrices: many small-to-medium reductions.
        size_profile=(
            (64 * KB, 0.40), (256 * KB, 0.30), (1 * MB, 0.20), (4 * MB, 0.10),
        ),
    ),
    "cifar": WorkloadSpec(
        name="CIFAR", domain="Classification",
        pct_blocked=0.04, n_reductions=939820,
        size_profile=(
            (16 * KB, 0.40), (64 * KB, 0.30), (256 * KB, 0.20), (1 * MB, 0.10),
        ),
    ),
    "large-synth": WorkloadSpec(
        name="Large Synth", domain="Synthetic",
        pct_blocked=0.28, n_reductions=52800,
        size_profile=((8 * MB, 0.50), (16 * MB, 0.30), (32 * MB, 0.20)),
    ),
    "mnist-conv": WorkloadSpec(
        name="MNIST Conv", domain="Text Recognition",
        pct_blocked=0.12, n_reductions=900000,
        size_profile=(
            (32 * KB, 0.40), (128 * KB, 0.30), (512 * KB, 0.20), (2 * MB, 0.10),
        ),
    ),
    "mnist-hidden": WorkloadSpec(
        name="MNIST Hidden", domain="Text Recognition",
        pct_blocked=0.29, n_reductions=900000,
        size_profile=((1 * MB, 0.30), (2 * MB, 0.40), (4 * MB, 0.30)),
    ),
}


@dataclass
class DLProjection:
    """Projected speedups for one workload (Figure 11 bars)."""

    workload: str
    n_nodes: int
    #: simulated mean Allreduce call time per strategy (ns)
    allreduce_ns: Dict[str, float] = field(default_factory=dict)
    #: application-level speedup vs the measured (CPU Allreduce) config
    speedup: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, strategy: str, baseline: str) -> float:
        return self.speedup[strategy] / self.speedup[baseline]


class _AllreduceCostCache:
    """Memoizes simulated Allreduce times per (strategy, nodes, size).

    Built on :class:`~repro.collectives.AllreduceExperiment`:
    :meth:`prefetch` fans a batch of unseen combinations out over a
    process pool (optionally backed by the on-disk result cache), and
    :meth:`time_ns` serves misses one at a time.
    """

    def __init__(self, config: SystemConfig, jobs: int = 1,
                 result_cache: Optional[ResultCache] = None):
        self.config = config
        self.jobs = jobs
        self.result_cache = result_cache
        self._experiment = AllreduceExperiment()
        self._cache: Dict[Tuple[str, int, int], int] = {}

    def _ingest(self, key: Tuple[str, int, int], record) -> int:
        if not record.metrics["correct"]:
            raise AssertionError(f"allreduce produced wrong data for {key}")
        t = self._cache[key] = record.metrics["total_ns"]
        return t

    def prefetch(self, combos: Sequence[Tuple[str, int, int]]) -> None:
        """Simulate every un-memoized (strategy, nodes, size) combo, in
        parallel when ``jobs > 1``."""
        points = [{"strategy": s, "n_nodes": p, "nbytes": b}
                  for s, p, b in dict.fromkeys(combos)
                  if (s, p, b) not in self._cache]
        if not points:
            return
        records = Sweep(self._experiment, points=points).run(
            config=self.config, jobs=self.jobs, cache=self.result_cache)
        for point, record in zip(points, records):
            self._ingest((point["strategy"], point["n_nodes"],
                          point["nbytes"]), record)

    def time_ns(self, strategy: str, n_nodes: int, nbytes: int) -> int:
        key = (strategy, n_nodes, nbytes)
        t = self._cache.get(key)
        if t is None:
            records = Sweep(self._experiment, points=[
                {"strategy": strategy, "n_nodes": n_nodes, "nbytes": nbytes},
            ]).run(config=self.config, cache=self.result_cache)
            t = self._ingest(key, records[0])
        return t


def project_deep_learning(
    config: Optional[SystemConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    n_nodes: int = _DEFAULT_NODES,
    strategies: Sequence[str] = EVALUATED_STRATEGIES,
    cache: Optional[_AllreduceCostCache] = None,
    jobs: int = 1,
    result_cache: Optional[ResultCache] = None,
) -> Dict[str, DLProjection]:
    """Figure 11: project app-level speedups on a cluster of ``n_nodes``."""
    config = config or default_config()
    cache = cache or _AllreduceCostCache(config, jobs=jobs,
                                         result_cache=result_cache)
    picks = list(workloads or WORKLOADS)
    cache.prefetch([
        (strategy, n_nodes, size)
        for key in picks
        for strategy in strategies
        for size, _ in WORKLOADS[key].size_profile
    ])
    out: Dict[str, DLProjection] = {}
    for key in picks:
        spec = WORKLOADS[key]
        proj = DLProjection(workload=spec.name, n_nodes=n_nodes)
        weights = {s: w for s, w in spec.size_profile}
        for strategy in strategies:
            mean = sum(w * cache.time_ns(strategy, n_nodes, size)
                       for size, w in weights.items())
            proj.allreduce_ns[strategy] = mean
        ref = proj.allreduce_ns["cpu"]
        b = spec.pct_blocked
        for strategy in strategies:
            ratio = proj.allreduce_ns[strategy] / ref
            proj.speedup[strategy] = 1.0 / ((1.0 - b) + b * ratio)
        out[key] = proj
    return out


def generate_trace(workload: str, n_calls: int = 1000,
                   seed: int = 0x5C17) -> np.ndarray:
    """A synthetic Allreduce-call trace (sizes in bytes) for one workload.

    Used by tests and the trace-driven examples; the projection itself
    uses the exact profile weights rather than a sampled trace.
    """
    spec = WORKLOADS[workload]
    rng = RandomStreams(seed).stream(f"dl-trace.{workload}")
    return spec.sample_sizes(n_calls, rng)


def table3_rows() -> List[Tuple[str, str, str, str]]:
    """Render the paper's Table 3 (name, domain, %blocked, reductions)."""
    return [
        (spec.name, spec.domain, f"{spec.pct_blocked:.0%}",
         f"{spec.n_reductions}")
        for spec in WORKLOADS.values()
    ]
