"""Degraded-mode study: strategy throughput and tail latency under loss.

The paper evaluates a lossless fabric; this study asks what its Figure 8
comparison looks like when the network drops packets and the go-back-N
reliable transport (:mod:`repro.nic.transport`) has to recover.  A
two-node cluster streams ``messages`` back-to-back one-way transfers for
one strategy with a seeded drop rate armed on the fabric, and reports

* **goodput** -- application payload bytes over the stream's wall time
  (retransmissions and ACKs burn bandwidth but deliver nothing new);
* **p50/p99 latency** -- per-message initiation-to-target-observed time.
  Loss shows up almost entirely in the tail: one retransmit timeout is
  ~10x a clean delivery.

Each message reuses the Section 5.2 microbenchmark flows
(:mod:`repro.strategies.flows`), so GPU-TN / GDS / HDN keep exactly the
initiation paths the paper compares; a run where the retry budget dies
ends early with the structured ``gave_up`` outcome instead of hanging.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.config import FaultConfig, ReliabilityConfig, SystemConfig
from repro.nic.transport import TransportError
from repro.runtime import Experiment, ResultCache, Sweep
from repro.sim import AnyOf
from repro.strategies import get_flow

__all__ = ["DEGRADED_LOSS_RATES", "DegradedExperiment", "degraded_report",
           "run_degraded_sweep"]

#: Loss-rate axis of the study (per-transmission drop probability).
DEGRADED_LOSS_RATES: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.05)

#: Simulated-time ceiling per run; far beyond any recovery horizon.
_LIMIT_NS = 50_000_000

_PATTERN = 0xC3
_BASE_WIRE_TAG = 0x600
_BASE_TRIG_TAG = 0x51


class DegradedExperiment(Experiment):
    """A two-node message stream for one (strategy, loss rate) point.

    Parameters: ``strategy``, ``loss`` (drop probability), ``nbytes``,
    ``messages`` and ``seed`` (fault-plan stream).  The reliable
    transport is armed at every point -- including ``loss=0``, so the
    baseline pays the same ACK overhead the lossy points do.
    """

    name = "degraded"
    defaults = {"strategy": "gputn", "loss": 0.0, "nbytes": 1024,
                "messages": 64, "seed": 0}

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        cluster = Cluster(n_nodes=2, config=config, trace=trace)
        cluster.enable_reliability(ReliabilityConfig())
        if params["loss"]:
            # Offset the plan seed by the loss rate so adjacent sweep
            # points draw decorrelated uniforms (same-seed streams would
            # make 1% and 2% drop the exact same messages).
            cluster.attach_faults(FaultConfig(drop_prob=float(params["loss"])),
                                  rng=int(params["seed"])
                                  + int(float(params["loss"]) * 10_000))
        return cluster

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        outcome: Dict[str, Any] = {"latencies": [], "delivered": 0,
                                   "gave_up": False, "span_ns": 0}
        driver = cluster.spawn(
            self._stream(cluster, params, outcome), name="degraded-stream")
        return {"procs": [driver], "outcome": outcome}

    def _stream(self, cluster: Cluster, params: Dict[str, Any],
                outcome: Dict[str, Any]):
        strategy = params["strategy"]
        nbytes = int(params["nbytes"])
        initiator, target = cluster[0], cluster[1]
        init_fn, target_fn = get_flow(strategy)
        one_sided = strategy in ("gds", "gputn", "gpu-host", "gpu-native")
        send_buf = initiator.host.alloc(nbytes, name="deg-send")
        recv_buf = target.host.alloc(nbytes, name="deg-recv")
        remote_addr = recv_buf.addr() if one_sided else None
        # The strategies' initiators only wait on *local* completion,
        # which succeeds long before a retry budget can die -- watch the
        # transport's give-up probe so a dead flow ends the stream
        # instead of parking it on a starved receiver.
        give_up_ev = cluster.sim.event("deg-give-up")
        initiator.nic.transport.probes.append(
            lambda kind, peer, seq, now: kind == "give-up"
            and not give_up_ev.triggered and give_up_ev.succeed(now))
        start = cluster.sim.now
        for i in range(int(params["messages"])):
            wire_tag = _BASE_WIRE_TAG + i
            kwargs: Dict[str, Any] = {}
            if strategy == "gputn":
                kwargs["tag"] = _BASE_TRIG_TAG + i
            t0 = cluster.sim.now
            tproc = cluster.spawn(
                target_fn(target, recv_buf, nbytes, wire_tag),
                name=f"deg-target-{i}")
            iproc = cluster.spawn(
                init_fn(initiator, target.name, send_buf, nbytes, remote_addr,
                        wire_tag, pattern=_PATTERN, **kwargs),
                name=f"deg-init-{i}")
            gave_up = False
            try:
                yield iproc
                done = yield AnyOf(cluster.sim, [tproc, give_up_ev])
                gave_up = tproc not in done
                observed_at = done.get(tproc)
            except TransportError:
                gave_up = True
            if gave_up:
                # The retry budget died: end the stream as a structured
                # outcome and reap whichever side is still parked.
                outcome["gave_up"] = True
                for proc in (tproc, iproc):
                    if not proc.processed:
                        proc.kill()
                break
            if strategy == "gputn":
                # Reap the fired trigger entry: the associative lookup
                # holds only 16 slots and a stream outlives that.
                entry = initiator.nic.trigger_list.entry(kwargs["tag"])
                if entry is not None:
                    initiator.nic.trigger_list.free(entry)
            latency = int(observed_at) - t0
            outcome["latencies"].append(latency)
            if cluster.metrics is not None:
                # App-level view of the same messages the NIC histogram
                # times; `repro stats` cross-checks the two.
                cluster.metrics.histogram("app.message_latency_ns").record(
                    latency)
            outcome["delivered"] += 1
        outcome["span_ns"] = cluster.sim.now - start
        return outcome["delivered"]

    def drive(self, cluster: Cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        cluster.run(until=_LIMIT_NS)

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        outcome = ctx["outcome"]
        latencies = outcome["latencies"]
        goodput = (outcome["delivered"] * int(params["nbytes"])
                   / outcome["span_ns"] if outcome["span_ns"] else 0.0)
        metrics: Dict[str, Any] = {
            "strategy": params["strategy"],
            "loss": params["loss"],
            "delivered": outcome["delivered"],
            "requested": params["messages"],
            "gave_up": outcome["gave_up"],
            "span_ns": outcome["span_ns"],
            "goodput_bytes_per_us": round(goodput * 1_000, 3),
            "p50_latency_ns": int(np.percentile(latencies, 50)) if latencies else None,
            "p99_latency_ns": int(np.percentile(latencies, 99)) if latencies else None,
            "max_latency_ns": max(latencies) if latencies else None,
        }
        return metrics, dict(outcome)


def run_degraded_sweep(strategies: Sequence[str] = ("gputn", "gds", "hdn"),
                       losses: Sequence[float] = DEGRADED_LOSS_RATES,
                       messages: int = 64, nbytes: int = 1024, seed: int = 0,
                       jobs: int = 1, cache: Optional[ResultCache] = None,
                       config: Optional[SystemConfig] = None):
    """The full (strategy x loss) grid as RunRecords."""
    points = [{"strategy": s, "loss": loss, "messages": messages,
               "nbytes": nbytes, "seed": seed}
              for s in strategies for loss in losses]
    return Sweep(DegradedExperiment(), points=points).run(
        config=config, jobs=jobs, cache=cache)


def degraded_report(jobs: int = 1, cache: Optional[ResultCache] = None,
                    config: Optional[SystemConfig] = None) -> List[str]:
    """Render the study as text rows (also printed): per loss rate, each
    strategy's goodput and latency percentiles."""
    records = run_degraded_sweep(jobs=jobs, cache=cache, config=config)
    rows = [f"{'loss':>6}  {'strategy':<6} {'delivered':>9} "
            f"{'goodput B/us':>12} {'p50 us':>8} {'p99 us':>8}"]
    for r in records:
        m = r.metrics
        # `is not None`, not truthiness: a legitimate 0 ns percentile
        # must print as 0.00, not "-".
        p50 = (f"{m['p50_latency_ns'] / 1000:.2f}"
               if m["p50_latency_ns"] is not None else "-")
        p99 = (f"{m['p99_latency_ns'] / 1000:.2f}"
               if m["p99_latency_ns"] is not None else "-")
        note = "  (gave up)" if m["gave_up"] else ""
        rows.append(f"{m['loss']:>6.2%}  {m['strategy']:<6} "
                    f"{m['delivered']:>4}/{m['requested']:<4} "
                    f"{m['goodput_bytes_per_us']:>12.3f} {p50:>8} {p99:>8}"
                    f"{note}")
    for row in rows:
        print(row)
    return rows
