"""2D Jacobi relaxation with halo exchange (paper Section 5.3, Figure 9).

The global grid is block-decomposed over a ``px x py`` node grid; each
node owns an ``N x N`` local tile with a one-cell ghost ring.  Every
iteration:

1. a 5-point stencil updates the local interior,
2. edge rows/columns are packed into staging buffers,
3. halos are exchanged with up to four neighbours,
4. ghost rings are unpacked before the next iteration.

The four strategies differ exactly as in the paper:

* **cpu**   -- OpenMP-style host compute; two-sided sends at each round;
* **hdn**   -- one kernel per iteration; the CPU exchanges halos between
  kernels with two-sided send/recv;
* **gds**   -- the CPU pre-stages one-sided puts and enqueues doorbells
  behind each iteration's kernel; ghost arrival is polled on the host
  before the next launch;
* **gputn** -- a single *persistent* kernel runs all iterations,
  triggering halo puts in-kernel and polling ghost-arrival flags
  in-kernel; the CPU re-arms trigger entries off the critical path.

Numerical correctness is end-to-end: the halo payloads are real floats
and the distributed result is asserted against a single-grid NumPy
reference in the test suite.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import Cluster, Node
from repro.config import SystemConfig, default_config
from repro.gpu.kernel import KernelContext, KernelDescriptor
from repro.memory import Agent, Buffer
from repro.runtime import Experiment
from repro.sim import AllOf

__all__ = ["JacobiExperiment", "JacobiResult", "jacobi_reference", "run_jacobi"]

_DIRS = ("north", "south", "west", "east")
_OPP = {"north": "south", "south": "north", "west": "east", "east": "west"}
#: elements are float32
_F4 = np.dtype(np.float32)


# --------------------------------------------------------------------------
# Decomposition
# --------------------------------------------------------------------------

def _node_coords(rank: int, px: int) -> Tuple[int, int]:
    return rank % px, rank // px


def _neighbors(rank: int, px: int, py: int) -> Dict[str, int]:
    """Map direction -> neighbour rank for an interior-truncated grid."""
    x, y = _node_coords(rank, px)
    out: Dict[str, int] = {}
    if y > 0:
        out["north"] = rank - px
    if y < py - 1:
        out["south"] = rank + px
    if x > 0:
        out["west"] = rank - 1
    if x < px - 1:
        out["east"] = rank + 1
    return out


class _JacobiTile:
    """One node's tile: padded local grid plus packing helpers.

    All mutation routes through methods that record memory-model events
    for the acting agent, so fence omissions in the strategy code surface
    as hazards in the tests.
    """

    def __init__(self, node: Node, n: int, rank: int, px: int, py: int,
                 seed: int):
        self.node = node
        self.n = n
        self.rank = rank
        self.neighbors = _neighbors(rank, px, py)
        rng = np.random.default_rng([seed, rank])
        self.grid = np.zeros((n + 2, n + 2), dtype=_F4)
        self.grid[1:-1, 1:-1] = rng.random((n, n), dtype=np.float32)
        edge_bytes = n * _F4.itemsize
        # Double-buffered send staging (parity by iteration) + ghost rx.
        self.send: Dict[Tuple[str, int], Buffer] = {}
        self.ghost: Dict[str, Buffer] = {}
        self.rx_flag: Dict[str, Buffer] = {}
        for d in self.neighbors:
            for parity in (0, 1):
                self.send[(d, parity)] = node.host.alloc(
                    edge_bytes, name=f"{node.name}.send.{d}.{parity}")
            self.ghost[d] = node.host.alloc(edge_bytes, name=f"{node.name}.ghost.{d}")
            self.rx_flag[d] = node.host.alloc(4, name=f"{node.name}.rxflag.{d}")

    # ------------------------------------------------------------- numerics
    def stencil_update(self, agent: Agent) -> None:
        g = self.grid
        new = g.copy()
        new[1:-1, 1:-1] = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                                  + g[1:-1, :-2] + g[1:-1, 2:])
        self.grid = new

    def pack_edges(self, parity: int, agent: Agent, time: int) -> None:
        """Copy interior edges into the parity's staging buffers."""
        g = self.grid
        edges = {
            "north": g[1, 1:-1], "south": g[-2, 1:-1],
            "west": g[1:-1, 1], "east": g[1:-1, -2],
        }
        for d in self.neighbors:
            buf = self.send[(d, parity)]
            buf.view(_F4)[:] = edges[d]
            self.node.mem.record_write(time, agent, buf)

    def unpack_ghosts(self, agent: Agent, time: int) -> None:
        """Copy received halos from ghost buffers into the ghost ring."""
        g = self.grid
        for d in self.neighbors:
            data = self.ghost[d].view(_F4)
            self.node.mem.record_read(time, agent, self.ghost[d])
            if d == "north":
                g[0, 1:-1] = data
            elif d == "south":
                g[-1, 1:-1] = data
            elif d == "west":
                g[1:-1, 0] = data
            else:
                g[1:-1, -1] = data

    # --------------------------------------------------------------- costs
    def stencil_bytes(self) -> int:
        # read + write one float per cell (5-point reads hit cache).
        return 2 * self.n * self.n * _F4.itemsize

    def pack_bytes(self) -> int:
        return 2 * len(self.neighbors) * self.n * _F4.itemsize


# --------------------------------------------------------------------------
# Reference
# --------------------------------------------------------------------------

def jacobi_reference(n: int, px: int, py: int, iters: int, seed: int) -> np.ndarray:
    """Single-grid NumPy reference for the same decomposition seeds."""
    big = np.zeros((py * n + 2, px * n + 2), dtype=_F4)
    for rank in range(px * py):
        x, y = _node_coords(rank, px)
        rng = np.random.default_rng([seed, rank])
        big[1 + y * n:1 + (y + 1) * n, 1 + x * n:1 + (x + 1) * n] = (
            rng.random((n, n), dtype=np.float32))
    for _ in range(iters):
        new = big.copy()
        new[1:-1, 1:-1] = 0.25 * (big[:-2, 1:-1] + big[2:, 1:-1]
                                  + big[1:-1, :-2] + big[1:-1, 2:])
        big = new
    return big[1:-1, 1:-1]


def initial_ghost_fill(tiles: List[_JacobiTile]) -> None:
    """Startup halo exchange: ghost rings see neighbours' *initial* edges.

    Happens once during data distribution (before the timed region), so it
    is applied directly -- every strategy starts from the same state.
    """
    by_rank = {t.rank: t for t in tiles}
    for tile in tiles:
        g = tile.grid
        for d, peer_rank in tile.neighbors.items():
            pg = by_rank[peer_rank].grid
            if d == "north":
                g[0, 1:-1] = pg[-2, 1:-1]
            elif d == "south":
                g[-1, 1:-1] = pg[1, 1:-1]
            elif d == "west":
                g[1:-1, 0] = pg[1:-1, -2]
            else:
                g[1:-1, -1] = pg[1:-1, 1]


def assemble(tiles: List[_JacobiTile], px: int, py: int) -> np.ndarray:
    n = tiles[0].n
    out = np.zeros((py * n, px * n), dtype=_F4)
    for tile in tiles:
        x, y = _node_coords(tile.rank, px)
        out[y * n:(y + 1) * n, x * n:(x + 1) * n] = tile.grid[1:-1, 1:-1]
    return out


# --------------------------------------------------------------------------
# Shared kernel pieces
# --------------------------------------------------------------------------

def _stencil_kernel(ctx: KernelContext):
    """One iteration's compute + pack, at work-group granularity.

    Work-group 0 performs the actual numerics (zero simulated cost); all
    groups charge their share of the streaming time.
    """
    tile: _JacobiTile = ctx.arg("tile")
    parity: int = ctx.arg("parity")
    if ctx.wg_id == 0:
        tile.stencil_update(Agent.GPU)
        tile.pack_edges(parity, Agent.GPU, ctx.sim.now)
    share = (tile.stencil_bytes() + tile.pack_bytes()) // ctx.n_workgroups
    yield ctx.compute_bytes(share)
    yield ctx.barrier()


def _unpack_kernel_prologue(ctx: KernelContext, tile: _JacobiTile):
    """Acquire + unpack ghosts at the top of an iteration (post-exchange)."""
    yield ctx.fence_acquire_system(*tile.ghost.values())
    if ctx.wg_id == 0:
        tile.unpack_ghosts(Agent.GPU, ctx.sim.now)
    yield ctx.compute_bytes(tile.pack_bytes() // ctx.n_workgroups)


def _grid_workgroups(node: Node) -> int:
    return node.config.gpu.compute_units


def _wire_tag(rank: int, d: str) -> int:
    return 0x7A00 + rank * 8 + _DIRS.index(d)


# --------------------------------------------------------------------------
# Per-strategy node drivers
# --------------------------------------------------------------------------

def _cpu_node(node: Node, tile: _JacobiTile, peers: Dict[int, Node], iters: int):
    host = node.host
    for it in range(iters):
        parity = it & 1
        tile.stencil_update(Agent.CPU)
        tile.pack_edges(parity, Agent.CPU, node.sim.now)
        # OpenMP parallel-region fork/join around the threaded stencil.
        yield node.sim.timeout(node.config.cpu.omp_region_ns)
        yield from host.compute_bytes(tile.stencil_bytes() + tile.pack_bytes(),
                                      phase="jacobi-cpu")
        recvs = {}
        for d, peer_rank in tile.neighbors.items():
            recvs[d] = host.post_recv(_wire_tag(peer_rank, _OPP[d]),
                                      tile.ghost[d], tile.ghost[d].nbytes)
        for d, peer_rank in tile.neighbors.items():
            yield from host.send(tile.send[(d, parity)], tile.send[(d, parity)].nbytes,
                                 peers[peer_rank].name, _wire_tag(tile.rank, d))
        for d in tile.neighbors:
            yield from host.wait_recv(recvs[d])
        tile.unpack_ghosts(Agent.CPU, node.sim.now)
    return node.sim.now


def _hdn_node(node: Node, tile: _JacobiTile, peers: Dict[int, Node], iters: int):
    host = node.host
    for it in range(iters):
        parity = it & 1

        def kernel(ctx, _it=it):
            if _it > 0:
                yield from _unpack_kernel_prologue(ctx, ctx.arg("tile"))
            yield from _stencil_kernel(ctx)
            # Kernel-boundary strategy: publish edges before exit so the
            # coherent CPU/NIC can ship them.
            yield ctx.fence_release_system(
                *(ctx.arg("tile").send[(d, ctx.arg("parity"))]
                  for d in ctx.arg("tile").neighbors))

        desc = KernelDescriptor(fn=kernel, n_workgroups=_grid_workgroups(node),
                                args={"tile": tile, "parity": parity},
                                name=f"jacobi-hdn-{it}")
        inst = yield from host.launch_kernel(desc)
        # A hand-tuned stencil loop spin-waits on kernel completion (the
        # blocking 10 us sync path belongs to library-mediated waits; see
        # the Allreduce executors).
        yield from host.wait_kernel(inst, mode="spin")
        recvs = {}
        for d, peer_rank in tile.neighbors.items():
            recvs[d] = host.post_recv(_wire_tag(peer_rank, _OPP[d]),
                                      tile.ghost[d], tile.ghost[d].nbytes)
        for d, peer_rank in tile.neighbors.items():
            yield from host.send(tile.send[(d, parity)], tile.send[(d, parity)].nbytes,
                                 peers[peer_rank].name, _wire_tag(tile.rank, d))
        for d in tile.neighbors:
            yield from host.wait_recv(recvs[d])
    return node.sim.now


def _gds_node(node: Node, tile: _JacobiTile, peers: Dict[int, Node], iters: int):
    host = node.host
    # Expose arrival flags for one-sided ghost puts.
    for d, peer_rank in tile.neighbors.items():
        node.nic.expose_rx_flag(_wire_tag(peer_rank, _OPP[d]), (tile.rx_flag[d], 0))
    def stage_puts(parity: int):
        handles = []
        for d, peer_rank in tile.neighbors.items():
            peer_tile: _JacobiTile = peers[peer_rank].host._jacobi_tile  # type: ignore[attr-defined]
            h = yield from host.put(
                tile.send[(d, parity)], tile.send[(d, parity)].nbytes,
                peers[peer_rank].name, peer_tile.ghost[_OPP[d]].addr(),
                wire_tag=_wire_tag(tile.rank, d), deferred=True)
            handles.append(h)
        return handles

    # First iteration's puts must be staged up front; subsequent ones are
    # staged while the previous kernel runs (GDS pre-posts ahead of time).
    staged = yield from stage_puts(0)
    for it in range(iters):
        parity = it & 1

        def kernel(ctx, _it=it):
            if _it > 0:
                yield from _unpack_kernel_prologue(ctx, ctx.arg("tile"))
            yield from _stencil_kernel(ctx)
            yield ctx.fence_release_system(
                *(ctx.arg("tile").send[(d, ctx.arg("parity"))]
                  for d in ctx.arg("tile").neighbors))

        desc = KernelDescriptor(fn=kernel, n_workgroups=_grid_workgroups(node),
                                args={"tile": tile, "parity": parity},
                                name=f"jacobi-gds-{it}")
        inst = yield from host.launch_kernel(desc)
        for h in staged:
            node.gpu.enqueue_doorbell(h)
        if it + 1 < iters:
            staged = yield from stage_puts((it + 1) & 1)  # overlaps kernel
        # No kernel synchronize needed: the command queue orders the
        # doorbells, and the next launch is gated on ghost arrival only.
        for d in tile.neighbors:
            yield from host.poll_flag(tile.rx_flag[d], at_least=it + 1)
    yield inst.finished
    return node.sim.now


def _gputn_node(node: Node, tile: _JacobiTile, peers: Dict[int, Node], iters: int):
    """GPU-TN with one kernel per iteration (the paper's Figure 9 setup).

    Each kernel triggers its halo puts *in-kernel* as soon as the edges
    are published -- so the wire time overlaps the kernel tail and the
    next kernel's launch -- and waits for inbound halos with in-kernel
    polls instead of host-side polling between launches.  Kernels for all
    iterations are enqueued back to back; inter-node data dependencies are
    enforced by the in-kernel polls, not by the host.  The CPU re-arms
    trigger entries concurrently (relaxed synchronization, §3.2).
    """
    host = node.host
    for d, peer_rank in tile.neighbors.items():
        node.nic.expose_rx_flag(_wire_tag(peer_rank, _OPP[d]), (tile.rx_flag[d], 0))

    dirs = sorted(tile.neighbors)
    tag_of = {(d, it): 0x2000 + tile.rank * 4096 + it * len(_DIRS) + _DIRS.index(d)
              for d in dirs for it in range(iters)}

    def kernel_for(it: int):
        def kernel(ctx):
            t: _JacobiTile = ctx.arg("tile")
            parity = it & 1
            if it > 0 and ctx.wg_id == 0:
                for d in sorted(t.neighbors):
                    yield from ctx.poll_flag(t.rx_flag[d], at_least=it)
                yield ctx.fence_acquire_system(*t.ghost.values())
                t.unpack_ghosts(Agent.GPU, ctx.sim.now)
                yield ctx.compute_bytes(t.pack_bytes() // ctx.n_workgroups)
            if ctx.wg_id == 0:
                t.stencil_update(Agent.GPU)
                t.pack_edges(parity, Agent.GPU, ctx.sim.now)
            share = (t.stencil_bytes() + t.pack_bytes()) // ctx.n_workgroups
            yield ctx.compute_bytes(share)
            yield ctx.barrier()
            yield ctx.fence_release_system(
                *(t.send[(d, parity)] for d in t.neighbors))
            if ctx.wg_id == 0:
                for d in sorted(t.neighbors):
                    yield ctx.store_trigger(tag_of[(d, it)])
        kernel.__name__ = f"jacobi-gputn-{it}"
        return kernel

    def rearm():
        """CPU-side registration loop, concurrent with kernel execution."""
        live = []
        for it in range(iters):
            parity = it & 1
            for d in dirs:
                peer_rank = tile.neighbors[d]
                peer_tile: _JacobiTile = peers[peer_rank].host._jacobi_tile  # type: ignore[attr-defined]
                entry = yield from host.register_triggered_put(
                    tag=tag_of[(d, it)], threshold=1,
                    buf=tile.send[(d, parity)], nbytes=tile.send[(d, parity)].nbytes,
                    target=peers[peer_rank].name,
                    remote_addr=peer_tile.ghost[_OPP[d]].addr(),
                    wire_tag=_wire_tag(tile.rank, d))
                live.append(entry)
            while len(live) > 2 * len(dirs):
                done = live.pop(0)
                yield node.nic.handle_for(done).local
                node.nic.trigger_list.free(done)
        for entry in live:
            yield node.nic.handle_for(entry).local
            node.nic.trigger_list.free(entry)

    rearm_proc = node.sim.spawn(rearm(), name=f"{node.name}.rearm")
    insts = []
    for it in range(iters):
        desc = KernelDescriptor(fn=kernel_for(it),
                                n_workgroups=_grid_workgroups(node),
                                args={"tile": tile},
                                name=f"jacobi-gputn-{it}")
        inst = yield from host.launch_kernel(desc)
        insts.append(inst)
    yield AllOf(node.sim, [insts[-1].finished, rearm_proc])
    return node.sim.now


def _gputn_persistent_node(node: Node, tile: _JacobiTile, peers: Dict[int, Node],
                           iters: int):
    """Extension: a single persistent kernel runs *all* iterations,
    additionally amortizing launch/teardown across the whole run.

    The CPU's only steady-state job is re-arming trigger entries, which it
    does concurrently with kernel execution (relaxed synchronization).
    """
    host = node.host
    for d, peer_rank in tile.neighbors.items():
        node.nic.expose_rx_flag(_wire_tag(peer_rank, _OPP[d]), (tile.rx_flag[d], 0))

    dirs = sorted(tile.neighbors)
    tag_of = {(d, it): 0x2000 + tile.rank * 4096 + it * len(_DIRS) + _DIRS.index(d)
              for d in dirs for it in range(iters)}

    # The persistent kernel is modeled as one driving work-group charging
    # whole-device streaming time: real implementations synchronize the
    # grid per iteration with device-wide atomics, so the slowest path --
    # which sets the timing -- is a single serialized iteration pipeline.
    def kernel(ctx):
        t: _JacobiTile = ctx.arg("tile")
        rate = ctx.config.gpu.stream_bytes_per_ns
        for it in range(iters):
            parity = it & 1
            if it > 0:
                # Wait for all neighbours' iteration-`it` halos.
                for d in sorted(t.neighbors):
                    yield from ctx.poll_flag(t.rx_flag[d], at_least=it)
                yield ctx.fence_acquire_system(*t.ghost.values())
                t.unpack_ghosts(Agent.GPU, ctx.sim.now)
                yield ctx.compute(int(t.pack_bytes() / rate) + 1)
            t.stencil_update(Agent.GPU)
            t.pack_edges(parity, Agent.GPU, ctx.sim.now)
            yield ctx.compute(int((t.stencil_bytes() + t.pack_bytes()) / rate) + 1)
            yield ctx.barrier()
            yield ctx.fence_release_system(
                *(t.send[(d, parity)] for d in t.neighbors))
            for d in sorted(t.neighbors):
                yield ctx.store_trigger(tag_of[(d, it)])

    def rearm():
        """CPU-side registration loop, concurrent with the kernel."""
        live = []
        for it in range(iters):
            parity = it & 1
            for d in dirs:
                peer_rank = tile.neighbors[d]
                peer_tile: _JacobiTile = peers[peer_rank].host._jacobi_tile  # type: ignore[attr-defined]
                entry = yield from host.register_triggered_put(
                    tag=tag_of[(d, it)], threshold=1,
                    buf=tile.send[(d, parity)], nbytes=tile.send[(d, parity)].nbytes,
                    target=peers[peer_rank].name,
                    remote_addr=peer_tile.ghost[_OPP[d]].addr(),
                    wire_tag=_wire_tag(tile.rank, d))
                live.append(entry)
            # Keep the active-entry count bounded (prototype limit 16):
            # free entries two iterations back, which must have fired.
            while len(live) > 2 * len(dirs):
                done = live.pop(0)
                yield node.nic.handle_for(done).local
                node.nic.trigger_list.free(done)
        for entry in live:
            yield node.nic.handle_for(entry).local
            node.nic.trigger_list.free(entry)

    rearm_proc = node.sim.spawn(rearm(), name=f"{node.name}.rearm")
    desc = KernelDescriptor(fn=kernel, n_workgroups=1,
                            args={"tile": tile, "persistent": True},
                            name="jacobi-gputn-persistent")
    inst = yield from host.launch_kernel(desc)
    yield AllOf(node.sim, [inst.finished, rearm_proc])
    return node.sim.now


def _gputn_overlap_node(node: Node, tile: _JacobiTile, peers: Dict[int, Node],
                        iters: int):
    """Extension: overlapped GPU-TN Jacobi.

    The paper notes its Jacobi "does not exploit overlap".  This variant
    does: each kernel updates the *boundary* cells first, publishes and
    triggers the halo puts, then computes the interior while the
    exchange is in flight -- the in-kernel trigger makes the overlap a
    two-line change instead of a kernel split.
    """
    host = node.host
    for d, peer_rank in tile.neighbors.items():
        node.nic.expose_rx_flag(_wire_tag(peer_rank, _OPP[d]), (tile.rx_flag[d], 0))

    dirs = sorted(tile.neighbors)
    tag_of = {(d, it): 0x2000 + tile.rank * 4096 + it * len(_DIRS) + _DIRS.index(d)
              for d in dirs for it in range(iters)}

    def kernel_for(it: int):
        def kernel(ctx):
            t: _JacobiTile = ctx.arg("tile")
            parity = it & 1
            boundary_bytes = 2 * 4 * t.n * _F4.itemsize  # 4 edges, rd+wr
            interior_bytes = max(t.stencil_bytes() - boundary_bytes, 0)
            if it > 0 and ctx.wg_id == 0:
                for d in sorted(t.neighbors):
                    yield from ctx.poll_flag(t.rx_flag[d], at_least=it)
                yield ctx.fence_acquire_system(*t.ghost.values())
                t.unpack_ghosts(Agent.GPU, ctx.sim.now)
                yield ctx.compute_bytes(t.pack_bytes() // ctx.n_workgroups)
            if ctx.wg_id == 0:
                # Numerics once up front (timing is charged in phases).
                t.stencil_update(Agent.GPU)
                t.pack_edges(parity, Agent.GPU, ctx.sim.now)
            # Phase 1: boundary cells + pack -- just enough to send.
            yield ctx.compute_bytes(
                (boundary_bytes + t.pack_bytes()) // ctx.n_workgroups)
            yield ctx.barrier()
            yield ctx.fence_release_system(
                *(t.send[(d, parity)] for d in t.neighbors))
            if ctx.wg_id == 0:
                for d in sorted(t.neighbors):
                    yield ctx.store_trigger(tag_of[(d, it)])
            # Phase 2: interior compute overlaps the wire.
            yield ctx.compute_bytes(interior_bytes // ctx.n_workgroups)
        kernel.__name__ = f"jacobi-gputn-overlap-{it}"
        return kernel

    def rearm():
        live = []
        for it in range(iters):
            parity = it & 1
            for d in dirs:
                peer_rank = tile.neighbors[d]
                peer_tile: _JacobiTile = peers[peer_rank].host._jacobi_tile  # type: ignore[attr-defined]
                entry = yield from host.register_triggered_put(
                    tag=tag_of[(d, it)], threshold=1,
                    buf=tile.send[(d, parity)], nbytes=tile.send[(d, parity)].nbytes,
                    target=peers[peer_rank].name,
                    remote_addr=peer_tile.ghost[_OPP[d]].addr(),
                    wire_tag=_wire_tag(tile.rank, d))
                live.append(entry)
            while len(live) > 2 * len(dirs):
                done = live.pop(0)
                yield node.nic.handle_for(done).local
                node.nic.trigger_list.free(done)
        for entry in live:
            yield node.nic.handle_for(entry).local
            node.nic.trigger_list.free(entry)

    rearm_proc = node.sim.spawn(rearm(), name=f"{node.name}.rearm")
    insts = []
    for it in range(iters):
        desc = KernelDescriptor(fn=kernel_for(it),
                                n_workgroups=_grid_workgroups(node),
                                args={"tile": tile},
                                name=f"jacobi-gputn-overlap-{it}")
        inst = yield from host.launch_kernel(desc)
        insts.append(inst)
    yield AllOf(node.sim, [insts[-1].finished, rearm_proc])
    return node.sim.now


_NODE_DRIVERS = {
    "cpu": _cpu_node,
    "hdn": _hdn_node,
    "gds": _gds_node,
    "gputn": _gputn_node,
    "gputn-persistent": _gputn_persistent_node,
    "gputn-overlap": _gputn_overlap_node,
}


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------

@dataclass
class JacobiResult:
    strategy: str
    n: int
    px: int
    py: int
    iters: int
    total_ns: int
    #: final assembled global grid (for correctness checks)
    grid: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    memory_hazards: int = 0
    cpu_busy_ns: int = 0

    @property
    def per_iteration_ns(self) -> float:
        return self.total_ns / self.iters


class JacobiExperiment(Experiment):
    """The Figure 9 halo-exchange stencil as a runtime experiment.

    Parameters: ``strategy``, local grid size ``n``, node grid ``px`` x
    ``py``, ``iters`` and the decomposition ``seed``.  Metrics include a
    digest of the assembled global grid so determinism tests cover the
    numerics, not just the clock.
    """

    name = "jacobi"
    defaults = {"strategy": "gputn", "n": 128, "px": 2, "py": 2,
                "iters": 1, "seed": 7}

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        strategy = params["strategy"]
        if strategy not in _NODE_DRIVERS:
            raise KeyError(f"unknown strategy {strategy!r}; "
                           f"choose from {sorted(_NODE_DRIVERS)}")
        return Cluster(n_nodes=params["px"] * params["py"], config=config,
                       with_gpu=(strategy != "cpu"), trace=trace)

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        strategy = params["strategy"]
        n, px, py = params["n"], params["px"], params["py"]
        iters, seed = params["iters"], params["seed"]
        n_nodes = px * py
        tiles = [_JacobiTile(cluster[r], n, r, px, py, seed)
                 for r in range(n_nodes)]
        initial_ghost_fill(tiles)
        peers = {r: cluster[r] for r in range(n_nodes)}
        for r in range(n_nodes):
            cluster[r].host._jacobi_tile = tiles[r]  # type: ignore[attr-defined]

        driver = _NODE_DRIVERS[strategy]
        procs = [cluster.spawn(driver(cluster[r], tiles[r], peers, iters),
                               name=f"jacobi.{strategy}.{r}")
                 for r in range(n_nodes)]
        return {"procs": procs, "tiles": tiles}

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        procs, tiles = ctx["procs"], ctx["tiles"]
        result = JacobiResult(
            strategy=params["strategy"], n=params["n"],
            px=params["px"], py=params["py"], iters=params["iters"],
            total_ns=max(p.value for p in procs),
            grid=assemble(tiles, params["px"], params["py"]),
            memory_hazards=cluster.total_hazards(),
            cpu_busy_ns=cluster.total_cpu_busy_ns(),
        )
        metrics = {
            "total_ns": result.total_ns,
            "per_iteration_ns": result.per_iteration_ns,
            "cpu_busy_ns": result.cpu_busy_ns,
            "grid_sha256": hashlib.sha256(result.grid.tobytes()).hexdigest(),
        }
        return metrics, result


def run_jacobi(config: Optional[SystemConfig] = None, strategy: str = "gputn",
               n: int = 128, px: int = 2, py: int = 2, iters: int = 1,
               seed: int = 7) -> JacobiResult:
    """Run ``iters`` Jacobi iterations of an ``n x n``-per-node grid over a
    ``px x py`` cluster under the given strategy."""
    return JacobiExperiment().execute(
        {"strategy": strategy, "n": n, "px": px, "py": py,
         "iters": iters, "seed": seed},
        config=config,
    ).raw
