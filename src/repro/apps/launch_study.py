"""The Figure 1 kernel-launch-latency study.

Reproduces the paper's methodology: present a variable-length sequence of
*empty* kernels to the GPU hardware scheduler at once and measure the
average per-kernel cost.  Three anonymized scheduler models
(:data:`repro.gpu.dispatcher.FIGURE1_GPUS`) span the 3-20 us envelope the
paper measured across vendors and form factors.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cluster import Cluster
from repro.config import SystemConfig, default_config
from repro.gpu.dispatcher import FIGURE1_GPUS, LaunchLatencyModel
from repro.gpu.kernel import KernelDescriptor
from repro.runtime import Experiment

__all__ = ["LaunchLatencyExperiment", "measure_launch_latency"]


def _empty_kernel(ctx):
    return
    yield  # pragma: no cover - generator marker


class LaunchLatencyExperiment(Experiment):
    """Queue-depth launch-latency measurement as a runtime experiment.

    Parameters: ``gpu`` (a :data:`FIGURE1_GPUS` model name, or None for
    the Table 2 constant model) and ``queue_depth``.  An explicit
    :class:`LaunchLatencyModel` instance can be passed to the constructor
    for ad-hoc studies; named models keep sweep points JSON-safe.
    """

    name = "launch-latency"
    defaults = {"gpu": None, "queue_depth": 1}

    def __init__(self, launch_model: Optional[LaunchLatencyModel] = None):
        self.launch_model = launch_model

    def _resolve_model(self, params: Dict[str, Any]) -> Optional[LaunchLatencyModel]:
        if self.launch_model is not None:
            return self.launch_model
        name = params["gpu"]
        return FIGURE1_GPUS[name] if name is not None else None

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        if params["queue_depth"] < 1:
            raise ValueError(
                f"queue depth must be >= 1, got {params['queue_depth']}")
        return Cluster(n_nodes=1, config=config,
                       launch_model=self._resolve_model(params), trace=trace)

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        gpu = cluster[0].gpu
        assert gpu is not None
        instances = [
            gpu.launch(KernelDescriptor(fn=_empty_kernel, n_workgroups=1,
                                        name=f"empty{i}"))
            for i in range(params["queue_depth"])
        ]
        return {"instances": instances}

    def drive(self, cluster: Cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        ctx["end_ns"] = cluster.sim.run_until_event(
            ctx["instances"][-1].finished)

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        per_kernel = ctx["end_ns"] / params["queue_depth"]
        metrics = {"per_kernel_ns": per_kernel, "end_ns": ctx["end_ns"]}
        return metrics, per_kernel


def measure_launch_latency(config: Optional[SystemConfig] = None,
                           launch_model: Optional[LaunchLatencyModel] = None,
                           queue_depth: int = 1) -> float:
    """Mean per-kernel latency (ns) with ``queue_depth`` kernels enqueued
    at once on a single simulated GPU."""
    return LaunchLatencyExperiment(launch_model).execute(
        {"queue_depth": queue_depth}, config=config).raw
