"""The Figure 1 kernel-launch-latency study.

Reproduces the paper's methodology: present a variable-length sequence of
*empty* kernels to the GPU hardware scheduler at once and measure the
average per-kernel cost.  Three anonymized scheduler models
(:data:`repro.gpu.dispatcher.FIGURE1_GPUS`) span the 3-20 us envelope the
paper measured across vendors and form factors.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import Cluster
from repro.config import SystemConfig, default_config
from repro.gpu.dispatcher import LaunchLatencyModel
from repro.gpu.kernel import KernelDescriptor

__all__ = ["measure_launch_latency"]


def _empty_kernel(ctx):
    return
    yield  # pragma: no cover - generator marker


def measure_launch_latency(config: Optional[SystemConfig] = None,
                           launch_model: Optional[LaunchLatencyModel] = None,
                           queue_depth: int = 1) -> float:
    """Mean per-kernel latency (ns) with ``queue_depth`` kernels enqueued
    at once on a single simulated GPU."""
    if queue_depth < 1:
        raise ValueError(f"queue depth must be >= 1, got {queue_depth}")
    config = config or default_config()
    cluster = Cluster(n_nodes=1, config=config, launch_model=launch_model,
                      trace=False)
    gpu = cluster[0].gpu
    assert gpu is not None
    instances = [
        gpu.launch(KernelDescriptor(fn=_empty_kernel, n_workgroups=1,
                                    name=f"empty{i}"))
        for i in range(queue_depth)
    ]
    end = cluster.sim.run_until_event(instances[-1].finished)
    return end / queue_depth
