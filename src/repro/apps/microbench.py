"""The Section 5.2 latency microbenchmark (paper Figure 8).

A kernel on the *initiator* node produces one cache line that must land
at the *target* node; we measure the absolute-time decomposition of both
sides for each strategy.  The paper's headline numbers:

===========  ==========================  ========================
strategy     initiator spans (us)        target completion (us)
===========  ==========================  ========================
GPU-TN       1.50 / 0.49 / 1.49          2.71
GDS          1.50 / 0.43 / 1.51          3.76
HDN          1.50 / ~0.4 / 1.5 + send    4.21
===========  ==========================  ========================

i.e. GPU-TN ~25% faster than GDS and ~35% faster than HDN to target
completion, with the target receiving data *before* the initiator's
kernel finishes (intra-kernel initiation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.config import SystemConfig, default_config
from repro.runtime import Execution, Experiment
from repro.strategies import EVALUATED_STRATEGIES, FlowResult, get_flow

__all__ = [
    "MicrobenchExperiment",
    "MicrobenchResult",
    "execute_all_strategies",
    "run_all_strategies",
    "run_microbenchmark",
]

_CACHE_LINE = 64


@dataclass
class MicrobenchResult:
    """Timing decomposition of one microbenchmark execution."""

    strategy: str
    nbytes: int
    initiator: FlowResult
    #: absolute time the target observed the payload (its app-level "done")
    target_completion_ns: int
    #: labeled spans per node: {(node, phase): (start, end)}
    spans: Dict[Tuple[str, str], Tuple[int, int]] = field(default_factory=dict)
    #: verified payload correctness
    payload_ok: bool = True
    memory_hazards: int = 0

    @property
    def kernel_exec_ns(self) -> Optional[int]:
        span = self.spans.get(("initiator", "kernel-exec"))
        return span[1] - span[0] if span else None

    @property
    def t0_ns(self) -> int:
        """The paper's Figure 8 time origin: the hardware kernel launch
        begins (for the CPU flow, when its compute begins)."""
        span = self.spans.get(("initiator", "kernel-launch"))
        if span is not None:
            return span[0]
        span = self.spans.get(("initiator", "cpu-compute"))
        return span[0] if span is not None else 0

    @property
    def normalized_target_completion_ns(self) -> int:
        """Target completion measured from :attr:`t0_ns` -- directly
        comparable to the paper's Figure 8 bars (host-side registration
        work before the launch is off the measured critical path)."""
        return self.target_completion_ns - self.t0_ns

    def speedup_vs(self, other: "MicrobenchResult") -> float:
        """How much faster this strategy reached target completion."""
        return (other.normalized_target_completion_ns
                / self.normalized_target_completion_ns)


class MicrobenchExperiment(Experiment):
    """The two-node ping as a runtime experiment.

    Parameters: ``strategy``, ``nbytes``, plus the GPU-TN-only knobs
    ``overlap_post`` / ``post_delay_ns``.  Always traces by default -- the
    whole point of this experiment is the span decomposition.
    """

    name = "microbench"
    defaults = {"strategy": "gputn", "nbytes": _CACHE_LINE,
                "overlap_post": False, "post_delay_ns": 0}

    _PATTERN = 0xC3
    _WIRE_TAG = 0x42

    def trace_default(self, params: Dict[str, Any]) -> bool:
        return True

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        return Cluster(n_nodes=2, config=config, trace=trace)

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        strategy, nbytes = params["strategy"], params["nbytes"]
        initiator, target = cluster[0], cluster[1]
        send_buf = initiator.host.alloc(nbytes, name="send")
        recv_buf = target.host.alloc(nbytes, name="recv")

        init_fn, target_fn = get_flow(strategy)
        kwargs = {}
        if strategy == "gputn":
            kwargs["overlap_post"] = params["overlap_post"]
            kwargs["post_delay_ns"] = params["post_delay_ns"]
        one_sided = strategy in ("gds", "gputn", "gpu-host", "gpu-native")
        remote_addr = recv_buf.addr() if one_sided else None

        target_proc = cluster.spawn(
            target_fn(target, recv_buf, nbytes, self._WIRE_TAG), name="target")
        init_proc = cluster.spawn(
            init_fn(initiator, target.name, send_buf, nbytes, remote_addr,
                    self._WIRE_TAG, pattern=self._PATTERN, **kwargs),
            name="initiator")
        # Initiator first: its failure is the one to surface, as before.
        return {"procs": [init_proc, target_proc], "recv_buf": recv_buf,
                "init_proc": init_proc, "target_proc": target_proc}

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        nbytes = params["nbytes"]
        recv = ctx["recv_buf"].view(np.uint8)[:nbytes]
        payload_ok = bool((recv == self._PATTERN).all())
        result = MicrobenchResult(
            strategy=params["strategy"],
            nbytes=nbytes,
            initiator=ctx["init_proc"].value,
            target_completion_ns=ctx["target_proc"].value,
            payload_ok=payload_ok,
            memory_hazards=cluster.total_hazards(),
        )
        _collect_spans(cluster, cluster[0].name, cluster[1].name, result)
        metrics = {
            "target_completion_ns": result.target_completion_ns,
            "normalized_target_completion_ns":
                result.normalized_target_completion_ns,
            "t0_ns": result.t0_ns,
            "payload_ok": payload_ok,
            "network_posted": result.initiator.network_posted,
        }
        return metrics, result


def run_microbenchmark(config: Optional[SystemConfig] = None,
                       strategy: str = "gputn", nbytes: int = _CACHE_LINE,
                       overlap_post: bool = False,
                       post_delay_ns: int = 0) -> MicrobenchResult:
    """Run the two-node ping for one strategy and decompose its latency."""
    return MicrobenchExperiment().execute(
        {"strategy": strategy, "nbytes": nbytes, "overlap_post": overlap_post,
         "post_delay_ns": post_delay_ns},
        config=config,
    ).raw


def _collect_spans(cluster: Cluster, init_name: str, target_name: str,
                   result: MicrobenchResult) -> None:
    label = {init_name: "initiator", target_name: "target"}
    for span in cluster.tracer.spans:
        if span.end is None or span.node not in label:
            continue
        key = (label[span.node], span.phase)
        # Keep the widest span per phase (kernels/sends may nest probes).
        prev = result.spans.get(key)
        if prev is None or (span.end - span.start) > (prev[1] - prev[0]):
            result.spans[key] = (span.start, span.end)


def execute_all_strategies(config: Optional[SystemConfig] = None,
                           nbytes: int = _CACHE_LINE) -> Dict[str, Execution]:
    """Figure 8's full comparison with live clusters kept around, so the
    caller can export each strategy's tracer (``--export-trace``)."""
    experiment = MicrobenchExperiment()
    return {s: experiment.execute({"strategy": s, "nbytes": nbytes},
                                  config=config)
            for s in EVALUATED_STRATEGIES}


def run_all_strategies(config: Optional[SystemConfig] = None,
                       nbytes: int = _CACHE_LINE) -> Dict[str, MicrobenchResult]:
    """Figure 8's full comparison (cpu baseline included for reference)."""
    return {s: e.raw for s, e in execute_all_strategies(config, nbytes).items()}


def decomposition_rows(results: Dict[str, MicrobenchResult]) -> List[str]:
    """Render Figure 8 as text rows on one absolute time scale (us)."""
    rows: List[str] = []
    for strategy in ("gputn", "gds", "hdn"):
        r = results.get(strategy)
        if r is None:
            continue
        parts = []
        for phase in ("kernel-launch", "kernel-exec", "kernel-teardown"):
            span = r.spans.get(("initiator", phase))
            if span:
                parts.append(f"{phase.split('-')[1]}={(span[1] - span[0]) / 1000:.2f}us")
        posted = r.initiator.network_posted
        rows.append(
            f"{strategy.upper():>6}  initiator: {' '.join(parts)}"
            f"{'' if posted is None else f' post@{posted / 1000:.2f}us'}"
        )
        rows.append(
            f"{'':>6}  target complete @ {r.target_completion_ns / 1000:.2f}us"
        )
    return rows
