"""A checkpoint-safe ring relay: the reference *resumable* experiment.

Every legacy experiment drives its flows with generator processes, and
CPython cannot pickle a suspended generator frame -- so none of them can
be checkpointed mid-run.  This module is the counter-example and the
template: the whole workload is built from module-level callable classes
attached as plain event callbacks, so the world pickles at any quiescent
instant and :class:`~repro.checkpoint.CheckpointConfig` runs work.

The workload itself is a token ring.  Node 0 launches a payload that
hops around the ring via one-sided puts (each hop re-armed by
:meth:`~repro.nic.Nic.watch_rx`); after ``rounds`` full laps the ring
goes idle.  At the fixed simulation time ``tail_at_ns`` a second phase
wakes up, reads the ``extra_rounds`` *tail parameter*, and -- if it is
non-zero -- runs that many additional laps.

Because ``extra_rounds`` is provably unread before ``tail_at_ns``, the
experiment declares ``(everything else, tail_at_ns)`` as its checkpoint
prefix: sweep points that differ only in ``extra_rounds`` share every
pre-``tail_at_ns`` snapshot, and a sibling point resumes from the shared
pool with :meth:`ResumableRingExperiment.apply_tail_params` overlaying
its own tail.  That is the incremental re-simulation contract in
miniature.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.cluster import Cluster
from repro.config import SystemConfig
from repro.runtime import Experiment

__all__ = ["ResumableRingExperiment"]

_WIRE_TAG = 0x5A
_PATTERN = 0xA7


def _launch_lap(ctx: Dict[str, Any]) -> None:
    """Node 0 fires the payload at node 1: one lap begins."""
    ring = ctx["ring"]
    src, dst = ring[0], ring[1 % len(ring)]
    ctx["in_flight"] = True
    src["nic"].post_put(src["buf"].addr(), ctx["nbytes"], dst["node"],
                        dst["buf"].addr(), wire_tag=_WIRE_TAG)


class _Relay:
    """Per-node rx handler: forward the token, or score a completed lap.

    Module-level and state-light so event callbacks holding it pickle;
    all mutable run state lives in the shared ``ctx`` dict, which is part
    of the checkpointed world.
    """

    def __init__(self, ctx: Dict[str, Any], index: int):
        self.ctx = ctx
        self.index = index

    def _arm(self) -> None:
        ring = self.ctx["ring"]
        ring[self.index]["nic"].watch_rx(_WIRE_TAG).callbacks.append(self)

    def __call__(self, ev) -> None:
        ctx = self.ctx
        ring = ctx["ring"]
        self._arm()
        if self.index == 0:
            # Token came home: a lap is complete.
            ctx["laps"] += 1
            ctx["last_rx_ns"] = ev.sim.now
            if ctx["laps"] < ctx["target"]:
                _launch_lap(ctx)
            else:
                ctx["in_flight"] = False
        else:
            me = ring[self.index]
            nxt = ring[(self.index + 1) % len(ring)]
            me["nic"].post_put(me["buf"].addr(), ctx["nbytes"], nxt["node"],
                               nxt["buf"].addr(), wire_tag=_WIRE_TAG)


class _Phase2:
    """The ``tail_at_ns`` wakeup: the only reader of ``extra_rounds``.

    Scheduled at a fixed simulation time, so every pre-``tail_at_ns``
    snapshot is identical across sweep points that share the prefix.
    """

    def __init__(self, ctx: Dict[str, Any]):
        self.ctx = ctx

    def __call__(self) -> None:
        ctx = self.ctx
        extra = ctx["tail"]["extra_rounds"]
        if extra <= 0:
            return
        ctx["target"] += extra
        if not ctx["in_flight"]:
            _launch_lap(ctx)


class ResumableRingExperiment(Experiment):
    """Token-ring laps with a late-bound tail phase (checkpoint demo).

    Parameters: ``nodes`` (ring size), ``rounds`` (phase-1 laps),
    ``nbytes`` (token size), ``tail_at_ns`` (phase-2 wakeup time, also
    the prefix-divergence horizon) and ``extra_rounds`` (the tail
    parameter phase 2 reads).
    """

    name = "resumable_ring"
    defaults = {"nodes": 4, "rounds": 6, "nbytes": 256,
                "tail_at_ns": 200_000, "extra_rounds": 0}

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        # No GPU: kernels run as generator processes, which would make
        # mid-kernel worlds unpicklable; the relay is pure NIC + host.
        return Cluster(n_nodes=params["nodes"], config=config,
                       with_gpu=False, trace=trace)

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        nbytes = params["nbytes"]
        ring = []
        for node in cluster:
            buf = node.host.alloc(nbytes, name="token")
            ring.append({"node": node.name, "nic": node.nic, "buf": buf})
        ring[0]["buf"].view(np.uint8)[:] = _PATTERN
        ctx: Dict[str, Any] = {
            "ring": ring,
            "nbytes": nbytes,
            "target": params["rounds"],
            "laps": 0,
            "last_rx_ns": 0,
            "in_flight": False,
            "tail": {"extra_rounds": params["extra_rounds"]},
        }
        for i in range(len(ring)):
            _Relay(ctx, i)._arm()
        cluster.sim.call_later(params["tail_at_ns"], _Phase2(ctx))
        if params["rounds"] > 0:
            _launch_lap(ctx)
        return ctx

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        token = ctx["ring"][0]["buf"].view(np.uint8)
        payload_ok = bool((token == _PATTERN).all()) if ctx["laps"] else True
        metrics = {
            "laps": ctx["laps"],
            "last_rx_ns": ctx["last_rx_ns"],
            "payload_ok": payload_ok,
        }
        return metrics, dict(ctx, metrics=metrics)

    # ------------------------------------------------- incremental sweeps
    def checkpoint_prefix(self, params: Dict[str, Any]):
        prefix = {k: v for k, v in params.items() if k != "extra_rounds"}
        return prefix, params["tail_at_ns"]

    def apply_tail_params(self, world: Dict[str, Any],
                          params: Dict[str, Any]) -> None:
        world["ctx"]["tail"]["extra_rounds"] = params["extra_rounds"]
