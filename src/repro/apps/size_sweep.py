"""Message-size latency/bandwidth sweep.

Not a paper exhibit, but the standard first plot for any networking
stack: one-sided put latency and achieved bandwidth as a function of
message size, per strategy.  Useful for sanity-checking the calibration
(small messages are overhead-bound; large ones saturate the 100 Gbps
link) and for users exploring their own configurations.  Built on
:class:`repro.runtime.Sweep` over the microbenchmark experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.microbench import MicrobenchExperiment
from repro.config import KB, MB, SystemConfig, default_config
from repro.runtime import ResultCache, Sweep

__all__ = ["SweepPoint", "size_sweep"]

DEFAULT_SIZES = (64, 1 * KB, 16 * KB, 256 * KB, 1 * MB, 8 * MB)


@dataclass(frozen=True)
class SweepPoint:
    nbytes: int
    latency_ns: int
    bandwidth_gbps: float

    @classmethod
    def from_run(cls, nbytes: int, latency_ns: int) -> "SweepPoint":
        gbps = (8.0 * nbytes / latency_ns) if latency_ns else 0.0
        return cls(nbytes=nbytes, latency_ns=latency_ns, bandwidth_gbps=gbps)


def size_sweep(config: Optional[SystemConfig] = None,
               strategy: str = "gputn",
               sizes: Sequence[int] = DEFAULT_SIZES,
               jobs: int = 1,
               cache: Optional[ResultCache] = None) -> List[SweepPoint]:
    """Sweep message sizes for one strategy; latency is target completion
    measured from kernel-launch start (Figure 8 time base)."""
    config = config or default_config()
    sweep = Sweep(MicrobenchExperiment(),
                  grid={"nbytes": list(sizes)},
                  base={"strategy": strategy})
    records = sweep.run(config=config, jobs=jobs, cache=cache)
    points = []
    for record in records:
        nbytes = record.params["nbytes"]
        if not record.metrics["payload_ok"]:
            raise AssertionError(f"payload corrupted at {nbytes} B")
        points.append(SweepPoint.from_run(
            nbytes, record.metrics["normalized_target_completion_ns"]))
    return points


def sweep_all(config: Optional[SystemConfig] = None,
              strategies: Sequence[str] = ("hdn", "gds", "gputn"),
              sizes: Sequence[int] = DEFAULT_SIZES,
              jobs: int = 1,
              cache: Optional[ResultCache] = None
              ) -> Dict[str, List[SweepPoint]]:
    return {s: size_sweep(config, s, sizes, jobs=jobs, cache=cache)
            for s in strategies}
