"""Scale-out study: collective schedules x topologies x backends.

The paper stops at 2-8 nodes on a star.  This study pushes the GPU-TN vs
GDS/HDN comparison to 16-256 simulated nodes on datacenter fabrics
(fat-tree / dragonfly / torus), across the schedule zoo, through the
PR-6 service layer: the whole grid is one content-addressed
:class:`repro.service.Job`, so it journals, resumes after preemption,
parallelizes over a process pool, and caches per-point RunRecords.
Every point re-verifies its data against the NumPy schedule oracle --
a sweep that "completes" has also proven every collective correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.collectives.engine import CollectiveExperiment
from repro.config import SystemConfig
from repro.runtime import Sweep

__all__ = ["TOPO_SCHEDULES", "TOPO_STRATEGIES", "TOPO_TOPOLOGIES",
           "TopoScaleReport", "run_topo_campaign"]

#: The study's default axes.  Torus auto-factorizes the node count (primes
#: degrade to a ring); fat-tree/dragonfly auto-size to fit.
TOPO_TOPOLOGIES = ("fat-tree", "dragonfly", "torus")
TOPO_SCHEDULES = ("ring", "recursive-doubling", "halving-doubling",
                  "allgather", "reduce-scatter", "alltoall")
TOPO_STRATEGIES = ("gputn", "gds", "hdn")


@dataclass
class TopoScaleReport:
    """All RunRecords of one scale campaign plus summary accessors."""

    records: List[Any] = field(default_factory=list)
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[Any]:
        return [r for r in self.records if not r.metrics["correct"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_case(self) -> Dict[Tuple[str, str, int], Dict[str, int]]:
        """(topology, schedule, n_nodes) -> {strategy: total_ns}."""
        out: Dict[Tuple[str, str, int], Dict[str, int]] = {}
        for r in self.records:
            p = r.params
            key = (p["topology"], p["schedule"], p["n_nodes"])
            out.setdefault(key, {})[p["strategy"]] = r.metrics["total_ns"]
        return out

    def speedups(self) -> Dict[Tuple[str, str, int], Dict[str, float]]:
        """GPU-TN speedup vs each host-driven strategy, per case."""
        out = {}
        for key, times in self.by_case().items():
            gputn = times.get("gputn")
            if gputn:
                out[key] = {s: t / gputn for s, t in times.items()
                            if s != "gputn"}
        return out

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"total": self.total, "ok": self.ok,
                               "cases": []}
        for (topo, sched, n), times in sorted(self.by_case().items()):
            doc["cases"].append({"topology": topo, "schedule": sched,
                                 "n_nodes": n, "total_ns": times})
        if self.cache_stats is not None:
            doc["cache"] = dict(self.cache_stats)
        return doc


def run_topo_campaign(topologies: Sequence[str] = TOPO_TOPOLOGIES,
                      schedules: Sequence[str] = TOPO_SCHEDULES,
                      strategies: Sequence[str] = TOPO_STRATEGIES,
                      node_counts: Sequence[int] = (16, 64),
                      nbytes: int = 64 * 1024, seed: int = 11, jobs: int = 1,
                      config: Optional[SystemConfig] = None,
                      fail_fast: bool = False, cache: Optional[Any] = None,
                      store: Optional[Any] = None,
                      progress: Optional[Any] = None,
                      checkpoint: Optional[Any] = None,
                      listen: Optional[Any] = None, priority: int = 0,
                      window: Optional[int] = None) -> TopoScaleReport:
    """Run the scale grid as one service-layer job (see module docstring).

    Same contract as the validate/faults campaigns: ``store`` journals the
    job for kill/resume, ``cache`` reuses point records across campaigns
    (a :class:`~repro.runtime.cache.ResultCache`, a bare
    :class:`~repro.service.backends.CacheBackend`, or a root path),
    ``progress`` streams one event per resolved point, and ``fail_fast``
    cancels cooperatively on the first oracle mismatch.  ``listen`` opens
    the job to remote workers (port / ``"host:port"``); ``priority`` and
    ``window`` feed the dispatcher's preemption gate and in-flight cap.
    """
    from repro.service.backends import as_result_cache
    from repro.service.job import Job

    cache = as_result_cache(cache)
    points = [{"topology": t, "schedule": sch, "strategy": strat,
               "n_nodes": n, "nbytes": nbytes, "seed": seed}
              for t in topologies
              for sch in schedules
              for n in node_counts
              for strat in strategies]
    if not points:
        raise ValueError("empty campaign: no topology/schedule/strategy axis")
    job = Job.from_sweep(Sweep(CollectiveExperiment(), points=points),
                         config=config, cache=cache, store=store,
                         checkpoint=checkpoint, priority=priority)
    if listen is not None:
        host, port = job.listen(listen)
        print(f"job {job.id} listening on {host}:{port} -- join with: "
              f"python -m repro worker serve --connect {host}:{port}",
              flush=True)

    def on_point(event) -> None:
        if progress is not None:
            progress(event)
        if fail_fast and not event.record.metrics["correct"]:
            job.cancel()

    records = job.run(jobs=jobs, progress=on_point, window=window)
    return TopoScaleReport(
        records=[r for r in records if r is not None],
        cache_stats=cache.stats() if cache is not None else None)
