"""Performance harness for the simulator itself (``repro bench``).

The reproduction's headline numbers are *simulated* nanoseconds, but the
cost of producing them is *wall-clock* seconds of discrete-event
simulation.  This package times the standard workloads -- the Figure 8
microbenchmark, a small Jacobi solve, a ring allreduce, and a raw-engine
event stress loop -- and reports events/sec, wall time and peak RSS, so
engine optimizations are held to a measured standard
(``BENCH_core.json`` at the repo root, committed at ``repeat >= 3`` with
every raw sample recorded; CI re-times at 3 repeats and fails on a >20%
engine-rate drop vs the committed file via :func:`compare_to_baseline`).

The harness intentionally depends only on long-stable simulator surface
(falling back from :meth:`~repro.sim.Simulator.call_later` to
:meth:`~repro.sim.Simulator.schedule`, and from ``events_processed`` to
the scheduling counter), so the *same* harness can be run against older
checkouts to produce comparable baselines.
"""

from repro.bench.harness import (
    DEFAULT_REPORT_PATH,
    WORKLOADS,
    BenchReport,
    WorkloadResult,
    compare_to_baseline,
    run_bench,
)

__all__ = [
    "DEFAULT_REPORT_PATH",
    "WORKLOADS",
    "BenchReport",
    "WorkloadResult",
    "compare_to_baseline",
    "run_bench",
]
