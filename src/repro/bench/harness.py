"""Measurement core: time workloads, aggregate, serialize.

Methodology
-----------

* Each workload runs ``repeat`` times; the *best* (minimum) wall time is
  reported, per standard microbenchmarking practice -- noise from the OS
  only ever makes a run slower, so the minimum is the best estimate of
  the true cost.  All raw per-run timings are kept in the report.
* Wall time is :func:`time.perf_counter` around the workload call
  (construction included -- that is what a sweep pays per point).
* ``gc.collect()`` runs before every timed run so one workload's garbage
  is not billed to the next.
* Peak RSS is ``ru_maxrss`` (process-lifetime high-water mark, so it is
  reported once for the whole bench, not per workload).
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.bench.workloads import WORKLOADS

__all__ = ["DEFAULT_REPORT_PATH", "WORKLOADS", "BenchReport",
           "WorkloadResult", "compare_to_baseline", "measure_workload",
           "run_bench"]

#: Where ``repro bench --json`` writes by default (repo-root convention).
DEFAULT_REPORT_PATH = "BENCH_core.json"

#: Schema version of the JSON report (bump on breaking layout changes).
SCHEMA_VERSION = 1


@dataclass
class WorkloadResult:
    """Timing for one workload across all repeats."""

    name: str
    events: int
    best_wall_s: float
    wall_s: List[float] = field(default_factory=list)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.best_wall_s if self.best_wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "best_wall_s": round(self.best_wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "wall_s": [round(w, 6) for w in self.wall_s],
        }


@dataclass
class BenchReport:
    """One full bench run: per-workload results plus environment."""

    repeat: int
    results: List[WorkloadResult] = field(default_factory=list)
    peak_rss_kb: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "generated_by": "repro bench",
            "repeat": self.repeat,
            "python": platform.python_version(),
            "platform": sys.platform,
            "peak_rss_kb": self.peak_rss_kb,
            "workloads": {r.name: r.to_dict() for r in self.results},
        }

    def write(self, path: str = DEFAULT_REPORT_PATH) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    return int(rss // 1024) if sys.platform == "darwin" else int(rss)


def measure_workload(name: str, repeat: int):
    """Time one workload ``repeat`` times; returns a ``RunRecord``.

    This is the service layer's ``"bench"`` runner kernel (the record
    shape is what the job journal persists): ``metrics["events"]`` is
    the event count of the last run, ``metrics["wall_s"]`` every raw
    wall time.  Timings are never cached -- they are measurements of
    this machine, not of the simulation.
    """
    from repro.runtime.record import RunRecord

    fn = WORKLOADS[name]
    events = 0
    walls: List[float] = []
    for _ in range(repeat):
        gc.collect()
        t0 = time.perf_counter()
        events = fn()
        walls.append(time.perf_counter() - t0)
    return RunRecord(experiment="bench",
                     params={"workload": name, "repeat": repeat},
                     config_fingerprint="bench",
                     metrics={"events": int(events), "wall_s": walls})


def compare_to_baseline(report: BenchReport, baseline: Dict[str, object],
                        max_drop: float = 0.20) -> List[str]:
    """Regression gate: rate drops beyond ``max_drop`` vs ``baseline``.

    ``baseline`` is a parsed BENCH_core.json document.  Returns one
    human-readable line per workload whose ``events_per_sec`` fell more
    than ``max_drop`` (fraction) below the baseline's -- empty means the
    gate passes.  Workloads present on only one side are ignored: the
    gate guards the perf trajectory, not the workload roster.  Single-
    repeat runs are noisy (the committed methodology is repeat >= 3, see
    DESIGN.md §10); the gate still works on them, just expect flakes.
    """
    if not 0 < max_drop < 1:
        raise ValueError(f"max_drop must be in (0, 1), got {max_drop}")
    base_workloads = baseline.get("workloads", {})
    failures: List[str] = []
    for result in report.results:
        base = base_workloads.get(result.name)
        if not base:
            continue
        base_rate = float(base.get("events_per_sec", 0.0))
        if base_rate <= 0:
            continue
        floor = base_rate * (1.0 - max_drop)
        if result.events_per_sec < floor:
            failures.append(
                f"{result.name}: {result.events_per_sec:,.0f} ev/s is "
                f"{100 * (1 - result.events_per_sec / base_rate):.1f}% below "
                f"baseline {base_rate:,.0f} ev/s (allowed drop: "
                f"{100 * max_drop:.0f}%)")
    return failures


def run_bench(workloads: Optional[Iterable[str]] = None, repeat: int = 3,
              quiet: bool = False, store=None) -> BenchReport:
    """Run the selected ``workloads`` (default: all) ``repeat`` times each.

    A thin client of :mod:`repro.service`: the bench is one job with one
    point per workload, always executed inline (timings must not pay
    fork overhead).  Pass ``store`` (a JobStore or path) to journal it;
    an interrupted bench then resumes with the already-measured
    workloads replayed from the journal instead of re-timed.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    picks = list(workloads) if workloads is not None else list(WORKLOADS)
    unknown = [w for w in picks if w not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workload(s) {unknown}; available: {list(WORKLOADS)}")
    from repro.service.job import Job

    report = BenchReport(repeat=repeat)

    def on_point(event) -> None:
        m = event.record.metrics
        result = WorkloadResult(name=event.record.params["workload"],
                                events=int(m["events"]),
                                best_wall_s=min(m["wall_s"]),
                                wall_s=list(m["wall_s"]))
        report.results.append(result)
        if not quiet:
            replayed = " (journal)" if event.source == "journal" else ""
            print(f"{result.name:<12} events={result.events:>9,} "
                  f"best={result.best_wall_s:.3f}s "
                  f"rate={result.events_per_sec:>12,.0f} ev/s{replayed}")

    Job.from_bench(picks, repeat=repeat, store=store).run(
        jobs=1, progress=on_point)
    report.peak_rss_kb = _peak_rss_kb()
    if not quiet and report.peak_rss_kb is not None:
        print(f"peak rss    {report.peak_rss_kb:,} KiB")
    return report
