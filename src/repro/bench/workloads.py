"""The benchmark workloads: callables returning processed-event counts.

Each workload is a zero-argument callable that builds everything it
needs, runs to completion, and returns the number of simulation events
processed -- the numerator of the events/sec figure.  Wall time is
measured *around* the call by :mod:`repro.bench.harness`, so workloads
must not do heavyweight setup lazily inside cached module state (every
call pays full construction, deliberately: that is what a sweep pays).

Compatibility: these functions run unmodified against older checkouts
(no ``call_later``, no ``events_processed``) so one harness can measure
both sides of an engine change.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["WORKLOADS", "engine_stress"]


def _events_of(sim) -> int:
    """Processed-event count with a fallback for older engines that only
    expose the scheduling sequence counter."""
    return int(getattr(sim, "events_processed", None) or sim._seq)


# --------------------------------------------------------------- raw engine
def engine_stress(n_rounds: int = 200_000) -> int:
    """Pure engine throughput: fan-out callback chains plus one pump
    process, no hardware models on the path.

    This is the number the ISSUE's 1.3x acceptance gate is measured on:
    heap push/pop, callback dispatch and the allocation path, nothing
    else.  Counts its *own* callback invocations so the figure is
    comparable across engines that count processed events differently.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    counter = [0]
    post = getattr(sim, "call_later", None)
    if post is None:  # pre-freelist engine: same semantics, slower path
        def post(delay, fn, *args):
            sim.schedule(delay, fn, *args)

    fan = 4

    def tick(depth: int) -> None:
        counter[0] += 1
        if depth > 0:
            for i in range(fan):
                post(i + 1, tick, depth - 1)

    def pump():
        while counter[0] < n_rounds:
            post(1, tick, 2)
            yield sim.timeout(3)

    sim.spawn(pump())
    sim.run()
    return counter[0]


# ------------------------------------------------------------- full system
def fig8_microbench() -> int:
    """The paper's Figure 8 two-node ping (GPU-TN strategy), untraced."""
    from repro.apps.microbench import MicrobenchExperiment

    execution = MicrobenchExperiment().execute({"strategy": "gputn"},
                                               trace=False)
    return _events_of(execution.cluster.sim)


def jacobi_small() -> int:
    """One iteration of the 2x2-rank Jacobi halo exchange (128x128)."""
    from repro.apps.jacobi import JacobiExperiment

    execution = JacobiExperiment().execute(
        {"strategy": "gputn", "n": 128, "px": 2, "py": 2, "iters": 1,
         "seed": 7})
    return _events_of(execution.cluster.sim)


def ring_allreduce() -> int:
    """A 4-node 256 KiB ring allreduce (the ``repro stats`` smoke size)."""
    from repro.collectives.ring import AllreduceExperiment

    execution = AllreduceExperiment().execute(
        {"strategy": "gputn", "nbytes": 256 * 1024})
    return _events_of(execution.cluster.sim)


def transport_recovery() -> int:
    """Selective-repeat ARQ under 25% seeded loss on a congested point:
    one loaded congestion-study case (RED+ECN queues, AIMD pacing), the
    hot path of the retransmit/SACK/reorder machinery."""
    from repro.apps.congestion import CongestionExperiment

    execution = CongestionExperiment().execute(
        {"strategy": "gputn", "transport": "selective-repeat",
         "discipline": "red-ecn", "load": 0.8, "messages": 16,
         "bg_horizon_ns": 60_000}, trace=False)
    return _events_of(execution.cluster.sim)


#: name -> zero-argument callable returning the event count.
WORKLOADS: Dict[str, Callable[[], int]] = {
    "engine": engine_stress,
    "microbench": fig8_microbench,
    "jacobi": jacobi_small,
    "allreduce": ring_allreduce,
    "transport": transport_recovery,
}
