"""Deterministic checkpoint/restore + incremental re-simulation.

Three layers (see DESIGN.md §12):

* **Engine**: :meth:`repro.sim.Simulator.snapshot` / ``restore`` expose
  the scheduler state (clock, heap, sequence counter, tie-break RNG);
  the whole simulator also pickles, heap entries included.
* **Format** (:mod:`repro.checkpoint.format`): versioned, SHA-256
  fingerprinted checkpoint files holding a pickle of the experiment's
  full world -- cluster, run context, observers -- so NIC/transport
  windows, switch queues, trigger lists, and every named RNG substream
  survive with shared identity intact.
* **Policy** (:class:`CheckpointConfig` on ``Experiment.execute``):
  periodic grid-aligned snapshots, resume-from-latest, and shared
  parameter-prefix pools for incremental sweeps.

The correctness bar everywhere: a run restored from any checkpoint
produces a RunRecord byte-identical to the uninterrupted run.
"""

from repro.checkpoint.config import CheckpointConfig
from repro.checkpoint.format import (
    FORMAT_VERSION,
    CheckpointError,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    point_fingerprint,
    prune_checkpoints,
    read_header,
    save_checkpoint,
)

__all__ = [
    "CheckpointConfig",
    "CheckpointError",
    "FORMAT_VERSION",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "point_fingerprint",
    "prune_checkpoints",
    "read_header",
    "save_checkpoint",
]
