"""Checkpoint policy knob for :meth:`repro.runtime.Experiment.execute`.

Deliberately *not* a :class:`repro.config.SystemConfig` section: whether
and how often a run checkpoints changes nothing about the simulated
system, so it must not perturb config fingerprints, cache keys, or
golden fixtures (the same standalone-knob pattern as ``QueueConfig`` and
``ReliabilityConfig``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CheckpointConfig"]


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic sim-time checkpointing for one experiment run.

    Checkpoints are taken on the fixed grid ``interval_ns, 2*interval_ns,
    ...`` of simulation time (grid alignment makes an interrupted-and-
    resumed run hit the exact same snapshot instants as an uninterrupted
    one, which is what makes the final RunRecord byte-identical).
    """

    #: Directory checkpoint files live in (created on first save).
    directory: str
    #: Simulation-time distance between snapshots, in ns.
    interval_ns: int
    #: Look for (and resume from) an existing checkpoint before building
    #: the cluster from scratch.
    resume: bool = True
    #: How many per-point snapshots to retain (older ones are pruned
    #: after each save).  Shared prefix snapshots are never pruned here.
    keep: int = 2
    #: Honor the experiment's declared parameter-prefix pool: save
    #: pre-divergence snapshots under the shared prefix identity and
    #: resume sibling points from them (incremental re-simulation).
    shared_prefix: bool = True

    def __post_init__(self) -> None:
        if self.interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {self.interval_ns}")
        if self.keep < 0:
            raise ValueError(f"keep must be >= 0, got {self.keep}")
