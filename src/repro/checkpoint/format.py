"""Versioned, fingerprinted on-disk checkpoint format.

A checkpoint file is::

    REPRO-CKPT\n
    <canonical-JSON header>\n
    <pickle payload>

The header carries the format version, the producing code version, the
experiment name, the *point fingerprint* (experiment + params + config,
the same identity the result cache keys on), the simulation time of the
snapshot, and the SHA-256 of the payload.  :func:`load_checkpoint`
verifies all of them before unpickling; any mismatch raises
:class:`CheckpointError`, and callers treat that as "no checkpoint" --
the invalidation rule is *fall back to a from-scratch run*, never trust
a stale or foreign snapshot.

The payload is a pickle of the experiment's whole *world* -- cluster,
run context, armed observers -- so shared object identity (events waited
on from several places, buffers aliased by NIC and GPU) survives the
round trip.  Worlds containing live generator processes (user kernels
mid-execution, legacy generator-driven experiments) cannot pickle;
:func:`save_checkpoint` surfaces that as a :class:`CheckpointError`
naming the cause instead of a bare pickling traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.record import canonical_json, json_safe
from repro.version import __version__

__all__ = [
    "CheckpointError",
    "FORMAT_VERSION",
    "latest_checkpoint",
    "list_checkpoints",
    "load_checkpoint",
    "point_fingerprint",
    "prune_checkpoints",
    "read_header",
    "save_checkpoint",
]

MAGIC = b"REPRO-CKPT"
FORMAT_VERSION = 1

#: File suffix for checkpoint files.
SUFFIX = ".ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or trusted."""


def point_fingerprint(experiment: str, params: Dict[str, Any],
                      config_fp: str, code_version: str = __version__) -> str:
    """Identity of one (experiment, params, config, code) point.

    Same ingredients as the result-cache key, truncated for filenames.
    """
    digest = hashlib.sha256(canonical_json({
        "experiment": experiment,
        "params": json_safe(dict(params)),
        "config": config_fp,
        "version": code_version,
    }).encode())
    return digest.hexdigest()[:24]


def checkpoint_path(directory: str, point_fp: str, sim_now_ns: int) -> str:
    """Canonical file path for a checkpoint of ``point_fp`` at a time."""
    return os.path.join(directory, f"{point_fp}-t{sim_now_ns:020d}{SUFFIX}")


def save_checkpoint(directory: str, world: Any, *, experiment: str,
                    point_fp: str, config_fp: str, sim_now_ns: int,
                    extra: Optional[Dict[str, Any]] = None,
                    skip_existing: bool = False) -> Optional[str]:
    """Atomically write one checkpoint file; returns its path.

    With ``skip_existing`` an already-present checkpoint for the same
    (fingerprint, time) is left untouched and ``None`` is returned --
    used for shared prefix checkpoints several sweep points converge on.
    """
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory, point_fp, sim_now_ns)
    if skip_existing and os.path.exists(path):
        return None
    try:
        payload = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # TypeError for generators, PicklingError, ...
        raise CheckpointError(
            f"simulation state is not picklable at t={sim_now_ns}: {exc} "
            "(live generator processes -- e.g. an executing GPU kernel or a "
            "generator-driven experiment -- cannot be checkpointed; snapshot "
            "at a quiescent instant or use a callback-driven experiment)"
        ) from exc
    header = {
        "format_version": FORMAT_VERSION,
        "code_version": __version__,
        "experiment": experiment,
        "point_fingerprint": point_fp,
        "config_fingerprint": config_fp,
        "sim_now_ns": int(sim_now_ns),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "extra": json_safe(extra or {}),
    }
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(MAGIC + b"\n")
        fh.write(canonical_json(header).encode() + b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def _read(path: str) -> Tuple[Dict[str, Any], bytes]:
    try:
        with open(path, "rb") as fh:
            magic = fh.readline().rstrip(b"\n")
            if magic != MAGIC:
                raise CheckpointError(f"{path}: not a checkpoint file")
            try:
                header = json.loads(fh.readline().decode())
            except ValueError as exc:
                raise CheckpointError(f"{path}: corrupt header: {exc}") from exc
            payload = fh.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable: {exc}") from exc
    return header, payload


def read_header(path: str) -> Dict[str, Any]:
    """Header of one checkpoint file (no payload verification)."""
    with open(path, "rb") as fh:
        magic = fh.readline().rstrip(b"\n")
        if magic != MAGIC:
            raise CheckpointError(f"{path}: not a checkpoint file")
        try:
            return json.loads(fh.readline().decode())
        except ValueError as exc:
            raise CheckpointError(f"{path}: corrupt header: {exc}") from exc


def load_checkpoint(path: str, *, expect_point_fp: Optional[str] = None,
                    expect_config_fp: Optional[str] = None
                    ) -> Tuple[Any, Dict[str, Any]]:
    """Verify and unpickle one checkpoint; returns ``(world, header)``.

    Raises :class:`CheckpointError` on any version, fingerprint, or
    integrity mismatch -- callers fall back to a from-scratch run.
    """
    header, payload = _read(path)
    if header.get("format_version") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: format version {header.get('format_version')!r} "
            f"!= supported {FORMAT_VERSION}")
    if header.get("code_version") != __version__:
        raise CheckpointError(
            f"{path}: written by code version {header.get('code_version')!r}, "
            f"running {__version__!r}")
    if expect_point_fp is not None and header.get("point_fingerprint") != expect_point_fp:
        raise CheckpointError(
            f"{path}: point fingerprint {header.get('point_fingerprint')!r} "
            f"!= expected {expect_point_fp!r}")
    if expect_config_fp is not None and header.get("config_fingerprint") != expect_config_fp:
        raise CheckpointError(
            f"{path}: config fingerprint {header.get('config_fingerprint')!r} "
            f"!= expected {expect_config_fp!r}")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256") or len(payload) != header.get("payload_bytes"):
        raise CheckpointError(f"{path}: payload integrity check failed "
                              "(torn or tampered checkpoint)")
    try:
        world = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"{path}: payload does not unpickle: {exc}") from exc
    return world, header


def list_checkpoints(directory: str, point_fp: str, *,
                     below_ns: Optional[int] = None) -> List[Tuple[int, str]]:
    """All checkpoints of ``point_fp`` in ``directory``: ``(sim_ns, path)``
    ascending by time.  ``below_ns`` keeps only snapshots strictly before
    that time (the prefix-divergence horizon for shared checkpoints)."""
    prefix = f"{point_fp}-t"
    out: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return out
    for name in names:
        if not (name.startswith(prefix) and name.endswith(SUFFIX)):
            continue
        try:
            sim_ns = int(name[len(prefix):-len(SUFFIX)])
        except ValueError:
            continue
        if below_ns is not None and sim_ns >= below_ns:
            continue
        out.append((sim_ns, os.path.join(directory, name)))
    out.sort()
    return out


def latest_checkpoint(directory: str, point_fp: str, *,
                      below_ns: Optional[int] = None) -> Optional[Tuple[int, str]]:
    """Newest usable checkpoint of ``point_fp``, or ``None``."""
    found = list_checkpoints(directory, point_fp, below_ns=below_ns)
    return found[-1] if found else None


def prune_checkpoints(directory: str, point_fp: str, keep: int) -> None:
    """Delete all but the newest ``keep`` checkpoints of ``point_fp``.

    ``keep <= 0`` removes every checkpoint (used once a point completes).
    """
    found = list_checkpoints(directory, point_fp)
    drop = found if keep <= 0 else found[:-keep]
    for _, path in drop:
        try:
            os.unlink(path)
        except OSError:
            pass
