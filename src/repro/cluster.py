"""Cluster construction: full simulated nodes wired to one fabric.

A :class:`Node` is the paper's evaluation platform (Section 5.1): a
coherent SoC with CPU, GPU and NIC sharing one address space.  A
:class:`Cluster` builds ``n`` of them on a star fabric (Table 2) and owns
the simulator, tracer and memory-hazard accounting.

Typical use::

    cluster = Cluster(n_nodes=2, config=default_config())
    n0, n1 = cluster.nodes
    cluster.spawn(my_protocol(n0, n1))
    cluster.run()
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.config import SystemConfig, default_config
from repro.gpu.device import Gpu
from repro.gpu.dispatcher import LaunchLatencyModel
from repro.host import Host
from repro.memory import AddressSpace, ScopedMemoryModel
from repro.net import Fabric, make_topology
from repro.net.topology import Topology
from repro.nic import Nic
from repro.sim import Simulator, Tracer

__all__ = ["Cluster", "Node"]


class Node:
    """One simulated compute node: shared memory + CPU + GPU + NIC."""

    def __init__(self, sim: Simulator, name: str, config: SystemConfig,
                 fabric: Fabric, tracer: Tracer,
                 launch_model: Optional[LaunchLatencyModel] = None,
                 with_gpu: bool = True):
        self.sim = sim
        self.name = name
        self.config = config
        self.space = AddressSpace(name)
        self.mem = ScopedMemoryModel()
        self.nic = Nic(sim, name, self.space, self.mem, fabric, config, tracer=tracer)
        self.gpu: Optional[Gpu] = (
            Gpu(sim, name, config, self.space, self.mem, self.nic,
                tracer=tracer, launch_model=launch_model)
            if with_gpu else None
        )
        self.host = Host(sim, name, config, self.space, self.mem,
                         self.nic, self.gpu, tracer=tracer)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name}>"


class Cluster:
    """``n_nodes`` identical nodes on one fabric, plus the simulator."""

    def __init__(self, n_nodes: int, config: Optional[SystemConfig] = None,
                 topology: Optional[Topology] = None,
                 launch_model: Optional[LaunchLatencyModel] = None,
                 with_gpu: bool = True, trace: bool = True):
        if n_nodes < 1:
            raise ValueError(f"cluster needs >=1 node, got {n_nodes}")
        self.config = config or default_config()
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace)
        names = [f"node{i}" for i in range(n_nodes)]
        # No explicit topology: build from the config's spec string
        # (default "star" reproduces the paper's Table 2 network exactly).
        self.topology = topology or make_topology(
            self.config.network.topology, n_nodes,
            self.config.network.link_latency_ns,
            self.config.network.switch_latency_ns,
        )
        if list(self.topology.nodes) != names:
            raise ValueError("custom topology must name nodes node0..nodeN-1")
        self.fabric = Fabric(self.sim, self.topology, self.config.network,
                             tracer=self.tracer)
        self.nodes: List[Node] = [
            Node(self.sim, name, self.config, self.fabric, self.tracer,
                 launch_model=launch_model, with_gpu=with_gpu)
            for name in names
        ]
        self._by_name: Dict[str, Node] = {n.name: n for n in self.nodes}
        #: Set by :func:`repro.metrics.attach_metrics`; ``None`` means no
        #: observability is armed.  Apps may publish app-level measurements
        #: (e.g. per-message latencies) into it when not ``None``.
        self.metrics = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __getitem__(self, i: int) -> Node:
        return self.nodes[i]

    def node(self, name: str) -> Node:
        return self._by_name[name]

    def spawn(self, generator, name: str = ""):
        return self.sim.spawn(generator, name=name)

    def run(self, until: Optional[int] = None) -> int:
        return self.sim.run(until=until)

    # --------------------------------------------------------- reliability
    def enable_reliability(self, config=None) -> None:
        """Arm the go-back-N reliable transport on every node's NIC
        (see :meth:`repro.nic.Nic.enable_reliability`)."""
        for node in self.nodes:
            node.nic.enable_reliability(config)

    def attach_faults(self, fault_config, rng=None):
        """Build a seeded :class:`repro.faults.FaultPlan` from
        ``fault_config`` and install it on the fabric; returns the plan."""
        from repro.faults.plan import FaultPlan

        return FaultPlan(fault_config, rng=rng).attach(self.fabric)

    def enable_queues(self, queue_config, streams=None):
        """Arm finite switch output-port queues on the fabric (see
        :meth:`repro.net.Fabric.enable_queues`).  ``streams`` defaults to
        a :class:`repro.sim.rng.RandomStreams` seeded from the system
        config, so RED marking draws are reproducible per run."""
        if streams is None:
            from repro.sim.rng import RandomStreams

            streams = RandomStreams(self.config.seed)
        return self.fabric.enable_queues(queue_config, streams)

    def transport_counters(self) -> Dict[str, int]:
        """Merged reliability/fault counters across the cluster, ``{}``
        when nothing is armed (so plain RunRecords stay byte-identical)."""
        merged: Dict[str, int] = {}
        for node in self.nodes:
            transport = node.nic.transport
            if transport is None:
                continue
            for key, val in transport.stats.items():
                if val:
                    merged[key] = merged.get(key, 0) + val
        plan = self.fabric.interposer
        if plan is not None and hasattr(plan, "counters"):
            for key, val in plan.counters().items():
                merged[f"fault_{key}"] = merged.get(f"fault_{key}", 0) + val
        queues = self.fabric.queues
        if queues is not None:
            for key, val in queues.counters().items():
                merged[key] = merged.get(key, 0) + val
        return merged

    # ------------------------------------------------------------ analysis
    def total_hazards(self) -> int:
        """Memory-model hazards across all nodes (should be 0 for correct
        strategies; deliberately non-zero in fence-omission tests)."""
        return sum(n.mem.hazard_count() for n in self.nodes)

    def total_cpu_busy_ns(self) -> int:
        return sum(n.host.stats["busy_ns"] for n in self.nodes)
