"""Non-blocking collectives (paper Section 5.4).

Modeled on libNBC, the library the paper extends: a collective is compiled
into a per-rank *schedule* -- rounds of send/recv/reduce subtasks with
dependencies only between rounds -- and an executor steps through the
schedule.  Schedule creation "maps perfectly to the triggered operation
semantics in GPU-TN": the GPU-TN executor lowers every send to a
pre-registered triggered put fired from inside a single persistent kernel.

* :mod:`~repro.collectives.schedule` -- schedule IR + builders (ring
  Allreduce of Figure 2, plus reduce-scatter/allgather pieces);
* :mod:`~repro.collectives.ring` -- per-strategy executors over a
  :class:`~repro.cluster.Cluster`.
"""

from repro.collectives.offload import nic_barrier, nic_broadcast
from repro.collectives.ring import (
    AllreduceExperiment,
    AllreduceResult,
    run_ring_allreduce,
)
from repro.collectives.schedule import (
    CollectiveSchedule,
    ScheduleOp,
    ring_allreduce_schedule,
)

__all__ = [
    "AllreduceExperiment",
    "AllreduceResult",
    "CollectiveSchedule",
    "ScheduleOp",
    "nic_barrier",
    "nic_broadcast",
    "ring_allreduce_schedule",
    "run_ring_allreduce",
]
