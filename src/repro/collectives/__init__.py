"""Non-blocking collectives (paper Section 5.4).

Modeled on libNBC, the library the paper extends: a collective is compiled
into a per-rank *schedule* -- rounds of send/recv/reduce subtasks with
dependencies only between rounds -- and an executor steps through the
schedule.  Schedule creation "maps perfectly to the triggered operation
semantics in GPU-TN": the GPU-TN executor lowers every send to a
pre-registered triggered put fired from inside a single persistent kernel.

* :mod:`~repro.collectives.schedule` -- schedule IR + builders (ring
  Allreduce of Figure 2, plus reduce-scatter/allgather pieces);
* :mod:`~repro.collectives.ring` -- per-strategy executors over a
  :class:`~repro.cluster.Cluster`;
* :mod:`~repro.collectives.algorithms` -- the schedule zoo
  (recursive-doubling / halving-doubling Allreduce, AllGather,
  ReduceScatter, all-to-all) in the same round IR;
* :mod:`~repro.collectives.engine` -- a generic executor that runs *any*
  canonical schedule on every strategy, plus the NumPy schedule oracle.
"""

from repro.collectives.algorithms import (
    SCHEDULE_BUILDERS,
    alltoall_schedule,
    halving_doubling_allreduce_schedule,
    recursive_doubling_allreduce_schedule,
    ring_allgather_schedule,
    ring_reduce_scatter_schedule,
)
from repro.collectives.engine import (
    CollectiveExperiment,
    CollectiveResult,
    run_collective,
    schedule_reference,
)
from repro.collectives.offload import nic_barrier, nic_broadcast
from repro.collectives.ring import (
    AllreduceExperiment,
    AllreduceResult,
    run_ring_allreduce,
)
from repro.collectives.schedule import (
    CollectiveSchedule,
    ScheduleOp,
    ring_allreduce_schedule,
)

__all__ = [
    "AllreduceExperiment",
    "AllreduceResult",
    "CollectiveExperiment",
    "CollectiveResult",
    "CollectiveSchedule",
    "SCHEDULE_BUILDERS",
    "ScheduleOp",
    "alltoall_schedule",
    "halving_doubling_allreduce_schedule",
    "nic_barrier",
    "nic_broadcast",
    "recursive_doubling_allreduce_schedule",
    "ring_allgather_schedule",
    "ring_allreduce_schedule",
    "ring_reduce_scatter_schedule",
    "run_collective",
    "run_ring_allreduce",
    "schedule_reference",
]
