"""The collective schedule zoo (libNBC-style builders beyond the ring).

Every builder returns one rank's :class:`CollectiveSchedule` in the same
shape the ring uses -- exactly one SEND and one RECV (plus an optional
REDUCE) per round -- so the generic executors in
:mod:`repro.collectives.engine` can drive any of them over any backend
(cpu / hdn / gds / gputn) without schedule-specific code.

* :func:`recursive_doubling_allreduce_schedule` -- log2(P) rounds, whole
  vector exchanged with rank ^ 2^s each round (latency-optimal for small
  payloads).
* :func:`halving_doubling_allreduce_schedule` -- vector-halving reduce-
  scatter then vector-doubling allgather (bandwidth-optimal, the classic
  Rabenseifner algorithm).
* :func:`ring_allgather_schedule` / :func:`ring_reduce_scatter_schedule`
  -- the two ring phases as standalone collectives.
* :func:`alltoall_schedule` -- the MoE "token dispatch" pattern: every
  rank owns P chunks, chunk ``d`` is routed to rank ``d``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.collectives.schedule import (CollectiveSchedule, OpKind, ScheduleOp,
                                        ring_allreduce_schedule)

__all__ = [
    "SCHEDULE_BUILDERS",
    "alltoall_schedule",
    "halving_doubling_allreduce_schedule",
    "recursive_doubling_allreduce_schedule",
    "ring_allgather_schedule",
    "ring_reduce_scatter_schedule",
]


def _check_rank(rank: int, n_ranks: int) -> None:
    if n_ranks < 2:
        raise ValueError(f"collective needs >=2 ranks, got {n_ranks}")
    if not 0 <= rank < n_ranks:
        raise ValueError(f"rank {rank} outside [0, {n_ranks})")


def _require_pow2(n_ranks: int, algo: str) -> None:
    if n_ranks & (n_ranks - 1):
        raise ValueError(f"{algo} requires a power-of-two rank count, "
                         f"got {n_ranks}")


def recursive_doubling_allreduce_schedule(rank: int,
                                          n_ranks: int) -> CollectiveSchedule:
    """log2(P) rounds; round ``s`` exchanges the whole vector with
    ``rank ^ 2^s`` and reduces.  One chunk: the vector itself."""
    _check_rank(rank, n_ranks)
    _require_pow2(n_ranks, "recursive doubling")
    rounds: List[List[ScheduleOp]] = []
    for s in range(n_ranks.bit_length() - 1):
        peer = rank ^ (1 << s)
        rounds.append([
            ScheduleOp(OpKind.SEND, 0, peer, s),
            ScheduleOp(OpKind.RECV, 0, peer, s),
            ScheduleOp(OpKind.REDUCE, 0, -1, s),
        ])
    return CollectiveSchedule(rank=rank, n_ranks=n_ranks, rounds=rounds,
                              collective="allreduce", n_chunks=1)


def halving_doubling_allreduce_schedule(rank: int,
                                        n_ranks: int) -> CollectiveSchedule:
    """Rabenseifner: vector-halving reduce-scatter (distance P/2 down to 1,
    each round keeps the half of the live block holding ``rank`` and sends
    the other half), then vector-doubling allgather in mirror order.
    After the halving phase rank ``r`` owns exactly chunk ``r``."""
    _check_rank(rank, n_ranks)
    _require_pow2(n_ranks, "halving-doubling")
    steps = n_ranks.bit_length() - 1
    rounds: List[List[ScheduleOp]] = []
    lo, cnt = 0, n_ranks

    # Phase 1: reduce-scatter by halving.  Live block [lo, lo+cnt); the
    # upper half's chunk indices carry bit d, so keep-upper <=> rank & d.
    for s in range(steps):
        d = n_ranks >> (s + 1)
        peer = rank ^ d
        half = cnt // 2
        if rank & d:
            keep_lo, send_lo = lo + half, lo
        else:
            keep_lo, send_lo = lo, lo + half
        rounds.append([
            ScheduleOp(OpKind.SEND, send_lo, peer, s, nchunks=half),
            ScheduleOp(OpKind.RECV, keep_lo, peer, s, nchunks=half),
            ScheduleOp(OpKind.REDUCE, keep_lo, -1, s, nchunks=half),
        ])
        lo, cnt = keep_lo, half

    # Phase 2: allgather by doubling, mirroring phase 1.  The sibling
    # block at distance d is [lo ^ cnt, ...) (blocks stay aligned).
    for s in range(steps):
        rnd = steps + s
        d = 1 << s
        peer = rank ^ d
        sib_lo = lo ^ cnt
        rounds.append([
            ScheduleOp(OpKind.SEND, lo, peer, rnd, nchunks=cnt),
            ScheduleOp(OpKind.RECV, sib_lo, peer, rnd, nchunks=cnt),
        ])
        lo, cnt = min(lo, sib_lo), cnt * 2

    return CollectiveSchedule(rank=rank, n_ranks=n_ranks, rounds=rounds,
                              collective="allreduce")


def ring_allgather_schedule(rank: int, n_ranks: int) -> CollectiveSchedule:
    """P-1 rounds; each rank starts owning chunk ``rank`` and forwards the
    newest chunk right while receiving from the left."""
    _check_rank(rank, n_ranks)
    right, left = (rank + 1) % n_ranks, (rank - 1) % n_ranks
    rounds = [[
        ScheduleOp(OpKind.SEND, (rank - s) % n_ranks, right, s),
        ScheduleOp(OpKind.RECV, (rank - s - 1) % n_ranks, left, s),
    ] for s in range(n_ranks - 1)]
    return CollectiveSchedule(rank=rank, n_ranks=n_ranks, rounds=rounds,
                              collective="allgather")


def ring_reduce_scatter_schedule(rank: int, n_ranks: int) -> CollectiveSchedule:
    """Phase 1 of the ring Allreduce alone: after P-1 reduce rounds rank
    ``r`` holds the full reduction of chunk ``(r + 1) mod P``."""
    _check_rank(rank, n_ranks)
    right, left = (rank + 1) % n_ranks, (rank - 1) % n_ranks
    rounds = [[
        ScheduleOp(OpKind.SEND, (rank - s) % n_ranks, right, s),
        ScheduleOp(OpKind.RECV, (rank - s - 1) % n_ranks, left, s),
        ScheduleOp(OpKind.REDUCE, (rank - s - 1) % n_ranks, -1, s),
    ] for s in range(n_ranks - 1)]
    return CollectiveSchedule(rank=rank, n_ranks=n_ranks, rounds=rounds,
                              collective="reduce_scatter",
                              result_chunk=(rank + 1) % n_ranks)


def alltoall_schedule(rank: int, n_ranks: int) -> CollectiveSchedule:
    """MoE token dispatch: input chunk ``d`` is the block of tokens bound
    for expert/rank ``d``; output chunk ``s`` is what rank ``s`` sent us.
    P-1 rounds of a rotated pairwise exchange (round ``s`` sends to
    ``rank + s + 1``, receives from ``rank - s - 1``); the self-chunk is a
    local copy outside the schedule.  Out-of-place: receives land in a
    separate output buffer so late arrivals never clobber unsent input."""
    _check_rank(rank, n_ranks)
    rounds = []
    for s in range(n_ranks - 1):
        to = (rank + s + 1) % n_ranks
        frm = (rank - s - 1) % n_ranks
        rounds.append([
            ScheduleOp(OpKind.SEND, to, to, s),
            ScheduleOp(OpKind.RECV, frm, frm, s),
        ])
    return CollectiveSchedule(rank=rank, n_ranks=n_ranks, rounds=rounds,
                              collective="alltoall", in_place=False)


#: Name -> builder, the registry the engine/CLI/apps dispatch on.
SCHEDULE_BUILDERS: Dict[str, Callable[[int, int], CollectiveSchedule]] = {
    "ring": ring_allreduce_schedule,
    "recursive-doubling": recursive_doubling_allreduce_schedule,
    "halving-doubling": halving_doubling_allreduce_schedule,
    "allgather": ring_allgather_schedule,
    "reduce-scatter": ring_reduce_scatter_schedule,
    "alltoall": alltoall_schedule,
}
