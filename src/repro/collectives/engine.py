"""Generic executors driving any schedule-zoo collective on any backend.

:mod:`repro.collectives.ring` hand-specializes the ring Allreduce (chunk
slicing, parity staging).  This module is the general machine: it runs
*any* :class:`CollectiveSchedule` whose rounds have the canonical one-SEND
one-RECV(+REDUCE) shape -- everything in
:data:`repro.collectives.algorithms.SCHEDULE_BUILDERS` -- over the same
four backends with the same trigger-program structure:

* **cpu / hdn** -- two-sided sends; hdn pays one reduce kernel per round;
* **gds**   -- pre-staged deferred puts doorbelled behind the reduce
  kernel that produces their payload (command-queue ordered);
* **gputn** -- one persistent kernel: poll the round's arrival flag,
  reduce, ``store_trigger`` the next round's pre-armed put, with the host
  re-arming trigger entries off the critical path.

Safety differences from the ring specialization, both forced by schedules
whose peers change per round:

* staging is **per round**, not parity-buffered -- with round-varying
  peers a remote round-``s`` put can causally precede the local rank
  reaching round ``s - 2``, so two buffers are not enough;
* arrivals are counted in **per-round flag words** (one uint32 per round,
  polled ``at_least=1``), not one cumulative counter -- arrivals from
  different peers may reorder, and a cumulative count could be satisfied
  by the wrong round's data.

The NumPy oracle (:func:`schedule_reference`) interprets the same
schedules round-by-round globally with the executors' association order
(``chunk = chunk + arrival``), so correctness checks are bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import Cluster, Node
from repro.collectives.algorithms import SCHEDULE_BUILDERS
from repro.collectives.schedule import CollectiveSchedule, OpKind, ScheduleOp
from repro.config import SystemConfig
from repro.gpu.kernel import KernelDescriptor
from repro.memory import Agent
from repro.runtime import Experiment
from repro.sim import AllOf

__all__ = [
    "CollectiveExperiment",
    "CollectiveResult",
    "run_collective",
    "schedule_reference",
]

_F4 = np.dtype(np.float32)


def _wire_tag(src_rank: int, rnd: int) -> int:
    """Unique per (sender, round): receivers gate each round on its own
    tag, so cross-round arrivals can never alias."""
    return 0x5000 + src_rank * 512 + rnd


def _trig_tag(rank: int, rnd: int) -> int:
    return 0x8000 + rank * 512 + rnd


def _round_ops(ops: List[ScheduleOp]) -> Tuple[ScheduleOp, ScheduleOp, bool]:
    """The canonical round shape: exactly one SEND, one RECV, <=1 REDUCE."""
    sends = [op for op in ops if op.kind is OpKind.SEND]
    recvs = [op for op in ops if op.kind is OpKind.RECV]
    reduces = [op for op in ops if op.kind is OpKind.REDUCE]
    if len(sends) != 1 or len(recvs) != 1 or len(reduces) > 1:
        raise ValueError(f"round shape unsupported by the generic engine: "
                         f"{[op.kind.value for op in ops]}")
    if reduces and (reduces[0].chunk != recvs[0].chunk
                    or reduces[0].nchunks != recvs[0].nchunks):
        raise ValueError("REDUCE must cover exactly the round's RECV block")
    return sends[0], recvs[0], bool(reduces)


# --------------------------------------------------------------------------
# Rank state
# --------------------------------------------------------------------------

class _ZooRank:
    """One rank's buffers for a generic schedule."""

    def __init__(self, node: Node, schedule: CollectiveSchedule, nbytes: int,
                 seed: int):
        if nbytes % (schedule.n_chunks * _F4.itemsize):
            raise ValueError(f"payload {nbytes}B must divide into "
                             f"{schedule.n_chunks} float32 chunks")
        self.node = node
        self.schedule = schedule
        self.rank = schedule.rank
        self.nbytes = nbytes
        self.chunk_bytes = nbytes // schedule.n_chunks
        self.vector = node.host.alloc(nbytes, name=f"{node.name}.zvec")
        rng = np.random.default_rng([seed, self.rank])
        self.vector.view(_F4)[:] = rng.random(nbytes // 4, dtype=np.float32)
        self.dest = (self.vector if schedule.in_place else
                     node.host.alloc(nbytes, name=f"{node.name}.zout"))
        self.rounds = [_round_ops(ops) for ops in schedule.rounds]
        # Per-round staging for reduce arrivals, per-round arrival words.
        self.staging = [
            node.host.alloc(recv.nchunks * self.chunk_bytes,
                            name=f"{node.name}.zstage{rnd}")
            if is_reduce else None
            for rnd, (_, recv, is_reduce) in enumerate(self.rounds)
        ]
        self.flags = node.host.alloc(4 * max(1, len(self.rounds)),
                                     name=f"{node.name}.zflags")
        if schedule.collective == "alltoall":
            # The self-chunk never crosses the wire.
            sl = slice(self.rank * self.chunk_bytes // 4,
                       (self.rank + 1) * self.chunk_bytes // 4)
            self.dest.view(_F4)[sl] = self.vector.view(_F4)[sl]

    def op_bytes(self, op: ScheduleOp) -> int:
        return op.nchunks * self.chunk_bytes

    def block_view(self, buf, op: ScheduleOp) -> np.ndarray:
        return buf.view(_F4, count=self.op_bytes(op) // 4,
                        offset=op.chunk * self.chunk_bytes)

    def landing_addr(self, rnd: int) -> int:
        """Where this rank's round-``rnd`` arrival lands (put target)."""
        _, recv, is_reduce = self.rounds[rnd]
        if is_reduce:
            return self.staging[rnd].addr()
        return self.dest.addr(recv.chunk * self.chunk_bytes)

    def reduce_round(self, rnd: int, agent: Agent, time: int) -> None:
        _, recv, _ = self.rounds[rnd]
        self.node.mem.record_read(time, agent, self.staging[rnd])
        self.block_view(self.vector, recv)[:] += self.staging[rnd].view(_F4)
        lo = recv.chunk * self.chunk_bytes
        self.node.mem.record_write(time, agent, self.vector,
                                   lo=lo, hi=lo + self.op_bytes(recv))

    def reduce_bytes(self, rnd: int) -> int:
        _, recv, _ = self.rounds[rnd]
        return 3 * self.op_bytes(recv)  # load block + load staging + store


def _check_pairing(states: List["_ZooRank"]) -> None:
    """Global schedule consistency: every SEND has a matching same-round
    RECV of the same size at its peer -- the invariant that lets senders
    write straight into the receiver's landing buffer."""
    n_rounds = {len(s.rounds) for s in states}
    if len(n_rounds) != 1:
        raise ValueError(f"ranks disagree on round count: {sorted(n_rounds)}")
    for st in states:
        for rnd, (send, _, _) in enumerate(st.rounds):
            _, peer_recv, _ = states[send.peer].rounds[rnd]
            if peer_recv.peer != st.rank:
                raise ValueError(
                    f"round {rnd}: rank {st.rank} sends to {send.peer}, "
                    f"which expects rank {peer_recv.peer}")
            if peer_recv.nchunks != send.nchunks:
                raise ValueError(f"round {rnd}: send/recv size mismatch "
                                 f"{send.nchunks} != {peer_recv.nchunks}")


# --------------------------------------------------------------------------
# Executors
# --------------------------------------------------------------------------

def _cpu_zoo(state: _ZooRank, peers: Dict[int, Node]):
    node, host = state.node, state.node.host
    for rnd, (send, recv, is_reduce) in enumerate(state.rounds):
        if is_reduce:
            handle = host.post_recv(_wire_tag(recv.peer, rnd),
                                    state.staging[rnd], state.op_bytes(recv))
        else:
            handle = host.post_recv(_wire_tag(recv.peer, rnd), state.dest,
                                    state.op_bytes(recv),
                                    offset=recv.chunk * state.chunk_bytes)
        yield from host.send(state.vector, state.op_bytes(send),
                             peers[send.peer].name,
                             _wire_tag(state.rank, rnd),
                             offset=send.chunk * state.chunk_bytes)
        yield from host.wait_recv(handle)
        if is_reduce:
            state.reduce_round(rnd, Agent.CPU, node.sim.now)
            yield node.sim.timeout(node.config.cpu.omp_region_ns)
            yield from host.compute_bytes(state.reduce_bytes(rnd),
                                          phase="reduce")
    return node.sim.now


def _zoo_reduce_kernel(state: _ZooRank, rnd: int, name: str):
    def kernel(ctx):
        yield ctx.fence_acquire_system(state.staging[rnd])
        if ctx.wg_id == 0:
            state.reduce_round(rnd, Agent.GPU, ctx.sim.now)
        yield ctx.compute_bytes(state.reduce_bytes(rnd) // ctx.n_workgroups)
        yield ctx.barrier()
        yield ctx.fence_release_system(state.vector)
    kernel.__name__ = name
    return kernel


def _hdn_zoo(state: _ZooRank, peers: Dict[int, Node]):
    node, host = state.node, state.node.host
    n_wg = node.config.gpu.compute_units
    for rnd, (send, recv, is_reduce) in enumerate(state.rounds):
        if is_reduce:
            handle = host.post_recv(_wire_tag(recv.peer, rnd),
                                    state.staging[rnd], state.op_bytes(recv))
        else:
            handle = host.post_recv(_wire_tag(recv.peer, rnd), state.dest,
                                    state.op_bytes(recv),
                                    offset=recv.chunk * state.chunk_bytes)
        yield from host.send(state.vector, state.op_bytes(send),
                             peers[send.peer].name,
                             _wire_tag(state.rank, rnd),
                             offset=send.chunk * state.chunk_bytes)
        yield from host.wait_recv(handle)
        if is_reduce:
            desc = KernelDescriptor(
                fn=_zoo_reduce_kernel(state, rnd, f"zoo-hdn-{rnd}"),
                n_workgroups=n_wg, name=f"zoo-hdn-{rnd}")
            inst = yield from host.launch_kernel(desc)
            # Later rounds may forward what this kernel just reduced.
            yield from host.wait_kernel(inst, mode="blocking")
    return node.sim.now


def _expose_round_flags(state: _ZooRank) -> None:
    for rnd, (_, recv, _) in enumerate(state.rounds):
        state.node.nic.expose_rx_flag(_wire_tag(recv.peer, rnd),
                                      (state.flags, 4 * rnd))


def _gds_zoo(state: _ZooRank, peers: Dict[int, Node]):
    node, host = state.node, state.node.host
    n_wg = node.config.gpu.compute_units
    _expose_round_flags(state)
    n_rounds = len(state.rounds)

    def stage_send(rnd: int):
        send, _, _ = state.rounds[rnd]
        peer_state: _ZooRank = peers[send.peer].host._zoo_state  # type: ignore[attr-defined]
        h = yield from host.put(state.vector, state.op_bytes(send),
                                peers[send.peer].name,
                                peer_state.landing_addr(rnd),
                                wire_tag=_wire_tag(state.rank, rnd),
                                offset=send.chunk * state.chunk_bytes,
                                deferred=True)
        return h

    staged = yield from stage_send(0)
    prev_kernel = None
    queued_bell = None  # newest doorbell routed through the GPU queue
    for rnd, (send, recv, is_reduce) in enumerate(state.rounds):
        # Same discipline as the ring gds executor: a direct doorbell must
        # never overtake one still queued behind a kernel, or sends leave
        # in the wrong round order.
        if prev_kernel is None and (queued_bell is None
                                    or queued_bell.rung.triggered):
            node.nic.ring_doorbell(staged)
        else:
            queued_bell = node.gpu.enqueue_doorbell(staged)
        if rnd + 1 < n_rounds:
            next_staged = yield from stage_send(rnd + 1)  # overlaps kernel
        yield from host.poll_flag(state.flags, offset=4 * rnd, at_least=1)
        if is_reduce:
            desc = KernelDescriptor(
                fn=_zoo_reduce_kernel(state, rnd, f"zoo-gds-{rnd}"),
                n_workgroups=n_wg, name=f"zoo-gds-{rnd}")
            prev_kernel = yield from host.launch_kernel(desc)
        else:
            prev_kernel = None
        if rnd + 1 < n_rounds:
            staged = next_staged
    if prev_kernel is not None:
        yield prev_kernel.finished
    return node.sim.now


def _gputn_zoo(state: _ZooRank, peers: Dict[int, Node]):
    """The whole collective in one persistent kernel (paper §5.4.1): poll
    the round flag, reduce, fire the next round's pre-armed put."""
    node, host = state.node, state.node.host
    _expose_round_flags(state)
    n_rounds = len(state.rounds)

    def kernel(ctx):
        rate = ctx.config.gpu.stream_bytes_per_ns
        yield ctx.fence_release_system(state.vector)
        yield ctx.store_trigger(_trig_tag(state.rank, 0))
        for rnd, (_, _, is_reduce) in enumerate(state.rounds):
            yield from ctx.poll_flag(state.flags, offset=4 * rnd, at_least=1)
            if is_reduce:
                yield ctx.fence_acquire_system(state.staging[rnd])
                state.reduce_round(rnd, Agent.GPU, ctx.sim.now)
                yield ctx.compute(int(state.reduce_bytes(rnd) / rate) + 1)
            else:
                yield ctx.fence_acquire_system(state.dest)
            if rnd + 1 < n_rounds:
                yield ctx.fence_release_system(state.vector)
                yield ctx.store_trigger(_trig_tag(state.rank, rnd + 1))

    def rearm():
        live: List = []
        for rnd, (send, _, _) in enumerate(state.rounds):
            peer_state: _ZooRank = peers[send.peer].host._zoo_state  # type: ignore[attr-defined]
            entry = yield from host.register_triggered_put(
                tag=_trig_tag(state.rank, rnd), threshold=1,
                buf=state.vector, nbytes=state.op_bytes(send),
                target=peers[send.peer].name,
                remote_addr=peer_state.landing_addr(rnd),
                wire_tag=_wire_tag(state.rank, rnd),
                offset=send.chunk * state.chunk_bytes)
            live.append(entry)
            # Respect the prototype's 16-entry trigger-list bound.
            while len(live) > 12:
                done = live.pop(0)
                yield node.nic.handle_for(done).local
                node.nic.trigger_list.free(done)
        for entry in live:
            yield node.nic.handle_for(entry).local
            node.nic.trigger_list.free(entry)

    rearm_proc = node.sim.spawn(rearm(), name=f"{node.name}.zoo-rearm")
    desc = KernelDescriptor(fn=kernel, n_workgroups=1,
                            args={"persistent": True},
                            name="zoo-gputn-persistent")
    inst = yield from host.launch_kernel(desc)
    yield AllOf(node.sim, [inst.finished, rearm_proc])
    return node.sim.now


_ZOO_EXECUTORS = {
    "cpu": _cpu_zoo,
    "hdn": _hdn_zoo,
    "gds": _gds_zoo,
    "gputn": _gputn_zoo,
}


# --------------------------------------------------------------------------
# NumPy oracle
# --------------------------------------------------------------------------

def schedule_reference(schedules: List[CollectiveSchedule],
                       vectors: List[np.ndarray]) -> List[np.ndarray]:
    """Interpret the schedules round-by-round globally in NumPy.

    Reproduces the executors' exact association order
    (``block = block + arrival``) so comparisons are bitwise.  Returns
    each rank's destination buffer (the vector itself for in-place
    schedules, the separate output for all-to-all).
    """
    n = len(schedules)
    n_chunks = schedules[0].n_chunks
    elems = vectors[0].size
    ch = elems // n_chunks
    vecs = [v.astype(_F4, copy=True) for v in vectors]
    in_place = schedules[0].in_place
    outs = vecs if in_place else [v.copy() for v in vectors]
    if not in_place:
        for r in range(n):
            outs[r][r * ch:(r + 1) * ch] = vecs[r][r * ch:(r + 1) * ch]
    rounds = [[_round_ops(ops) for ops in s.rounds] for s in schedules]
    for rnd in range(len(rounds[0])):
        # Snapshot every send first: a round's send reads pre-round state
        # (executors post the send before waiting on the round's arrival,
        # and send/recv blocks never overlap within a round).
        inflight = []
        for r in range(n):
            send, _, _ = rounds[r][rnd]
            sl = slice(send.chunk * ch, (send.chunk + send.nchunks) * ch)
            inflight.append((send.peer, vecs[r][sl].copy()))
        for r in range(n):
            peer, data = inflight[r]
            _, recv, is_reduce = rounds[peer][rnd]
            sl = slice(recv.chunk * ch, (recv.chunk + recv.nchunks) * ch)
            if is_reduce:
                vecs[peer][sl] = vecs[peer][sl] + data
            else:
                outs[peer][sl] = data
    return outs


def _semantic_reference(schedules: List[CollectiveSchedule],
                        vectors: List[np.ndarray]) -> List[np.ndarray]:
    """Order-free float64 reference for the collective's *meaning* -- a
    tolerance cross-check that the schedule interpreter and the schedules
    aren't wrong in the same way."""
    n = len(schedules)
    kind = schedules[0].collective
    ch = vectors[0].size // schedules[0].n_chunks
    if kind == "allreduce":
        total = np.sum([v.astype(np.float64) for v in vectors], axis=0)
        return [total] * n
    if kind == "allgather":
        out = np.concatenate([vectors[r][r * ch:(r + 1) * ch]
                              for r in range(n)]).astype(np.float64)
        return [out] * n
    if kind == "reduce_scatter":
        total = np.sum([v.astype(np.float64) for v in vectors], axis=0)
        outs = []
        for s in schedules:
            c = s.result_chunk
            outs.append(total[c * ch:(c + 1) * ch])
        return outs
    if kind == "alltoall":
        return [np.concatenate([vectors[s][r * ch:(r + 1) * ch]
                                for s in range(n)]).astype(np.float64)
                for r in range(n)]
    raise ValueError(f"unknown collective kind {kind!r}")


# --------------------------------------------------------------------------
# Experiment + entry point
# --------------------------------------------------------------------------

@dataclass
class CollectiveResult:
    schedule: str
    strategy: str
    topology: str
    n_nodes: int
    nbytes: int
    total_ns: int
    correct: bool
    n_rounds: int = 0
    memory_hazards: int = 0
    cpu_busy_ns: int = 0
    per_rank_ns: List[int] = field(default_factory=list)


class CollectiveExperiment(Experiment):
    """One schedule-zoo collective on one topology/backend.

    Parameters: ``schedule`` (a :data:`SCHEDULE_BUILDERS` name),
    ``strategy`` (cpu/hdn/gds/gputn), ``topology`` (a
    ``NetworkConfig.topology`` spec string), ``n_nodes``, ``nbytes``
    (padded to whole float32 chunks) and the data ``seed``.
    """

    name = "collective-zoo"
    defaults = {"schedule": "halving-doubling", "strategy": "gputn",
                "topology": "star", "n_nodes": 4, "nbytes": 64 * 1024,
                "seed": 11}

    @staticmethod
    def padded_nbytes(n_chunks: int, nbytes: int) -> int:
        quantum = n_chunks * _F4.itemsize
        return (nbytes + quantum - 1) // quantum * quantum

    def configure(self, params: Dict[str, Any],
                  config: SystemConfig) -> SystemConfig:
        from dataclasses import replace

        spec = params["topology"]
        if spec == config.network.topology:
            return config
        return config.with_(network=replace(config.network, topology=spec))

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        strategy = params["strategy"]
        if strategy not in _ZOO_EXECUTORS:
            raise KeyError(f"unknown strategy {strategy!r}; "
                           f"choose from {sorted(_ZOO_EXECUTORS)}")
        if params["schedule"] not in SCHEDULE_BUILDERS:
            raise KeyError(f"unknown schedule {params['schedule']!r}; "
                           f"choose from {sorted(SCHEDULE_BUILDERS)}")
        return Cluster(n_nodes=params["n_nodes"], config=config,
                       with_gpu=(strategy != "cpu"), trace=trace)

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        n_nodes = params["n_nodes"]
        builder = SCHEDULE_BUILDERS[params["schedule"]]
        schedules = [builder(r, n_nodes) for r in range(n_nodes)]
        nbytes = self.padded_nbytes(schedules[0].n_chunks, params["nbytes"])
        states = [_ZooRank(cluster[r], schedules[r], nbytes, params["seed"])
                  for r in range(n_nodes)]
        _check_pairing(states)
        initial = [s.vector.view(_F4).copy() for s in states]
        peers = {r: cluster[r] for r in range(n_nodes)}
        for r in range(n_nodes):
            cluster[r].host._zoo_state = states[r]  # type: ignore[attr-defined]
        executor = _ZOO_EXECUTORS[params["strategy"]]
        procs = [cluster.spawn(executor(states[r], peers),
                               name=f"zoo.{params['schedule']}."
                                    f"{params['strategy']}.{r}")
                 for r in range(n_nodes)]
        return {"procs": procs, "states": states, "schedules": schedules,
                "initial": initial, "nbytes": nbytes}

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        procs, states = ctx["procs"], ctx["states"]
        schedules = ctx["schedules"]
        expected = schedule_reference(schedules, ctx["initial"])
        semantic = _semantic_reference(schedules, ctx["initial"])
        ch = ctx["nbytes"] // schedules[0].n_chunks // 4
        correct = True
        for st, sched, exp, sem in zip(states, schedules, expected, semantic):
            got = st.dest.view(_F4)
            if sched.result_chunk >= 0:
                sl = slice(sched.result_chunk * ch,
                           (sched.result_chunk + 1) * ch)
                correct &= bool((got[sl] == exp[sl]).all())
                correct &= bool(np.allclose(got[sl], sem, rtol=1e-4))
            else:
                correct &= bool((got == exp).all())
                correct &= bool(np.allclose(got, sem, rtol=1e-4))
        result = CollectiveResult(
            schedule=params["schedule"], strategy=params["strategy"],
            topology=params["topology"], n_nodes=params["n_nodes"],
            nbytes=ctx["nbytes"], total_ns=max(p.value for p in procs),
            correct=correct, n_rounds=schedules[0].n_rounds,
            memory_hazards=cluster.total_hazards(),
            cpu_busy_ns=cluster.total_cpu_busy_ns(),
            per_rank_ns=[p.value for p in procs],
        )
        metrics = {
            "total_ns": result.total_ns,
            "correct": correct,
            "n_rounds": result.n_rounds,
            "cpu_busy_ns": result.cpu_busy_ns,
            "per_rank_ns": list(result.per_rank_ns),
            "padded_nbytes": result.nbytes,
        }
        return metrics, result


def run_collective(schedule: str = "halving-doubling",
                   strategy: str = "gputn", topology: str = "star",
                   n_nodes: int = 4, nbytes: int = 64 * 1024, seed: int = 11,
                   config: Optional[SystemConfig] = None) -> CollectiveResult:
    """Run one zoo collective and verify it against the NumPy oracle."""
    return CollectiveExperiment().execute(
        {"schedule": schedule, "strategy": strategy, "topology": topology,
         "n_nodes": n_nodes, "nbytes": nbytes, "seed": seed},
        config=config,
    ).raw
