"""NIC-offloaded collectives: broadcast and barrier from chained triggers.

Triggered operations were introduced "as a way to build efficient
sequences of operations that can be progressed by the NIC" and "have been
shown to be effective for implementing collective operations"
(paper Section 6, citing Underwood et al.).  This module builds the two
canonical offloaded collectives on this repository's NIC:

* :func:`nic_broadcast` -- a binomial-tree broadcast where every interior
  node's *forwarding puts are pre-registered triggered operations chained
  on the arrival itself* (``Nic.chain_rx_trigger``): after setup, the
  payload hops NIC-to-NIC with no CPU or GPU on the critical path.
* :func:`nic_barrier` -- a gather tree of zero-byte puts (each interior
  node's put to its parent fires when all children + its own entry have
  counted) followed by a chained zero-byte release broadcast.  Nodes may
  enter the barrier from the host *or from inside a GPU kernel* (a
  trigger store), which is how the paper suggests building "more complex
  semantics such as execution barriers" from its primitives (§4.2.5).

Both return per-node completion events and are verified end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cluster import Cluster
from repro.memory import Agent, Buffer
from repro.sim import Event

__all__ = ["BarrierHandles", "BroadcastHandles", "nic_barrier", "nic_broadcast"]


# --------------------------------------------------------------------------
# Binomial tree helpers
# --------------------------------------------------------------------------

def tree_children(rank: int, n: int) -> List[int]:
    """Binomial-tree children of ``rank`` in a 0-rooted tree of ``n``."""
    if not 0 <= rank < n:
        raise ValueError(f"rank {rank} outside tree of {n}")
    children = []
    mask = 1
    while mask < n:
        if rank & mask:
            break
        child = rank | mask
        if child < n:
            children.append(child)
        mask <<= 1
    return children


def tree_parent(rank: int) -> int:
    """Binomial-tree parent (undefined for rank 0)."""
    if rank == 0:
        raise ValueError("root has no parent")
    return rank & (rank - 1)


# --------------------------------------------------------------------------
# Broadcast
# --------------------------------------------------------------------------

@dataclass
class BroadcastHandles:
    """Per-node reception events for one offloaded broadcast."""

    root: int
    received: Dict[int, Event]
    buffers: Dict[int, Buffer]


def nic_broadcast(cluster: Cluster, payload: np.ndarray,
                  root: int = 0, wire_base: int = 0x3000,
                  trig_base: int = 0x6000) -> BroadcastHandles:
    """Set up and start a NIC-offloaded binomial broadcast of ``payload``.

    Every non-root node pre-registers triggered puts to its children,
    chained on its own arrival; the root's puts are posted immediately.
    Completion events fire as each node's copy lands.  Call
    ``cluster.run()`` (or run until the events) afterwards.
    """
    n = len(cluster)
    if not 0 <= root < n:
        raise ValueError(f"root {root} outside cluster of {n}")
    if root != 0:
        raise NotImplementedError("offload tree is 0-rooted; renumber ranks")
    data = np.ascontiguousarray(payload).view(np.uint8).reshape(-1)
    nbytes = data.size

    buffers: Dict[int, Buffer] = {}
    received: Dict[int, Event] = {}
    for r in range(n):
        buf = cluster[r].host.alloc(nbytes, name=f"bcast.{r}")
        buffers[r] = buf
        if r == root:
            cluster[r].host.cpu_write(buf, data)
            ev = cluster.sim.event(f"bcast-root")
            ev.succeed(0)
            received[r] = ev
        else:
            received[r] = cluster[r].nic.watch_rx(wire_base + r)

    # Pre-register forwarding on every interior non-root node, chained on
    # its own arrival.
    for r in range(1, n):
        children = tree_children(r, n)
        if not children:
            continue
        nic = cluster[r].nic
        for child in children:
            nic.register_triggered_put(
                tag=trig_base + child, threshold=1,
                local_addr=buffers[r].base, nbytes=nbytes,
                target=cluster[child].name,
                remote_addr=buffers[child].base,
                wire_tag=wire_base + child)
            nic.chain_rx_trigger(wire_base + r, trig_base + child)

    # Kick off: the root sends to its children directly.
    for child in tree_children(root, n):
        cluster[root].nic.post_put(buffers[root].base, nbytes,
                                   cluster[child].name, buffers[child].base,
                                   wire_tag=wire_base + child)
    return BroadcastHandles(root=root, received=received, buffers=buffers)


# --------------------------------------------------------------------------
# Barrier
# --------------------------------------------------------------------------

@dataclass
class BarrierHandles:
    """Per-node events for one offloaded barrier."""

    #: fires at a node when every node has entered (the release arrives)
    released: Dict[int, Event]
    #: the tag each node stores (from host or GPU kernel) to *enter*
    enter_tag: Dict[int, int]


def nic_barrier(cluster: Cluster, wire_base: int = 0x3800,
                trig_base: int = 0x7000) -> BarrierHandles:
    """Arm a NIC-offloaded barrier across the whole cluster.

    Gather: each interior node's zero-byte put to its parent fires when
    all of its children's puts have arrived *and* the node itself entered
    (one local trigger write).  Release: a chained zero-byte broadcast
    from the root.  Enter node ``r`` by storing ``enter_tag[r]`` to its
    NIC trigger address -- from the host or from a GPU kernel.
    """
    n = len(cluster)
    if n < 2:
        raise ValueError("barrier needs at least 2 nodes")
    released: Dict[int, Event] = {}
    enter_tag: Dict[int, int] = {}
    zero: Dict[int, Buffer] = {}
    for r in range(n):
        zero[r] = cluster[r].host.alloc(4, name=f"bar.{r}")

    up_tag = lambda r: wire_base + r          # gather arrivals at parent r
    down_tag = lambda r: wire_base + 0x400 + r  # release arrival at r

    for r in range(n):
        nic = cluster[r].nic
        children = tree_children(r, n)
        enter_tag[r] = trig_base + r
        if r == 0:
            # Root: when all children + self have counted, release every
            # child with one fan-out of zero-byte puts.
            threshold = len(children) + 1
            entry = nic.register_triggered_fanout(
                tag=enter_tag[r], threshold=threshold,
                puts=[{"local_addr": zero[r].base, "nbytes": 0,
                       "target": cluster[child].name,
                       "remote_addr": zero[child].base,
                       "wire_tag": down_tag(child)}
                      for child in children])
            nic.chain_rx_trigger(up_tag(r), enter_tag[r])
            # The root is released the moment its counter fires.
            ev = cluster.sim.event("bar-root-released")
            nic.fanout_handles(entry)[0].local.callbacks.append(
                lambda _e, ev=ev: ev.succeed(cluster.sim.now))
            released[r] = ev
        else:
            # Interior/leaf: put to parent once children + self counted.
            threshold = len(children) + 1
            parent = tree_parent(r)
            nic.register_triggered_put(
                tag=enter_tag[r], threshold=threshold,
                local_addr=zero[r].base, nbytes=0,
                target=cluster[parent].name, remote_addr=zero[parent].base,
                wire_tag=up_tag(parent))
            nic.chain_rx_trigger(up_tag(r), enter_tag[r])
            # Release: forward downward to children, chained on arrival.
            for child in children:
                nic.register_triggered_put(
                    tag=trig_base + 0x400 + child, threshold=1,
                    local_addr=zero[r].base, nbytes=0,
                    target=cluster[child].name, remote_addr=zero[child].base,
                    wire_tag=down_tag(child))
                nic.chain_rx_trigger(down_tag(r), trig_base + 0x400 + child)
            released[r] = nic.watch_rx(down_tag(r))
    return BarrierHandles(released=released, enter_tag=enter_tag)
