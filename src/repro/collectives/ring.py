"""Per-strategy executors for the ring Allreduce schedule (Figure 10).

All four executors run the *same* :func:`ring_allreduce_schedule` and
produce numerically identical results (asserted against a NumPy
ring-order reference); they differ only in who drives each subtask:

* **cpu**   -- two-sided sends + OpenMP-style reduction on the host;
* **hdn**   -- two-sided sends on the host, one reduce *kernel per
  round* (the kernel-boundary cost the paper hammers on);
* **gds**   -- pre-staged puts doorbelled behind each round's reduce
  kernel; the host polls arrivals between launches;
* **gputn** -- the whole collective inside one persistent kernel: poll,
  reduce, trigger -- with the CPU re-arming trigger entries off the
  critical path (paper Section 5.4.1).

Only reduce-scatter arrivals need staging (they are combined, not
replaced); allgather puts land directly in the destination chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster import Cluster, Node
from repro.collectives.schedule import OpKind, ring_allreduce_schedule
from repro.config import SystemConfig, default_config
from repro.gpu.kernel import KernelDescriptor
from repro.memory import Agent, Buffer
from repro.runtime import Experiment
from repro.sim import AllOf

__all__ = [
    "AllreduceExperiment",
    "AllreduceResult",
    "allreduce_reference",
    "run_ring_allreduce",
]

_F4 = np.dtype(np.float32)


# --------------------------------------------------------------------------
# Rank state
# --------------------------------------------------------------------------

class _RingRank:
    """One rank's buffers and numeric helpers."""

    def __init__(self, node: Node, rank: int, n_ranks: int, nbytes: int, seed: int):
        if nbytes % (n_ranks * _F4.itemsize):
            raise ValueError(
                f"payload {nbytes}B must divide into {n_ranks} float32 chunks")
        self.node = node
        self.rank = rank
        self.n_ranks = n_ranks
        self.nbytes = nbytes
        self.chunk_bytes = nbytes // n_ranks
        self.schedule = ring_allreduce_schedule(rank, n_ranks)
        self.vector = node.host.alloc(nbytes, name=f"{node.name}.vec")
        rng = np.random.default_rng([seed, rank])
        self.vector.view(_F4)[:] = rng.random(nbytes // 4, dtype=np.float32)
        # Parity staging for reduce-scatter arrivals + one arrival counter.
        self.staging = [node.host.alloc(self.chunk_bytes, name=f"{node.name}.stage{p}")
                        for p in (0, 1)]
        self.flag = node.host.alloc(4, name=f"{node.name}.arrivals")

    def chunk_view(self, c: int) -> np.ndarray:
        return self.vector.view(_F4, count=self.chunk_bytes // 4,
                                offset=c * self.chunk_bytes)

    def chunk_addr(self, c: int) -> int:
        return self.vector.addr(c * self.chunk_bytes)

    def reduce_from_staging(self, c: int, parity: int, agent: Agent, time: int) -> None:
        self.node.mem.record_read(time, agent, self.staging[parity])
        self.chunk_view(c)[:] += self.staging[parity].view(_F4)
        self.node.mem.record_write(time, agent, self.vector,
                                   lo=c * self.chunk_bytes,
                                   hi=(c + 1) * self.chunk_bytes)

    def reduce_slice(self, c: int, parity: int, lo: int, hi: int,
                     agent: Agent, time: int) -> None:
        """Combine elements [lo, hi) of the staged chunk (GPU-TN pipelining)."""
        self.node.mem.record_read(time, agent, self.staging[parity])
        self.chunk_view(c)[lo:hi] += self.staging[parity].view(_F4)[lo:hi]
        base = c * self.chunk_bytes
        self.node.mem.record_write(time, agent, self.vector,
                                   lo=base + 4 * lo, hi=base + 4 * hi)

    def slice_bounds(self, n_slices: int) -> List[Tuple[int, int]]:
        """Element ranges for work-group-granularity chunk slicing; the
        remainder spreads over the leading slices, so ragged chunks still
        pipeline."""
        n_elems = self.chunk_bytes // _F4.itemsize
        n_slices = max(1, min(n_slices, n_elems))
        base, rem = divmod(n_elems, n_slices)
        bounds, lo = [], 0
        for s in range(n_slices):
            hi = lo + base + (1 if s < rem else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def reduce_bytes(self) -> int:
        # load chunk + load staging + store chunk
        return 3 * self.chunk_bytes


def _wire_tag(src_rank: int) -> int:
    return 0x600 + src_rank


def _trig_tag(rank: int, rnd: int) -> int:
    return 0x4000 + rank * 256 + rnd


# --------------------------------------------------------------------------
# Executors
# --------------------------------------------------------------------------

def _cpu_rank(state: _RingRank, peers: Dict[int, Node], iters_unused=None):
    node, host = state.node, state.node.host
    right = (state.rank + 1) % state.n_ranks
    left = (state.rank - 1) % state.n_ranks
    for rnd, ops in enumerate(state.schedule.rounds):
        parity = rnd & 1
        send = next(op for op in ops if op.kind is OpKind.SEND)
        recv = next(op for op in ops if op.kind is OpKind.RECV)
        is_reduce = any(op.kind is OpKind.REDUCE for op in ops)
        if is_reduce:
            handle = host.post_recv(_wire_tag(left), state.staging[parity],
                                    state.chunk_bytes)
        else:
            handle = host.post_recv(_wire_tag(left), state.vector,
                                    state.chunk_bytes,
                                    offset=recv.chunk * state.chunk_bytes)
        yield from host.send(state.vector, state.chunk_bytes, peers[right].name,
                             _wire_tag(state.rank),
                             offset=send.chunk * state.chunk_bytes)
        yield from host.wait_recv(handle)
        if is_reduce:
            state.reduce_from_staging(recv.chunk, parity, Agent.CPU, node.sim.now)
            yield node.sim.timeout(node.config.cpu.omp_region_ns)
            yield from host.compute_bytes(state.reduce_bytes(), phase="reduce")
    return node.sim.now


def _reduce_kernel_factory(state: _RingRank, chunk: int, parity: int, name: str):
    def kernel(ctx):
        yield ctx.fence_acquire_system(state.staging[parity])
        if ctx.wg_id == 0:
            state.reduce_from_staging(chunk, parity, Agent.GPU, ctx.sim.now)
        yield ctx.compute_bytes(state.reduce_bytes() // ctx.n_workgroups)
        yield ctx.barrier()
        yield ctx.fence_release_system(state.vector)
    kernel.__name__ = name
    return kernel


def _hdn_rank(state: _RingRank, peers: Dict[int, Node], iters_unused=None):
    node, host = state.node, state.node.host
    right = (state.rank + 1) % state.n_ranks
    left = (state.rank - 1) % state.n_ranks
    n_wg = node.config.gpu.compute_units
    for rnd, ops in enumerate(state.schedule.rounds):
        parity = rnd & 1
        send = next(op for op in ops if op.kind is OpKind.SEND)
        recv = next(op for op in ops if op.kind is OpKind.RECV)
        is_reduce = any(op.kind is OpKind.REDUCE for op in ops)
        if is_reduce:
            handle = host.post_recv(_wire_tag(left), state.staging[parity],
                                    state.chunk_bytes)
        else:
            handle = host.post_recv(_wire_tag(left), state.vector,
                                    state.chunk_bytes,
                                    offset=recv.chunk * state.chunk_bytes)
        yield from host.send(state.vector, state.chunk_bytes, peers[right].name,
                             _wire_tag(state.rank),
                             offset=send.chunk * state.chunk_bytes)
        yield from host.wait_recv(handle)
        if is_reduce:
            desc = KernelDescriptor(
                fn=_reduce_kernel_factory(state, recv.chunk, parity,
                                          f"ar-hdn-{rnd}"),
                n_workgroups=n_wg, name=f"ar-hdn-{rnd}")
            inst = yield from host.launch_kernel(desc)
            # Next round sends the chunk this kernel just reduced, so the
            # application stream-synchronizes before the MPI send.
            yield from host.wait_kernel(inst, mode="blocking")
    return node.sim.now


def _gds_rank(state: _RingRank, peers: Dict[int, Node], iters_unused=None):
    node, host = state.node, state.node.host
    right = (state.rank + 1) % state.n_ranks
    left = (state.rank - 1) % state.n_ranks
    n_wg = node.config.gpu.compute_units
    peer_state: _RingRank = peers[right].host._ring_state  # type: ignore[attr-defined]
    node.nic.expose_rx_flag(_wire_tag(left), (state.flag, 0))

    def stage_send(rnd: int):
        send = next(op for op in state.schedule.rounds[rnd]
                    if op.kind is OpKind.SEND)
        is_reduce_rnd = rnd < state.n_ranks - 1
        if is_reduce_rnd:
            remote = peer_state.staging[rnd & 1].addr()
        else:
            # Allgather: land directly in the peer's destination chunk.
            remote = peer_state.chunk_addr(send.chunk)
        h = yield from host.put(state.vector, state.chunk_bytes, peers[right].name,
                                remote, wire_tag=_wire_tag(state.rank),
                                offset=send.chunk * state.chunk_bytes,
                                deferred=True)
        return h

    n_rounds = len(state.schedule.rounds)
    staged = yield from stage_send(0)
    prev_kernel = None
    queued_bell = None  # newest doorbell routed through the GPU queue
    for rnd in range(n_rounds):
        parity = rnd & 1
        is_reduce = rnd < state.n_ranks - 1
        # Ring this round's send behind the kernel that produced its chunk.
        # A direct ring must never overtake a doorbell still sitting in the
        # command queue (possible when bursty arrivals -- e.g. retransmit
        # recovery -- let the host race ahead of a backed-up GPU): sends
        # would leave in the wrong round order and the receiver's arrival
        # counter would gate on the wrong round's data.
        if prev_kernel is None and (queued_bell is None
                                    or queued_bell.rung.triggered):
            node.nic.ring_doorbell(staged)
        else:
            queued_bell = node.gpu.enqueue_doorbell(staged)
        if rnd + 1 < n_rounds:
            next_staged = yield from stage_send(rnd + 1)  # overlaps kernel
        # No kernel synchronize: doorbells are ordered by the command
        # queue; the host only gates on this round's arrival.
        yield from host.poll_flag(state.flag, at_least=rnd + 1)
        if is_reduce:
            recv = next(op for op in state.schedule.rounds[rnd]
                        if op.kind is OpKind.RECV)
            desc = KernelDescriptor(
                fn=_reduce_kernel_factory(state, recv.chunk, parity,
                                          f"ar-gds-{rnd}"),
                n_workgroups=n_wg, name=f"ar-gds-{rnd}")
            prev_kernel = yield from host.launch_kernel(desc)
        else:
            prev_kernel = None
        if rnd + 1 < n_rounds:
            staged = next_staged
    if prev_kernel is not None:
        yield prev_kernel.finished
    return node.sim.now


def _gputn_rank(state: _RingRank, peers: Dict[int, Node], iters_unused=None):
    """The entire collective inside one persistent kernel (paper §5.4.1).

    Each chunk is split into work-group-granularity *slices*; a slice's
    put is triggered as soon as that slice is reduced, so wire time and
    reduction pipeline against each other ("this allows for easy software
    pipelining of the computation and network transfer").
    """
    node, host = state.node, state.node.host
    right = (state.rank + 1) % state.n_ranks
    left = (state.rank - 1) % state.n_ranks
    peer_state: _RingRank = peers[right].host._ring_state  # type: ignore[attr-defined]
    node.nic.expose_rx_flag(_wire_tag(left), (state.flag, 0))
    n_rounds = len(state.schedule.rounds)
    # Work-group-granularity slicing of each chunk (ragged chunks still
    # split: the remainder spreads over the leading slices).
    bounds = state.slice_bounds(4)
    n_slices = len(bounds)

    def trig_tag(rnd: int, s: int) -> int:
        return 0x4000 + state.rank * 1024 + rnd * n_slices + s

    def kernel(ctx):
        rate = ctx.config.gpu.stream_bytes_per_ns
        # Round 0's chunk is ready at kernel start: trigger all slices.
        yield ctx.fence_release_system(state.vector)
        for s in range(n_slices):
            yield ctx.store_trigger(trig_tag(0, s))
        for rnd in range(n_rounds):
            is_reduce = rnd < state.n_ranks - 1
            recv = next(op for op in state.schedule.rounds[rnd]
                        if op.kind is OpKind.RECV)
            parity = rnd & 1
            for s, (lo, hi) in enumerate(bounds):
                yield from ctx.poll_flag(state.flag,
                                         at_least=rnd * n_slices + s + 1)
                if is_reduce:
                    yield ctx.fence_acquire_system(state.staging[parity])
                    state.reduce_slice(recv.chunk, parity, lo, hi,
                                       Agent.GPU, ctx.sim.now)
                    yield ctx.compute(int(3 * 4 * (hi - lo) / rate) + 1)
                else:
                    yield ctx.fence_acquire_system(state.vector)
                if rnd + 1 < n_rounds:
                    yield ctx.fence_release_system(state.vector)
                    yield ctx.store_trigger(trig_tag(rnd + 1, s))

    def rearm():
        live: List = []
        for rnd in range(n_rounds):
            send = next(op for op in state.schedule.rounds[rnd]
                        if op.kind is OpKind.SEND)
            is_reduce_rnd = rnd < state.n_ranks - 1
            for s, (lo, hi) in enumerate(bounds):
                off_bytes, n_bytes = 4 * lo, 4 * (hi - lo)
                if is_reduce_rnd:
                    remote = peer_state.staging[rnd & 1].addr(off_bytes)
                else:
                    remote = peer_state.chunk_addr(send.chunk) + off_bytes
                entry = yield from host.register_triggered_put(
                    tag=trig_tag(rnd, s), threshold=1,
                    buf=state.vector, nbytes=n_bytes,
                    target=peers[right].name, remote_addr=remote,
                    wire_tag=_wire_tag(state.rank),
                    offset=send.chunk * state.chunk_bytes + off_bytes)
                live.append(entry)
                # Respect the prototype's 16-entry bound.
                while len(live) > 12:
                    done = live.pop(0)
                    yield node.nic.handle_for(done).local
                    node.nic.trigger_list.free(done)
        for entry in live:
            yield node.nic.handle_for(entry).local
            node.nic.trigger_list.free(entry)

    rearm_proc = node.sim.spawn(rearm(), name=f"{node.name}.ar-rearm")
    desc = KernelDescriptor(fn=kernel, n_workgroups=1,
                            args={"persistent": True},
                            name="ar-gputn-persistent")
    inst = yield from host.launch_kernel(desc)
    yield AllOf(node.sim, [inst.finished, rearm_proc])
    return node.sim.now


_EXECUTORS = {
    "cpu": _cpu_rank,
    "hdn": _hdn_rank,
    "gds": _gds_rank,
    "gputn": _gputn_rank,
}


# --------------------------------------------------------------------------
# Reference + entry point
# --------------------------------------------------------------------------

def allreduce_reference(vectors: List[np.ndarray], n_ranks: int) -> np.ndarray:
    """Bitwise reference: replay the ring reduce order in NumPy.

    Chunk ``c`` accumulates contributions in ring order starting from rank
    ``(c + 1) mod P``, which is what every executor reproduces.
    """
    n = vectors[0].size
    chunk = n // n_ranks
    out = np.empty(n, dtype=_F4)
    for c in range(n_ranks):
        sl = slice(c * chunk, (c + 1) * chunk)
        # Rank c sends v_c; rank c+1 computes v_{c+1} + v_c; rank c+k
        # computes v_{c+k} + acc.  Replaying the exact association order
        # makes the check bitwise, not approximate.
        acc = vectors[(c + 1) % n_ranks][sl] + vectors[c][sl]
        for k in range(2, n_ranks):
            acc = vectors[(c + k) % n_ranks][sl] + acc
        out[sl] = acc
    return out


@dataclass
class AllreduceResult:
    strategy: str
    n_nodes: int
    nbytes: int
    total_ns: int
    correct: bool
    memory_hazards: int = 0
    cpu_busy_ns: int = 0
    per_rank_ns: List[int] = field(default_factory=list)


class AllreduceExperiment(Experiment):
    """One ring Allreduce as a runtime experiment (Figure 10's unit).

    Parameters: ``strategy``, ``n_nodes``, ``nbytes`` (padded up to a
    whole number of float32 chunks, as an MPI implementation would do
    internally for ragged divisions) and the data ``seed``.
    """

    name = "ring-allreduce"
    defaults = {"strategy": "gputn", "n_nodes": 4,
                "nbytes": 8 * 1024 * 1024, "seed": 11}

    @staticmethod
    def padded_nbytes(n_nodes: int, nbytes: int) -> int:
        quantum = n_nodes * _F4.itemsize
        return (nbytes + quantum - 1) // quantum * quantum

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        strategy = params["strategy"]
        if strategy not in _EXECUTORS:
            raise KeyError(f"unknown strategy {strategy!r}; "
                           f"choose from {sorted(_EXECUTORS)}")
        return Cluster(n_nodes=params["n_nodes"], config=config,
                       with_gpu=(strategy != "cpu"), trace=trace)

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        strategy, n_nodes = params["strategy"], params["n_nodes"]
        nbytes = self.padded_nbytes(n_nodes, params["nbytes"])
        states = [_RingRank(cluster[r], r, n_nodes, nbytes, params["seed"])
                  for r in range(n_nodes)]
        initial = [s.vector.view(_F4).copy() for s in states]
        peers = {r: cluster[r] for r in range(n_nodes)}
        for r in range(n_nodes):
            cluster[r].host._ring_state = states[r]  # type: ignore[attr-defined]

        executor = _EXECUTORS[strategy]
        procs = [cluster.spawn(executor(states[r], peers),
                               name=f"allreduce.{strategy}.{r}")
                 for r in range(n_nodes)]
        return {"procs": procs, "states": states, "initial": initial,
                "nbytes": nbytes}

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]):
        procs, states = ctx["procs"], ctx["states"]
        n_nodes = params["n_nodes"]
        expected = allreduce_reference(ctx["initial"], n_nodes)
        correct = all((s.vector.view(_F4) == expected).all() for s in states)
        result = AllreduceResult(
            strategy=params["strategy"], n_nodes=n_nodes,
            nbytes=ctx["nbytes"],
            total_ns=max(p.value for p in procs), correct=correct,
            memory_hazards=cluster.total_hazards(),
            cpu_busy_ns=cluster.total_cpu_busy_ns(),
            per_rank_ns=[p.value for p in procs],
        )
        metrics = {
            "total_ns": result.total_ns,
            "correct": correct,
            "cpu_busy_ns": result.cpu_busy_ns,
            "per_rank_ns": list(result.per_rank_ns),
            "padded_nbytes": result.nbytes,
        }
        return metrics, result


def run_ring_allreduce(config: Optional[SystemConfig] = None,
                       strategy: str = "gputn", n_nodes: int = 4,
                       nbytes: int = 8 * 1024 * 1024,
                       seed: int = 11) -> AllreduceResult:
    """Run one 8 MB-class ring Allreduce and verify the result."""
    return AllreduceExperiment().execute(
        {"strategy": strategy, "n_nodes": n_nodes, "nbytes": nbytes,
         "seed": seed},
        config=config,
    ).raw
