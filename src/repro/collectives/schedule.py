"""Collective schedule IR (libNBC-style) and the ring Allreduce builder.

A :class:`CollectiveSchedule` is a per-rank list of *rounds*; each round
is a list of :class:`ScheduleOp` that may proceed concurrently, and a
round only starts when the previous round's operations have completed.
This is exactly libNBC's schedule abstraction, which the paper highlights
as mapping "perfectly to the triggered operation semantics in GPU-TN".

The ring Allreduce (paper Figure 2) is built as the classic two-phase
algorithm over ``P`` ranks and ``P`` equal chunks:

* **reduce-scatter** (P-1 rounds): in round ``s`` rank ``r`` sends chunk
  ``(r - s) mod P`` right and reduces the arriving chunk
  ``(r - s - 1) mod P`` into its accumulator;
* **allgather** (P-1 rounds): the reduced chunks circulate once more.

After both phases every rank holds the full reduction -- verified
numerically by the executors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

__all__ = ["CollectiveSchedule", "OpKind", "ScheduleOp", "ring_allreduce_schedule"]


class OpKind(str, enum.Enum):
    SEND = "send"      # transmit a chunk to `peer`
    RECV = "recv"      # await a chunk from `peer`
    REDUCE = "reduce"  # combine the received chunk into the accumulator


@dataclass(frozen=True)
class ScheduleOp:
    """One subtask in a round."""

    kind: OpKind
    chunk: int          # first chunk index within the payload
    peer: int           # partner rank (-1 for local ops)
    round: int          # round index within the schedule
    #: Contiguous run length starting at ``chunk`` -- schedules that move
    #: whole blocks (recursive doubling, halving-doubling) say so here
    #: instead of emitting one op per chunk.
    nchunks: int = 1

    def __post_init__(self) -> None:
        if self.chunk < 0:
            raise ValueError("negative chunk index")
        if self.nchunks < 1:
            raise ValueError("nchunks must be >=1")


@dataclass(frozen=True)
class CollectiveSchedule:
    """All rounds for one rank.

    ``n_chunks`` is the chunk granularity the ops index into (defaults to
    ``n_ranks``, the ring convention).  ``in_place`` schedules land
    non-reduce receives directly in the payload vector; ``in_place=False``
    (all-to-all) lands them in a separate output buffer.  ``result_chunk``
    names the single chunk holding this rank's result for scatter-style
    collectives (-1: the whole destination buffer is the result).
    """

    rank: int
    n_ranks: int
    rounds: List[List[ScheduleOp]]
    collective: str = "allreduce"
    n_chunks: int = -1          # -1: defaulted to n_ranks in __post_init__
    in_place: bool = True
    result_chunk: int = -1

    def __post_init__(self) -> None:
        if self.n_chunks == -1:
            object.__setattr__(self, "n_chunks", self.n_ranks)
        if self.n_chunks < 1:
            raise ValueError(f"n_chunks must be >=1, got {self.n_chunks}")

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def sends(self) -> List[ScheduleOp]:
        return [op for rnd in self.rounds for op in rnd if op.kind is OpKind.SEND]

    def recvs(self) -> List[ScheduleOp]:
        return [op for rnd in self.rounds for op in rnd if op.kind is OpKind.RECV]


def ring_allreduce_schedule(rank: int, n_ranks: int) -> CollectiveSchedule:
    """The 2(P-1)-round ring Allreduce schedule for one rank."""
    if n_ranks < 2:
        raise ValueError(f"allreduce needs >=2 ranks, got {n_ranks}")
    if not 0 <= rank < n_ranks:
        raise ValueError(f"rank {rank} outside [0, {n_ranks})")
    right = (rank + 1) % n_ranks
    left = (rank - 1) % n_ranks
    rounds: List[List[ScheduleOp]] = []

    # Phase 1: reduce-scatter.
    for s in range(n_ranks - 1):
        send_chunk = (rank - s) % n_ranks
        recv_chunk = (rank - s - 1) % n_ranks
        rounds.append([
            ScheduleOp(OpKind.SEND, send_chunk, right, s),
            ScheduleOp(OpKind.RECV, recv_chunk, left, s),
            ScheduleOp(OpKind.REDUCE, recv_chunk, -1, s),
        ])

    # Phase 2: allgather.  After reduce-scatter, rank r owns the fully
    # reduced chunk (r + 1) mod P.
    for s in range(n_ranks - 1):
        rnd = n_ranks - 1 + s
        send_chunk = (rank + 1 - s) % n_ranks
        recv_chunk = (rank - s) % n_ranks
        rounds.append([
            ScheduleOp(OpKind.SEND, send_chunk, right, rnd),
            ScheduleOp(OpKind.RECV, recv_chunk, left, rnd),
        ])

    return CollectiveSchedule(rank=rank, n_ranks=n_ranks, rounds=rounds)
