"""System configuration — the reproduction of the paper's Table 2.

Every timing constant used anywhere in the simulator lives here, expressed
in integer nanoseconds (or bytes, or counts).  The defaults reproduce the
paper's simulated node:

=====================  =========================================
CPU                    8-wide OoO, 4 GHz, 8 cores
I/D-cache              64 KB, 2-way, 2 cycles
L2                     2 MB, 8-way, 4 cycles
L3                     16 MB, 16-way, 20 cycles
System memory          DDR4, 8 channels, 2133 MHz
GPU                    1 GHz, 24 compute units
GPU D-cache            16 kB, 64 B line, 16-way, 25 cycles
GPU I-cache            32 kB, 64 B line, 8-way, 25 cycles
GPU L2                 768 kB, 64 B line, 16-way, 150 cycles
Kernel latencies       1.5 us launch / 1.5 us teardown
Network                100 ns link, 100 ns switch, 100 Gbps, star
=====================  =========================================

The secondary constants (packet-construction cost, doorbell propagation,
fence costs, ...) are calibrated so the Figure 8 microbenchmark
decomposition lands on the paper's published spans (1.50 / 0.49 / 1.49 us
for GPU-TN; target completion 2.71 us GPU-TN, 3.76 us GDS, 4.21 us HDN).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

__all__ = [
    "CacheConfig",
    "CpuConfig",
    "FaultConfig",
    "GpuConfig",
    "KernelLatencyConfig",
    "LinkFlap",
    "MemoryConfig",
    "NetworkConfig",
    "NicConfig",
    "NicStall",
    "QueueConfig",
    "ReliabilityConfig",
    "SystemConfig",
    "default_config",
    "US",
    "MS",
    "KB",
    "MB",
    "GB",
]

# Unit helpers (times in ns, sizes in bytes).
US = 1_000
MS = 1_000_000
KB = 1_024
MB = 1_024 * 1_024
GB = 1_024 * 1_024 * 1_024

CACHE_LINE = 64


@dataclass(frozen=True)
class CacheConfig:
    """One level of cache: geometry plus access latency."""

    size_bytes: int
    assoc: int
    latency_cycles: int
    line_bytes: int = CACHE_LINE

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.latency_cycles < 0:
            raise ValueError(f"invalid cache config {self}")
        if self.size_bytes % (self.line_bytes * self.assoc) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.assoc}-way sets of {self.line_bytes}B lines"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


@dataclass(frozen=True)
class CpuConfig:
    """Host CPU: Table 2 top block plus software-path cost calibration."""

    freq_ghz: float = 4.0
    cores: int = 8
    issue_width: int = 8
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(64 * KB, 2, 2))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(64 * KB, 2, 2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(2 * MB, 8, 4))
    l3: CacheConfig = field(default_factory=lambda: CacheConfig(16 * MB, 16, 20))

    # Software path costs (ns).  Calibrated; see module docstring.
    packet_build_ns: int = 300          # build an RDMA command packet
    send_post_ns: int = 100             # ring NIC doorbell from the CPU
    recv_match_ns: int = 150            # two-sided receive matching
    kernel_dispatch_sw_ns: int = 400    # user-runtime work to enqueue a kernel
    completion_poll_ns: int = 50        # one poll iteration on a flag
    mpi_progress_ns: int = 200          # one pass of the MPI progress engine
    omp_region_ns: int = 2000           # OpenMP parallel-region fork/join
    # Blocking kernel-completion sync (interrupt + scheduler wakeup), the
    # cost an application pays per cudaStreamSynchronize-style wait.
    # Latency-critical code spins on a flag instead (completion_poll_ns).
    kernel_sync_block_ns: int = 10_000
    # Effective streaming-traffic throughput of the whole CPU (bytes/ns).
    # ~40% of the DDR4-2133 8-channel peak: STREAM-style efficiency for
    # multi-threaded, multi-stream OpenMP kernels.
    stream_bytes_per_ns: float = 55.0

    def cycles_to_ns(self, cycles: int) -> int:
        return max(0, round(cycles / self.freq_ghz))


@dataclass(frozen=True)
class GpuConfig:
    """GPU: Table 2 middle block plus kernel-side cost calibration."""

    freq_ghz: float = 1.0
    compute_units: int = 24
    wavefront_size: int = 64
    max_workgroups_per_cu: int = 8
    lds_bytes_per_cu: int = 64 * KB
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(16 * KB, 16, 25))
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * KB, 8, 25))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(768 * KB, 16, 150))

    # Kernel-side operation costs (ns).
    workgroup_barrier_ns: int = 50
    fence_system_ns: int = 200          # system-scope release/acquire fence
    atomic_system_store_ns: int = 100   # system-scope atomic store issue
    global_load_ns: int = 150           # L2-missing global memory access
    poll_interval_ns: int = 100         # spin-poll period on a flag
    # Aggregate streaming-traffic throughput for element-wise kernels
    # (bytes/ns): GPUs hide latency well and extract ~95% of the shared
    # DDR4 bandwidth; the GPU's edge over the CPU is efficiency, not a
    # separate memory system (the node is an APU).
    stream_bytes_per_ns: float = 130.0

    def cycles_to_ns(self, cycles: int) -> int:
        return max(0, round(cycles / self.freq_ghz))


@dataclass(frozen=True)
class KernelLatencyConfig:
    """Hardware dispatch overheads (Table 2: 1.5 us launch / 1.5 us teardown)."""

    launch_ns: int = 1500
    teardown_ns: int = 1500

    def __post_init__(self) -> None:
        if self.launch_ns < 0 or self.teardown_ns < 0:
            raise ValueError("kernel latencies must be non-negative")


@dataclass(frozen=True)
class MemoryConfig:
    """System DRAM: DDR4-2133, 8 channels."""

    channels: int = 8
    freq_mhz: int = 2133
    # Effective peak bandwidth: 8 ch x 8 B x 2133 MT/s ~ 136 GB/s.
    bytes_per_ns: float = 136.0
    latency_ns: int = 60


@dataclass(frozen=True)
class NicConfig:
    """NIC model: Portals-4-like command processing plus GPU-TN extensions."""

    # Time for a posted MMIO write from an agent to land in the NIC FIFO.
    doorbell_mmio_ns: int = 150
    # Command-processor time to decode and start one network operation.
    command_process_ns: int = 100
    # DMA engine setup per operation (read descriptor, program engine).
    dma_setup_ns: int = 100
    # Trigger machinery.
    trigger_fifo_depth: int = 4096
    max_trigger_entries: int = 16        # Section 3.3: prototype bound
    trigger_lookup_ns: int = 20          # associative lookup (default impl)
    trigger_lookup: str = "associative"  # or "linked-list" / "hash"
    # Completion write-back to a host/GPU-visible flag.
    completion_write_ns: int = 100


@dataclass(frozen=True)
class NetworkConfig:
    """Fabric: single-switch star, Table 2 bottom block."""

    link_latency_ns: int = 100
    switch_latency_ns: int = 100
    bandwidth_gbps: float = 100.0
    mtu_bytes: int = 4096
    topology: str = "star"

    @property
    def bytes_per_ns(self) -> float:
        # 100 Gbps = 12.5 GB/s = 12.5 bytes/ns.
        return self.bandwidth_gbps / 8.0

    def serialization_ns(self, nbytes: int) -> int:
        """Wire serialization time for ``nbytes`` at line rate."""
        if nbytes < 0:
            raise ValueError("negative message size")
        return int(round(nbytes / self.bytes_per_ns))


#: Reliable-transport ARQ modes (:class:`ReliabilityConfig.mode`).
TRANSPORT_MODES = ("go-back-n", "selective-repeat")


@dataclass(frozen=True)
class ReliabilityConfig:
    """NIC reliable-transport engine (go-back-N or selective-repeat ARQ).

    Deliberately *not* a :class:`SystemConfig` section: the golden
    RunRecord fixtures fingerprint the whole SystemConfig tree, and the
    reliability layer must be a pure add-on -- absent by default, armed
    explicitly per cluster (:meth:`repro.cluster.Cluster.enable_reliability`
    or :meth:`repro.nic.Nic.enable_reliability`).
    """

    #: Send window per destination peer (outstanding messages).
    window: int = 8
    #: Wire size of ACK/NACK control packets (they consume real bandwidth).
    ack_bytes: int = 32
    #: Base retransmit timeout; doubles per retry (exponential backoff).
    retransmit_timeout_ns: int = 20_000
    #: Backoff multiplier applied per consecutive retry round.
    backoff_factor: int = 2
    #: Retry budget: after this many timeout/NACK-driven rounds without
    #: progress, the peer link is declared dead and every outstanding and
    #: future send to it fails with a structured ``TransportError``.
    max_retries: int = 8
    #: ARQ engine: ``"go-back-n"`` (whole-window resend, cumulative ACKs)
    #: or ``"selective-repeat"`` (per-packet retransmit, receiver reorder
    #: buffer, SACK-style cumulative+bitmap ACKs).
    mode: str = "go-back-n"
    #: Congestion-window pacing (selective-repeat only): AIMD window
    #: limiting that halves on ECN echo / timeout and grows additively on
    #: clean cumulative ACKs.  Off by default -- the full ``window`` is
    #: always usable, matching the pre-pacing transports.
    pacing: bool = False
    #: AIMD floor: the congestion window never shrinks below this.
    cwnd_floor: int = 1
    #: AIMD ceiling: 0 means "use ``window``" (the window is the cap).
    cwnd_ceiling: int = 0
    #: Max uniform jitter added to each armed retransmit timeout, drawn
    #: from a dedicated seeded ``repro.sim.rng`` substream
    #: (``transport.backoff.<node>``) so arming faults or background
    #: traffic can never perturb retransmit timing.  0 (the default)
    #: never draws -- timing is bit-identical to the pre-jitter engine.
    backoff_jitter_ns: int = 0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.retransmit_timeout_ns <= 0:
            raise ValueError("retransmit_timeout_ns must be positive")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_bytes < 0:
            raise ValueError("ack_bytes must be >= 0")
        if self.mode not in TRANSPORT_MODES:
            raise ValueError(f"unknown transport mode {self.mode!r}; "
                             f"choose from {list(TRANSPORT_MODES)}")
        if self.cwnd_floor < 1:
            raise ValueError("cwnd_floor must be >= 1")
        if self.cwnd_ceiling < 0:
            raise ValueError("cwnd_ceiling must be >= 0 (0 = window)")
        if self.cwnd_ceiling and self.cwnd_ceiling < self.cwnd_floor:
            raise ValueError("cwnd_ceiling must be >= cwnd_floor")
        if self.backoff_jitter_ns < 0:
            raise ValueError("backoff_jitter_ns must be >= 0")

    def timeout_after_retries(self, retries: int) -> int:
        """The armed timeout for retry round ``retries`` (0-based)."""
        return self.retransmit_timeout_ns * self.backoff_factor ** retries

    @property
    def effective_cwnd_ceiling(self) -> int:
        return self.cwnd_ceiling or self.window


#: Switch-queue disciplines (:class:`QueueConfig.discipline`).
QUEUE_DISCIPLINES = ("drop-tail", "red")


@dataclass(frozen=True)
class QueueConfig:
    """Per-switch output-port queue model (:mod:`repro.net.queues`).

    Like :class:`ReliabilityConfig`, deliberately *not* a SystemConfig
    section: golden fixtures fingerprint the config tree, so finite
    queues are a pure add-on armed explicitly per fabric
    (:meth:`repro.net.Fabric.enable_queues`).  A fabric without queues
    armed -- and any star run, whose routes never cross a switch output
    port -- takes the exact pre-queue code path, byte for byte.
    """

    #: Queue discipline: ``"drop-tail"`` (drop when full) or ``"red"``
    #: (random early detection with deterministic seeded draws).
    discipline: str = "drop-tail"
    #: Finite per-port capacity.  Arrivals that would push occupancy past
    #: it are dropped (both disciplines: RED degrades to drop-tail at the
    #: brick wall).
    capacity_bytes: int = 64 * KB
    #: RED: occupancy below this never drops/marks (and never draws).
    red_min_bytes: int = 16 * KB
    #: RED: occupancy at/above this always drops (or marks, with ECN).
    red_max_bytes: int = 48 * KB
    #: RED: drop/mark probability at ``red_max_bytes`` (linear ramp from
    #: 0 at ``red_min_bytes``).
    red_max_prob: float = 1.0
    #: ECN: RED *marks* packets (congestion bit carried through the
    #: fabric to the receiver, echoed on ACKs) instead of dropping them;
    #: only the capacity brick wall still drops.
    ecn: bool = False

    def __post_init__(self) -> None:
        if self.discipline not in QUEUE_DISCIPLINES:
            raise ValueError(f"unknown queue discipline {self.discipline!r}; "
                             f"choose from {list(QUEUE_DISCIPLINES)}")
        if self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")
        if not 0 <= self.red_min_bytes < self.red_max_bytes:
            raise ValueError("need 0 <= red_min_bytes < red_max_bytes")
        if self.discipline == "red" and self.red_max_bytes > self.capacity_bytes:
            raise ValueError("red_max_bytes must be <= capacity_bytes")
        if not 0.0 <= self.red_max_prob <= 1.0:
            raise ValueError("red_max_prob must be in [0, 1]")


@dataclass(frozen=True)
class LinkFlap:
    """One link-outage window: ``node``'s link is down in [down_at, up_at)."""

    node: str
    down_at: int
    up_at: int

    def __post_init__(self) -> None:
        if self.down_at < 0 or self.up_at <= self.down_at:
            raise ValueError(f"invalid flap window [{self.down_at}, {self.up_at})")

    def down(self, t: int) -> bool:
        return self.down_at <= t < self.up_at


@dataclass(frozen=True)
class NicStall:
    """One receive-side NIC stall: deliveries into ``node`` landing in
    [start, end) are deferred to ``end`` (the rx pipeline is frozen)."""

    node: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"invalid stall window [{self.start}, {self.end})")


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection knobs consumed by :class:`repro.faults.FaultPlan`.

    Like :class:`ReliabilityConfig`, this is not a SystemConfig section:
    a cluster with no plan attached takes the exact pre-fault code path.
    Probabilities are per *transmission* on the source link; per-link
    overrides key on ``"src->dst"`` strings.
    """

    #: Per-message drop probability (0 disables).
    drop_prob: float = 0.0
    #: Per-message payload-corruption probability (CRC failure at the rx NIC).
    corrupt_prob: float = 0.0
    #: Max extra head-propagation jitter per message, drawn uniform [0, jitter].
    jitter_ns: int = 0
    #: Per-link ``"src->dst"`` drop-probability overrides.
    link_drop: Tuple[Tuple[str, float], ...] = ()
    #: Per-link ``"src->dst"`` corruption-probability overrides.
    link_corrupt: Tuple[Tuple[str, float], ...] = ()
    #: Link-outage windows (messages crossing a down link are lost).
    flaps: Tuple[LinkFlap, ...] = ()
    #: Receive-side NIC stall windows.
    stalls: Tuple[NicStall, ...] = ()

    def __post_init__(self) -> None:
        for name, p in (("drop_prob", self.drop_prob),
                        ("corrupt_prob", self.corrupt_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        for _, p in (*self.link_drop, *self.link_corrupt):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"per-link probability out of [0, 1]: {p}")
        if self.jitter_ns < 0:
            raise ValueError("jitter_ns must be >= 0")

    @property
    def armed(self) -> bool:
        """Whether any injector can actually perturb a run."""
        return bool(self.drop_prob or self.corrupt_prob or self.jitter_ns
                    or any(p for _, p in self.link_drop)
                    or any(p for _, p in self.link_corrupt)
                    or self.flaps or self.stalls)


@dataclass(frozen=True)
class SystemConfig:
    """The complete simulated system (one config shared by all nodes)."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    gpu: GpuConfig = field(default_factory=GpuConfig)
    kernel: KernelLatencyConfig = field(default_factory=KernelLatencyConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    seed: int = 0x5C17

    def with_(self, **sections) -> "SystemConfig":
        """Return a copy with whole sections replaced (functional update)."""
        return replace(self, **sections)

    def describe(self) -> Dict[str, Dict[str, object]]:
        """Render the configuration as the paper's Table 2 rows."""
        return {
            "CPU and Memory Configuration": {
                "Type": f"{self.cpu.issue_width} Wide OOO, {self.cpu.freq_ghz:g}GHz, "
                        f"{self.cpu.cores} cores",
                "I,D-Cache": f"{self.cpu.l1d.size_bytes // KB}K, {self.cpu.l1d.assoc}-way, "
                             f"{self.cpu.l1d.latency_cycles} cycles",
                "L2-Cache": f"{self.cpu.l2.size_bytes // MB}MB, {self.cpu.l2.assoc}-way, "
                            f"{self.cpu.l2.latency_cycles} cycles",
                "L3-Cache": f"{self.cpu.l3.size_bytes // MB}MB, {self.cpu.l3.assoc}-way, "
                            f"{self.cpu.l3.latency_cycles} cycles",
                "System Memory": f"DDR4, {self.memory.channels} Channels, "
                                 f"{self.memory.freq_mhz}MHz",
            },
            "GPU Configuration": {
                "Type": f"{self.gpu.freq_ghz:g} GHz, {self.gpu.compute_units} Compute Units",
                "D-Cache": f"{self.gpu.l1d.size_bytes // KB}kB, {self.gpu.l1d.line_bytes}B line, "
                           f"{self.gpu.l1d.assoc}-way, {self.gpu.l1d.latency_cycles} cycles",
                "I-Cache": f"{self.gpu.l1i.size_bytes // KB}kB, {self.gpu.l1i.line_bytes}B line, "
                           f"{self.gpu.l1i.assoc}-way, {self.gpu.l1i.latency_cycles} cycles",
                "L2-Cache": f"{self.gpu.l2.size_bytes // KB}kB, {self.gpu.l2.line_bytes}B line, "
                            f"{self.gpu.l2.assoc}-way, {self.gpu.l2.latency_cycles} cycles",
                "Kernel Latencies": f"{self.kernel.launch_ns / US:g}us launch / "
                                    f"{self.kernel.teardown_ns / US:g}us teardown",
            },
            "Network Configuration": {
                "Latency": f"{self.network.link_latency_ns}ns Link, "
                           f"{self.network.switch_latency_ns}ns Switch",
                "Bandwidth": f"{self.network.bandwidth_gbps:g}Gbps",
                "Topology": f"{self.network.topology.capitalize()} (single switch)",
            },
        }


def default_config() -> SystemConfig:
    """The paper's Table 2 configuration."""
    return SystemConfig()
