"""Fault injection and reliability campaigns (``repro faults``).

The core fabric (:mod:`repro.net.fabric`) is lossless; this package makes
it misbehave on purpose and checks that the paper's protocols survive:

* :mod:`~repro.faults.plan` -- :class:`FaultPlan`, a seeded composition
  of injectors (per-link drop/corruption probability, head-propagation
  jitter, deterministic link-flap outages, receive-side NIC stalls)
  installed on a fabric through its interposer hook.  Unarmed plans are
  behaviorally invisible, so golden fixtures stay byte-identical;
* :mod:`~repro.faults.campaign` -- seeded campaigns that run the
  microbench/Jacobi/Allreduce workloads with the go-back-N reliable
  transport (:mod:`repro.nic.transport`) armed on every NIC, a per-seed
  fault scenario on the fabric, and every invariant monitor watching --
  fanned out through :class:`~repro.runtime.sweep.Sweep`
  (``repro faults --jobs``).
"""

from repro.faults.campaign import (
    FAULT_WORKLOADS,
    FaultCase,
    FaultsExperiment,
    FaultsReport,
    fault_case,
    run_faults_campaign,
)
from repro.faults.plan import FaultPlan

__all__ = [
    "FAULT_WORKLOADS",
    "FaultCase",
    "FaultPlan",
    "FaultsExperiment",
    "FaultsReport",
    "fault_case",
    "run_faults_campaign",
]
