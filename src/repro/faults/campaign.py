"""Seeded fault campaigns over the paper's workloads (``repro faults``).

A campaign answers one question: does the GPU-TN protocol keep its
exactly-once trigger/delivery semantics when the network misbehaves?
Each seed maps -- deterministically, via
:class:`~repro.sim.rng.RandomStreams` -- to one **fault scenario** (drop
and corruption probabilities up to 5%, head jitter, an optional link-flap
outage or NIC rx stall) plus a reliability parameterization (go-back-N
window, retransmit timeout, retry budget).  The workload runs with the
reliable transport armed on every NIC, the fault plan installed on the
fabric, and every invariant monitor watching -- including
:class:`~repro.validate.monitors.ReliableDeliveryMonitor`, which holds
the transport to exactly-once, exactly-in-order acceptance per flow.

Outcomes are ordinary :class:`~repro.runtime.record.RunRecord` rows, so
campaigns fan out over the :class:`~repro.runtime.sweep.Sweep` process
pool and any failure replays from its ``(workload, seed)`` point alone.
A run ends in one of four ways:

* **clean** -- the app finished, its payload checks pass, monitors quiet;
* **gave up** -- the retry budget died on some flow and every affected
  handle failed with a structured
  :class:`~repro.nic.transport.TransportError` (expected under extreme
  scenarios; still a pass: nothing hung, nothing delivered twice);
* **violation** -- a monitor caught an invariant break (always a failure);
* **deadlock/crash** -- the run hit its time limit with flows neither
  finished nor dead, or raised something unstructured (always a failure).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import (FaultConfig, LinkFlap, NicStall, ReliabilityConfig,
                          SystemConfig)
from repro.nic.transport import TransportError
from repro.runtime.experiment import Experiment
from repro.runtime.record import RunRecord
from repro.runtime.sweep import Sweep
from repro.sim.rng import RandomStreams
from repro.validate.monitors import (ReliableDeliveryMonitor, attach_monitors,
                                     default_monitors)
from repro.validate.violations import InvariantViolation

__all__ = [
    "FAULT_WORKLOADS",
    "FaultCase",
    "FaultsExperiment",
    "FaultsReport",
    "fault_case",
    "run_faults_campaign",
]

#: Workloads a fault campaign can drive, in default order.
FAULT_WORKLOADS: Tuple[str, ...] = ("microbench", "jacobi", "allreduce")

#: Simulated-time ceiling per case: far beyond any recovery or give-up
#: horizon (budget-exhaustion with the campaign's knobs is < 2 ms), so
#: hitting it means some flow truly wedged.
CASE_LIMIT_NS = 5_000_000


@dataclass(frozen=True)
class FaultCase:
    """Everything one seed determines: the replay unit of a campaign."""

    workload: str
    seed: int
    inner_params: Dict[str, Any]
    faults: FaultConfig
    reliability: ReliabilityConfig
    limit_ns: int = CASE_LIMIT_NS


def _workload_experiment(workload: str) -> Experiment:
    if workload == "microbench":
        from repro.apps.microbench import MicrobenchExperiment
        return MicrobenchExperiment()
    if workload == "jacobi":
        from repro.apps.jacobi import JacobiExperiment
        return JacobiExperiment()
    if workload == "allreduce":
        from repro.collectives import AllreduceExperiment
        return AllreduceExperiment()
    raise KeyError(f"unknown fault workload {workload!r}; "
                   f"choose from {list(FAULT_WORKLOADS)}")


def fault_case(workload: str, seed: int) -> FaultCase:
    """The deterministic ``seed -> (scenario, workload params)`` map."""
    _workload_experiment(workload)  # validate the name early
    rng = RandomStreams(seed).stream(f"faults.case.{workload}")

    # Loss scenario: rates up to the 5% acceptance ceiling; roughly one
    # case in four additionally arms a deterministic link-flap outage,
    # one in four an rx-side NIC stall.
    faults_kw: Dict[str, Any] = {
        "drop_prob": float(rng.choice([0.0, 0.005, 0.01, 0.02, 0.05])),
        "corrupt_prob": float(rng.choice([0.0, 0.005, 0.01, 0.02])),
        "jitter_ns": int(rng.choice([0, 200, 1000])),
    }
    if int(rng.integers(0, 4)) == 0:
        down_at = int(rng.integers(2_000, 20_000))
        faults_kw["flaps"] = (LinkFlap(
            node=f"node{int(rng.integers(0, 2))}", down_at=down_at,
            up_at=down_at + int(rng.integers(5_000, 50_000))),)
    if int(rng.integers(0, 4)) == 0:
        start = int(rng.integers(2_000, 20_000))
        faults_kw["stalls"] = (NicStall(
            node=f"node{int(rng.integers(0, 2))}", start=start,
            end=start + int(rng.integers(2_000, 10_000))),)

    reliability = ReliabilityConfig(
        window=int(rng.choice([2, 4, 8])),
        retransmit_timeout_ns=int(rng.integers(10_000, 40_000)),
        max_retries=6,
    )

    if workload == "microbench":
        inner: Dict[str, Any] = {
            # GPU-TN over-weighted: its trigger path is what must stay
            # exactly-once under retransmission.
            "strategy": str(rng.choice(["cpu", "hdn", "gds", "gputn",
                                        "gputn"])),
            "nbytes": int(rng.choice([32, 256, 1024])),
            "overlap_post": False,
            "post_delay_ns": 0,
        }
    elif workload == "jacobi":
        px, py = (int(v) for v in rng.choice([(2, 1), (1, 2)]))
        inner = {
            "strategy": str(rng.choice(["cpu", "hdn", "gds", "gputn"])),
            "n": 8, "px": px, "py": py, "iters": 1,
            "seed": int(rng.integers(0, 1000)),
        }
    else:  # allreduce
        inner = {
            "strategy": str(rng.choice(["cpu", "hdn", "gds", "gputn"])),
            "n_nodes": int(rng.integers(2, 4)),
            "nbytes": int(rng.choice([256, 1024])),
            "seed": int(rng.integers(0, 1000)),
        }
    return FaultCase(workload=workload, seed=seed, inner_params=inner,
                     faults=FaultConfig(**faults_kw), reliability=reliability)


class FaultsExperiment(Experiment):
    """One fault case as a runtime experiment.

    Parameters are just ``{"workload", "seed"}`` -- the whole scenario is
    derived by :func:`fault_case` -- so campaigns are ordinary sweep
    grids and parallel runs are byte-identical to serial ones.
    """

    name = "faults"
    defaults = {"workload": "microbench", "seed": 0}

    def trace_default(self, params: Dict[str, Any]) -> bool:
        # Violations snapshot the tracer tail; drop/retransmit/nack rows
        # also feed the Perfetto export.  Fault workloads are small.
        return True

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool):
        case = fault_case(params["workload"], params["seed"])
        inner = _workload_experiment(case.workload)
        cluster = inner.build_cluster(case.inner_params, config, trace)
        cluster.enable_reliability(case.reliability)
        cluster.attach_faults(case.faults, rng=case.seed)
        return cluster

    def setup(self, cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        case = fault_case(params["workload"], params["seed"])
        inner = _workload_experiment(case.workload)
        monitors = attach_monitors(
            cluster, default_monitors() + [ReliableDeliveryMonitor()])
        inner_ctx = inner.setup(cluster, case.inner_params)
        # The base template's post-run process check is bypassed ("procs"
        # stays empty): a TransportError-failed flow is a structured
        # campaign outcome, not a crashed worker.
        return {"case": case, "inner": inner, "inner_ctx": inner_ctx,
                "monitors": monitors, "procs": []}

    def drive(self, cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        case: FaultCase = ctx["case"]
        try:
            cluster.run(until=case.limit_ns)
            # With give-ups, poll loops on starved receivers legitimately
            # spin to the limit; in-flight data on a *live* flow at the
            # limit, though, means recovery wedged -- record it and skip
            # finalize (its incomplete-delivery check would only shadow
            # the real finding).
            unsettled = [
                (nic.node, peer, flow)
                for nic in (n.nic for n in cluster.nodes)
                if nic.transport is not None
                for peer, flow in nic.transport.flows().items()
                if flow["in_flight"] and not flow["dead"]
            ]
            if unsettled:
                ctx["unsettled"] = unsettled
                return
            for monitor in ctx["monitors"]:
                monitor.finalize()
        except InvariantViolation as violation:
            ctx["violation"] = violation
        except Exception as exc:  # a crash is a finding too, with a replay seed
            ctx["crash"] = repr(exc)

    def finish(self, cluster, ctx: Dict[str, Any], params: Dict[str, Any]):
        case: FaultCase = ctx["case"]
        violation: Optional[InvariantViolation] = ctx.get("violation")
        crash: Optional[str] = ctx.get("crash")
        procs = ctx["inner_ctx"].get("procs", ())
        failed = [p for p in procs if p.processed and not p.ok]
        unfinished = [p for p in procs if not p.processed]
        transport_errors = [p.value for p in failed
                            if isinstance(p.value, TransportError)]
        gave_up = bool(transport_errors) or any(
            flow["dead"]
            for nic in (n.nic for n in cluster.nodes)
            if nic.transport is not None
            for flow in nic.transport.flows().values())

        metrics: Dict[str, Any] = {
            "workload": case.workload,
            "seed": case.seed,
            "inner_params": dict(case.inner_params),
            "faults": dataclasses.asdict(case.faults),
            "reliability": dataclasses.asdict(case.reliability),
            "sim_end_ns": cluster.sim.now,
            "violation": violation.to_dict() if violation else None,
            "crash": crash,
            "gave_up": gave_up,
            "transport_errors": [e.to_dict() for e in transport_errors],
            "app_ok": False,
        }
        if violation is None and crash is None:
            if ctx.get("unsettled"):
                node, peer, flow = ctx["unsettled"][0]
                metrics["crash"] = crash = (
                    f"flow {node}->{peer} still has {flow['in_flight']} "
                    f"message(s) in flight at t={case.limit_ns} (recovery "
                    "wedged?)")
            elif gave_up:
                # Degraded-but-sound: the stuck flows died loudly with
                # TransportError; receivers starved of their payload may
                # legitimately still be polling at the limit.
                pass
            elif failed:
                metrics["crash"] = crash = repr(failed[0].value)
            elif unfinished:
                metrics["crash"] = crash = (
                    f"{len(unfinished)} flow(s) never finished (deadlock?)")
            else:
                inner_metrics, _ = ctx["inner"].finish(
                    cluster, ctx["inner_ctx"], case.inner_params)
                metrics["app_ok"] = _app_ok(inner_metrics)
        hazards = cluster.total_hazards()
        metrics["ok"] = bool(
            violation is None and metrics["crash"] is None and hazards == 0
            and (metrics["app_ok"] or gave_up))
        return metrics, violation

    def execute(self, params=None, config=None, trace=None, *,
                observers=None, checkpoint=None):
        # Campaign records must stay lean: drop the per-run span table
        # (the tracer itself stays on for violation context and the
        # drop/retransmit trace points).
        execution = super().execute(params, config, trace,
                                    observers=observers,
                                    checkpoint=checkpoint)
        execution.record.spans = ()
        return execution


def _app_ok(inner_metrics: Dict[str, Any]) -> bool:
    """Application-level correctness, from whichever flag the workload
    reports (payload pattern, Allreduce data check, grid digest)."""
    for key in ("payload_ok", "correct"):
        if key in inner_metrics:
            return bool(inner_metrics[key])
    return "grid_sha256" in inner_metrics


@dataclass
class FaultsReport:
    """Outcome of one campaign: per-case records plus failure rollups."""

    records: List[RunRecord] = field(default_factory=list)
    #: ``{"hits", "misses"}`` of the campaign's ResultCache, or ``None``
    #: when the campaign ran uncached.
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[RunRecord]:
        return [r for r in self.records if not r.metrics["ok"]]

    @property
    def gave_up(self) -> List[RunRecord]:
        return [r for r in self.records if r.metrics["gave_up"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_workload(self) -> Dict[str, Tuple[int, int]]:
        """``workload -> (passed, total)``."""
        out: Dict[str, Tuple[int, int]] = {}
        for r in self.records:
            w = r.metrics["workload"]
            passed, total = out.get(w, (0, 0))
            out[w] = (passed + (1 if r.metrics["ok"] else 0), total + 1)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON report: summary plus one row per case (spans excluded)."""
        return {
            "ok": self.ok,
            "total": self.total,
            "cache": self.cache_stats,
            "gave_up": len(self.gave_up),
            "by_workload": {w: {"passed": p, "total": t}
                            for w, (p, t) in sorted(self.by_workload().items())},
            "cases": [{
                "workload": r.metrics["workload"],
                "seed": r.metrics["seed"],
                "ok": r.metrics["ok"],
                "strategy": r.metrics["inner_params"].get("strategy"),
                "gave_up": r.metrics["gave_up"],
                "faults": r.metrics["faults"],
                "violation": r.metrics["violation"],
                "crash": r.metrics["crash"],
                "transport": dict(r.transport),
            } for r in self.records],
        }


def run_faults_campaign(workloads: Sequence[str] = FAULT_WORKLOADS,
                        seeds: int = 25, seed_start: int = 0, jobs: int = 1,
                        config: Optional[SystemConfig] = None,
                        fail_fast: bool = False, cache: Optional[Any] = None,
                        store: Optional[Any] = None,
                        progress: Optional[Any] = None,
                        checkpoint: Optional[Any] = None,
                        listen: Optional[Any] = None, priority: int = 0,
                        window: Optional[int] = None) -> FaultsReport:
    """Run ``seeds`` fault cases per workload, all monitors armed.

    The campaign is one :class:`repro.service.Job`: pass ``store`` (a
    :class:`~repro.service.store.JobStore` or path) to journal it --
    killing the campaign then resuming re-runs only incomplete cases --
    and ``cache`` to reuse case records across campaigns.  ``progress``
    receives one :class:`~repro.service.job.PointDone` per finished case.
    With ``fail_fast`` the first failing case cancels the job
    cooperatively: no new cases are dispatched, in-flight cases still
    finish, so parallel results stay deterministic.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    from repro.service.backends import as_result_cache
    from repro.service.job import Job

    cache = as_result_cache(cache)
    points = [{"workload": w, "seed": s}
              for w in workloads
              for s in range(seed_start, seed_start + seeds)]
    job = Job.from_sweep(Sweep(FaultsExperiment(), points=points),
                         config=config, cache=cache, store=store,
                         checkpoint=checkpoint, priority=priority)
    if listen is not None:
        host, port = job.listen(listen)
        print(f"job {job.id} listening on {host}:{port} -- join with: "
              f"python -m repro worker serve --connect {host}:{port}",
              flush=True)

    def on_point(event) -> None:
        if progress is not None:
            progress(event)
        if fail_fast and not event.record.metrics["ok"]:
            job.cancel()

    records = job.run(jobs=jobs, progress=on_point, window=window)
    return FaultsReport(records=[r for r in records if r is not None],
                        cache_stats=cache.stats() if cache is not None else None)
