"""Seeded fault plans: the interposer the fabric consults per transmission.

A :class:`FaultPlan` composes the injectors described by a
:class:`repro.config.FaultConfig` -- probabilistic drop and corruption
(global or per-link), uniform head-propagation jitter, deterministic
link-flap outage windows, and receive-side NIC stalls -- into the two
hooks :class:`repro.net.Fabric` exposes:

* :meth:`on_transmit` returns one :class:`repro.net.FaultDecision` per
  message, and
* :meth:`adjust_delivery` defers deliveries landing inside a stall window.

Determinism
-----------

All randomness comes from named child streams of one
:class:`repro.sim.rng.RandomStreams` root: each (injector, link) pair
draws from its own stream (``faults.drop.a->b``, ``faults.corrupt.a->b``,
``faults.jitter.a->b``), so

* the sequence of verdicts on a link depends only on the root seed and
  the number of messages that link has carried -- never on traffic
  elsewhere or on wall-clock scheduling, which is what makes serial and
  process-parallel sweep executions byte-identical; and
* arming one injector never perturbs another's draws.

A plan built from an unarmed config (``FaultConfig()``) never draws and
always answers with the shared no-fault verdict, so attaching it is
behaviorally invisible -- the golden-fixture guarantee.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.config import FaultConfig
from repro.net.fabric import NO_FAULT, Fabric, FaultDecision
from repro.net.packet import Message
from repro.sim.rng import RandomStreams

__all__ = ["FaultPlan"]


class FaultPlan:
    """A seeded, composable set of fault injectors for one fabric."""

    def __init__(self, config: FaultConfig,
                 rng: Union[RandomStreams, int, None] = None):
        self.config = config
        if isinstance(rng, RandomStreams):
            self.streams = rng
        else:
            self.streams = RandomStreams(0x5C17 if rng is None else rng)
        self._link_drop: Dict[str, float] = dict(config.link_drop)
        self._link_corrupt: Dict[str, float] = dict(config.link_corrupt)
        self.fabric: Optional[Fabric] = None
        #: Injector hit counters (fabric.stats stays {"messages", "bytes"}).
        self.stats = {
            "drops": 0,
            "flap_drops": 0,
            "corruptions": 0,
            "jitter_msgs": 0,
            "jitter_total_ns": 0,
            "stall_deferrals": 0,
            "stall_total_ns": 0,
        }

    # -------------------------------------------------------------- attach
    def attach(self, fabric: Fabric) -> "FaultPlan":
        """Install this plan as ``fabric``'s interposer."""
        fabric.install_interposer(self)
        self.fabric = fabric
        return self

    @property
    def armed(self) -> bool:
        return self.config.armed

    # ----------------------------------------------------------- interposer
    def on_transmit(self, msg: Message, now: int) -> FaultDecision:
        """The per-transmission verdict (Fabric interposer hook)."""
        cfg = self.config
        link = f"{msg.src}->{msg.dst}"

        # Link flaps are deterministic outages: a message entering the
        # wire while either endpoint's link is down is simply lost.
        for flap in cfg.flaps:
            if flap.node in (msg.src, msg.dst) and flap.down(now):
                self.stats["drops"] += 1
                self.stats["flap_drops"] += 1
                return FaultDecision(drop=True)

        p_drop = self._link_drop.get(link, cfg.drop_prob)
        if p_drop > 0.0:
            if self.streams.stream(f"faults.drop.{link}").random() < p_drop:
                self.stats["drops"] += 1
                return FaultDecision(drop=True)

        corrupt = False
        p_corrupt = self._link_corrupt.get(link, cfg.corrupt_prob)
        if p_corrupt > 0.0:
            corrupt = bool(
                self.streams.stream(f"faults.corrupt.{link}").random() < p_corrupt)
            if corrupt:
                self.stats["corruptions"] += 1

        extra = 0
        if cfg.jitter_ns > 0:
            extra = int(self.streams.stream(f"faults.jitter.{link}")
                        .integers(0, cfg.jitter_ns + 1))
            if extra:
                self.stats["jitter_msgs"] += 1
                self.stats["jitter_total_ns"] += extra

        if not corrupt and extra == 0:
            return NO_FAULT
        return FaultDecision(corrupt=corrupt, extra_delay_ns=extra)

    def adjust_delivery(self, dst: str, t: int) -> int:
        """Defer a delivery landing inside one of ``dst``'s stall windows
        (Fabric interposer hook).  Windows may overlap; the message pops
        out once every covering window has ended."""
        deferred = t
        moved = True
        while moved:
            moved = False
            for stall in self.config.stalls:
                if stall.node == dst and stall.start <= deferred < stall.end:
                    deferred = stall.end
                    moved = True
        if deferred != t:
            self.stats["stall_deferrals"] += 1
            self.stats["stall_total_ns"] += deferred - t
        return deferred

    # ------------------------------------------------------------- reporting
    def counters(self) -> Dict[str, int]:
        """Non-zero injector counters (for RunRecord / reports)."""
        return {k: v for k, v in self.stats.items() if v}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(armed={self.armed}, stats={self.counters()})"
