"""GPU device model.

Simulates the paper's Table 2 GPU (1 GHz, 24 CUs) at **work-group
granularity**: each work-group is a simulation process that executes a
*kernel program* -- a Python generator mirroring the OpenCL kernels of
paper Figure 7 (compute, work-group barriers, system-scope fences and
atomics, NIC trigger stores, flag polling).

The front-end hardware scheduler (:mod:`~repro.gpu.dispatcher`) charges
the kernel launch/teardown latencies that motivate the whole paper
(Figure 1 / Table 2), processes in-memory command queues in order, and
implements the GDS-style kernel-boundary doorbell.
"""

from repro.gpu.device import Gpu, KernelInstance
from repro.gpu.dispatcher import (
    FIGURE1_GPUS,
    ConstantLaunchModel,
    LaunchLatencyModel,
    QueueDepthLaunchModel,
)
from repro.gpu.kernel import KernelContext, KernelDescriptor
from repro.gpu.queue import CommandQueue, DoorbellCommand, KernelDispatchCommand

__all__ = [
    "CommandQueue",
    "ConstantLaunchModel",
    "DoorbellCommand",
    "FIGURE1_GPUS",
    "Gpu",
    "KernelContext",
    "KernelDescriptor",
    "KernelDispatchCommand",
    "KernelInstance",
    "LaunchLatencyModel",
    "QueueDepthLaunchModel",
]
