"""The GPU device: front-end scheduler plus compute units.

Work-groups are simulation processes; at most one work-group occupies a
compute unit at a time (a deliberate simplification -- see DESIGN.md §5 --
that also mirrors the occupancy requirement persistent kernels place on
real hardware: a persistent kernel must fit entirely on the device or its
polling work-groups deadlock).

The front end consumes one :class:`~repro.gpu.queue.CommandQueue` in
order: kernels pay launch latency, execute all work-groups, pay teardown;
doorbell commands ring the NIC at the kernel boundary (the GDS model).
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional

from repro.config import SystemConfig
from repro.gpu.dispatcher import ConstantLaunchModel, LaunchLatencyModel
from repro.gpu.kernel import KernelContext, KernelDescriptor
from repro.gpu.queue import CommandQueue, DoorbellCommand, KernelDispatchCommand
from repro.sim import AllOf, Event, Resource, Simulator, Tracer

__all__ = ["Gpu", "KernelInstance"]


class KernelInstance:
    """A launched kernel: join on ``started`` / ``finished``."""

    def __init__(self, cmd: KernelDispatchCommand):
        self._cmd = cmd
        self.desc = cmd.desc

    @property
    def started(self) -> Event:
        return self._cmd.started

    @property
    def finished(self) -> Event:
        return self._cmd.finished


class Gpu:
    """One GPU device on a node."""

    def __init__(self, sim: Simulator, node: str, config: SystemConfig,
                 space, mem, nic, tracer: Optional[Tracer] = None,
                 launch_model: Optional[LaunchLatencyModel] = None):
        self.sim = sim
        self.node = node
        self.config = config
        self.space = space
        self.mem = mem
        self.nic = nic
        self.tracer = tracer or Tracer(enabled=False)
        self.launch_model = launch_model or ConstantLaunchModel.from_config(config.kernel)
        self.queue = CommandQueue(sim, name=f"{node}.gpuq")
        self.cus = Resource(sim, capacity=config.gpu.compute_units,
                            name=f"{node}.cus")
        self.stats = {"kernels": 0, "workgroups": 0, "doorbells": 0}
        #: Observability probes: called with ``(kind, now, detail)`` for
        #: kinds ``"kernel-launch"`` / ``"kernel-teardown"`` (detail
        #: carries ``latency_ns``) and ``"wg-start"`` / ``"wg-end"``
        #: (detail carries CU ``in_use`` / ``capacity``) -- the attachment
        #: point for :mod:`repro.metrics` occupancy/latency collection.
        #: Empty (zero overhead) unless something attaches.
        self.probes: List[Callable[[str, int, Dict[str, Any]], None]] = []
        # The front end is a callback state machine (not a generator
        # process) so an idle or between-kernels GPU holds no generator
        # frame and the cluster graph stays picklable for
        # repro.checkpoint.  Work-groups remain generator processes --
        # they run arbitrary user kernel code -- so snapshots are only
        # legal at kernel boundaries.  The boot event reproduces the
        # exact event count and seq numbering the old spawn() had.
        boot = Event(sim, name=f"boot:{node}.gpu.frontend")
        boot.callbacks.append(self._fe_boot)
        boot.succeed()

    def _emit(self, kind: str, **detail: Any) -> None:
        for probe in self.probes:
            probe(kind, self.sim.now, detail)

    # ------------------------------------------------------------ dispatch
    def launch(self, desc: KernelDescriptor) -> KernelInstance:
        """Enqueue a kernel dispatch (the HW-side half of a launch; the
        host runtime charges its own software cost before calling this)."""
        if desc.args.get("persistent") and desc.n_workgroups > self.cus.capacity:
            raise ValueError(
                f"persistent kernel {desc.name!r} needs {desc.n_workgroups} "
                f"work-groups but only {self.cus.capacity} CUs exist; "
                "it would deadlock on real hardware"
            )
        return KernelInstance(self.queue.submit_kernel(desc))

    def enqueue_doorbell(self, handle) -> DoorbellCommand:
        """Queue a kernel-boundary NIC doorbell behind earlier commands
        (the GDS mechanism)."""
        return self.queue.submit_doorbell(handle)

    # ------------------------------------------------------------ internals
    # Front-end command loop, spelled as chained callbacks: _fe_boot ->
    # _fe_wait -> _fe_cmd -> (kernel chain | doorbell) -> _fe_wait ...
    # Each handler attaches at the exact callback position the old
    # generator's _resume occupied, so event order is byte-identical.
    def _fe_boot(self, _ev: Event) -> None:
        self._fe_wait()

    def _fe_wait(self) -> None:
        self.queue.pop().callbacks.append(self._fe_cmd)

    def _fe_cmd(self, ev: Event) -> None:
        cmd = ev.value
        if isinstance(cmd, KernelDispatchCommand):
            self._fe_launch(cmd)
        elif isinstance(cmd, DoorbellCommand):
            self.nic.ring_doorbell(cmd.handle)
            self.stats["doorbells"] += 1
            cmd.rung.succeed(self.sim.now)
            self._fe_wait()
        else:  # pragma: no cover - future command types
            raise TypeError(f"unknown GPU command {cmd!r}")

    def _fe_launch(self, cmd: KernelDispatchCommand) -> None:
        depth = self.queue.depth + 1  # this command plus whatever is behind it
        launch_ns = self.launch_model.launch_ns(depth)
        self.tracer.begin(self.sim.now, self.node, "gpu", "kernel-launch",
                          kernel=cmd.desc.name)
        launched = self.sim.timeout(launch_ns)
        launched.callbacks.append(
            partial(self._fe_exec, cmd, depth, launch_ns))

    def _fe_exec(self, cmd: KernelDispatchCommand, depth: int,
                 launch_ns: int, _ev: Event) -> None:
        desc = cmd.desc
        self.tracer.end(self.sim.now, self.node, "gpu", "kernel-launch",
                        kernel=desc.name)
        if self.probes:
            self._emit("kernel-launch", kernel=desc.name, latency_ns=launch_ns)
        cmd.started.succeed(self.sim.now)

        self.tracer.begin(self.sim.now, self.node, "gpu", "kernel-exec",
                          kernel=desc.name)
        workgroups: List[Event] = [
            self.sim.spawn(self._workgroup(desc, wg_id),
                           name=f"{desc.name}.wg{wg_id}")
            for wg_id in range(desc.n_workgroups)
        ]
        joined = AllOf(self.sim, workgroups)
        joined.callbacks.append(partial(self._fe_executed, cmd, depth))

    def _fe_executed(self, cmd: KernelDispatchCommand, depth: int,
                     ev: Event) -> None:
        desc = cmd.desc
        if not ev.ok:
            # A kernel fault: propagate to whoever joins on the kernel and
            # keep the front end alive for subsequent commands.
            self.tracer.end(self.sim.now, self.node, "gpu", "kernel-exec",
                            kernel=desc.name, fault=repr(ev.value))
            cmd.finished.fail(ev.value)
            self._fe_wait()
            return
        self.tracer.end(self.sim.now, self.node, "gpu", "kernel-exec",
                        kernel=desc.name)

        teardown_ns = self.launch_model.teardown_ns(depth)
        self.tracer.begin(self.sim.now, self.node, "gpu", "kernel-teardown",
                          kernel=desc.name)
        torndown = self.sim.timeout(teardown_ns)
        torndown.callbacks.append(
            partial(self._fe_retired, cmd, teardown_ns))

    def _fe_retired(self, cmd: KernelDispatchCommand, teardown_ns: int,
                    _ev: Event) -> None:
        desc = cmd.desc
        self.tracer.end(self.sim.now, self.node, "gpu", "kernel-teardown",
                        kernel=desc.name)
        if self.probes:
            self._emit("kernel-teardown", kernel=desc.name,
                       latency_ns=teardown_ns)
        self.stats["kernels"] += 1
        cmd.finished.succeed(self.sim.now)
        self._fe_wait()

    def _workgroup(self, desc: KernelDescriptor, wg_id: int):
        yield self.cus.acquire()
        if self.probes:
            self._emit("wg-start", kernel=desc.name, wg=wg_id,
                       in_use=self.cus.in_use, capacity=self.cus.capacity)
        try:
            ctx = KernelContext(self.sim, self, desc, wg_id)
            gen = desc.fn(ctx)
            if gen is not None and hasattr(gen, "send"):
                yield from gen
            self.stats["workgroups"] += 1
        finally:
            self.cus.release()
            if self.probes:
                self._emit("wg-end", kernel=desc.name, wg=wg_id,
                           in_use=self.cus.in_use, capacity=self.cus.capacity)
