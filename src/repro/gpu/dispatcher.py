"""Front-end hardware scheduler launch-latency models (paper Figure 1).

The paper measures empty-kernel launch latency on three modern GPUs as a
function of how many kernel commands are presented to the hardware
scheduler at once: 3-20 us per kernel at shallow queue depths, amortizing
toward a 3-4 us floor as the scheduler pipelines deeper queues.

:class:`QueueDepthLaunchModel` captures that envelope:

    per_kernel_ns(depth) = floor_ns + ramp_ns / depth**alpha

and :data:`FIGURE1_GPUS` provides three calibrated instances ("GPU 1..3",
vendor-anonymous like the paper).  The evaluation configuration
(Table 2) instead fixes launch/teardown at 1.5 us each --
:class:`ConstantLaunchModel` -- chosen by the authors as "some of the more
optimistic numbers" from the Figure 1 study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import KernelLatencyConfig, US

__all__ = [
    "ConstantLaunchModel",
    "FIGURE1_GPUS",
    "LaunchLatencyModel",
    "QueueDepthLaunchModel",
]


class LaunchLatencyModel:
    """Per-kernel launch/teardown latency as a function of queue depth."""

    def launch_ns(self, queue_depth: int) -> int:
        raise NotImplementedError

    def teardown_ns(self, queue_depth: int) -> int:
        raise NotImplementedError

    def round_trip_ns(self, queue_depth: int) -> int:
        """Launch + teardown for one kernel at the given depth."""
        return self.launch_ns(queue_depth) + self.teardown_ns(queue_depth)


@dataclass(frozen=True)
class ConstantLaunchModel(LaunchLatencyModel):
    """Fixed costs -- the Table 2 evaluation calibration."""

    launch: int = 1500
    teardown: int = 1500

    @classmethod
    def from_config(cls, cfg: KernelLatencyConfig) -> "ConstantLaunchModel":
        return cls(launch=cfg.launch_ns, teardown=cfg.teardown_ns)

    def launch_ns(self, queue_depth: int) -> int:
        _check_depth(queue_depth)
        return self.launch

    def teardown_ns(self, queue_depth: int) -> int:
        _check_depth(queue_depth)
        return self.teardown


@dataclass(frozen=True)
class QueueDepthLaunchModel(LaunchLatencyModel):
    """Amortizing model for the Figure 1 study.

    ``floor_ns`` is the asymptotic per-kernel cost at deep queues;
    ``ramp_ns`` the extra cost with a single queued kernel; ``alpha``
    controls how quickly pipelining amortizes it.  Launch and teardown
    split the total evenly, matching how Table 2 splits 3 us.
    """

    name: str
    floor_ns: int
    ramp_ns: int
    alpha: float = 0.8

    def __post_init__(self) -> None:
        if self.floor_ns <= 0 or self.ramp_ns < 0 or self.alpha <= 0:
            raise ValueError(f"invalid launch model parameters: {self}")

    def per_kernel_ns(self, queue_depth: int) -> int:
        _check_depth(queue_depth)
        return int(round(self.floor_ns + self.ramp_ns / queue_depth ** self.alpha))

    def launch_ns(self, queue_depth: int) -> int:
        return self.per_kernel_ns(queue_depth) // 2

    def teardown_ns(self, queue_depth: int) -> int:
        return self.per_kernel_ns(queue_depth) - self.launch_ns(queue_depth)


def _check_depth(queue_depth: int) -> None:
    if queue_depth < 1:
        raise ValueError(f"queue depth must be >= 1, got {queue_depth}")


#: Three anonymized GPUs calibrated to the Figure 1 envelope:
#: GPU 1 falls from ~20 us at depth 1 toward ~4 us at depth 256;
#: GPU 2 from ~8 us toward ~4 us; GPU 3 sits near the 3-4 us floor.
FIGURE1_GPUS: Dict[str, QueueDepthLaunchModel] = {
    "GPU 1": QueueDepthLaunchModel("GPU 1", floor_ns=int(3.8 * US),
                                   ramp_ns=int(16.2 * US), alpha=0.85),
    "GPU 2": QueueDepthLaunchModel("GPU 2", floor_ns=int(3.9 * US),
                                   ramp_ns=int(4.1 * US), alpha=0.7),
    "GPU 3": QueueDepthLaunchModel("GPU 3", floor_ns=int(3.1 * US),
                                   ramp_ns=int(0.9 * US), alpha=0.6),
}
