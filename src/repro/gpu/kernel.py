"""Kernel programs: the intra-kernel API of paper Figure 7.

A *kernel program* is a Python generator function taking a
:class:`KernelContext` -- the simulation analogue of an OpenCL kernel
written at work-group granularity.  Inside it you can:

* ``yield ctx.compute(ns)`` / ``yield ctx.compute_bytes(n)`` -- local work;
* ``yield ctx.barrier()`` -- ``work_group_barrier``;
* ``yield ctx.fence_release_system(buf, ...)`` --
  ``atomic_work_item_fence(..., memory_scope_all_svm_devices)`` with
  release semantics (publishes the buffers to the NIC);
* ``yield ctx.fence_acquire_system()`` -- the acquire direction;
* ``yield ctx.store_trigger(tag)`` -- the paper's core primitive: a
  system-scope atomic store of ``tag`` to the NIC trigger address;
* ``yield from ctx.poll_flag(buf, off, value)`` -- spin on a flag word
  with system-scope acquire loads (target-side notification, §4.2.5);
* ``ctx.write(buf, array)`` / ``ctx.read(buf)`` -- actual data movement
  (NumPy), with ``yield ctx.compute_bytes(...)`` charging its time.

Example -- work-group-level triggering (paper Figure 7b)::

    def kern2(ctx):
        ctx.write(ctx.arg("buffer"), my_tile)        # do work
        yield ctx.compute_bytes(my_tile.nbytes)
        yield ctx.barrier()
        yield ctx.fence_release_system(ctx.arg("buffer"))
        if ctx.is_leader:
            yield ctx.store_trigger(ctx.arg("tag_base") + ctx.wg_id)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

import numpy as np

from repro.config import SystemConfig
from repro.memory import Agent, Buffer, MemoryOrder, Scope
from repro.sim import Event, Simulator

__all__ = ["KernelContext", "KernelDescriptor"]

_kernel_ids = itertools.count(1)

KernelFn = Callable[["KernelContext"], Generator[Event, Any, Any]]


@dataclass
class KernelDescriptor:
    """Dispatch parameters for one kernel (an AQL packet, roughly)."""

    fn: KernelFn
    n_workgroups: int
    wg_size: int = 256
    args: Dict[str, Any] = field(default_factory=dict)
    name: str = ""
    kernel_id: int = field(default_factory=lambda: next(_kernel_ids))

    def __post_init__(self) -> None:
        if self.n_workgroups <= 0:
            raise ValueError(f"kernel needs >=1 work-group, got {self.n_workgroups}")
        if self.wg_size <= 0:
            raise ValueError(f"work-group size must be positive, got {self.wg_size}")
        if not self.name:
            self.name = getattr(self.fn, "__name__", f"kernel{self.kernel_id}")


class KernelContext:
    """Per-work-group execution context handed to kernel programs."""

    def __init__(self, sim: Simulator, gpu, desc: KernelDescriptor, wg_id: int):
        self.sim = sim
        self.gpu = gpu
        self.desc = desc
        self.wg_id = wg_id
        self.config: SystemConfig = gpu.config

    # ------------------------------------------------------------ identity
    @property
    def n_workgroups(self) -> int:
        return self.desc.n_workgroups

    @property
    def wg_size(self) -> int:
        return self.desc.wg_size

    @property
    def is_leader(self) -> bool:
        """True in the work-group whose leader work-item would run
        ``if (!get_local_id(...))`` code.  At work-group granularity every
        simulated group has exactly one leader, so this is always true;
        it is kept for source fidelity with Figure 7."""
        return True

    def arg(self, name: str) -> Any:
        try:
            return self.desc.args[name]
        except KeyError:
            raise KeyError(
                f"kernel {self.desc.name!r} has no argument {name!r}; "
                f"available: {sorted(self.desc.args)}"
            ) from None

    # ------------------------------------------------------------- compute
    def compute(self, ns: int) -> Event:
        """Busy the work-group for ``ns`` nanoseconds."""
        if ns < 0:
            raise ValueError("negative compute time")
        return self.sim.timeout(int(ns))

    def compute_bytes(self, nbytes: int, flops_per_byte: float = 1.0) -> Event:
        """Streaming compute over ``nbytes`` at one CU's share of the GPU's
        aggregate throughput (the work-group has one CU in this model)."""
        gpu_cfg = self.config.gpu
        per_cu = gpu_cfg.stream_bytes_per_ns / gpu_cfg.compute_units
        ns = int(round(nbytes * max(flops_per_byte, 1.0) / per_cu))
        return self.sim.timeout(max(ns, 1) if nbytes > 0 else 0)

    def barrier(self) -> Event:
        """``work_group_barrier`` -- synchronize the work-items of this group."""
        return self.sim.timeout(self.config.gpu.workgroup_barrier_ns)

    # ------------------------------------------------------- memory model
    def fence_release_system(self, *buffers: Buffer) -> Event:
        """System-scope release fence: publish writes to CPU/NIC.

        The publish is a callback on the fence's own completion event --
        not a sibling event at the same tick -- so it is program-ordered
        before anything the fence unblocks under *every* legal same-tick
        event ordering (the schedule fuzzer explores them all).
        """
        delay = self.config.gpu.fence_system_ns
        bufs = list(buffers) or None
        ev = self.sim.timeout(delay)
        ev.callbacks.append(lambda _ev: self.gpu.mem.release(
            self.sim.now, Agent.GPU, Scope.SYSTEM, bufs))
        return ev

    def fence_acquire_system(self, *buffers: Buffer) -> Event:
        """System-scope acquire fence: observe CPU/NIC writes.

        As with the release direction, the acquire happens atomically with
        the fence event itself, ahead of the resumed kernel's next load.
        """
        delay = self.config.gpu.fence_system_ns
        bufs = list(buffers) or None
        ev = self.sim.timeout(delay)
        ev.callbacks.append(lambda _ev: self.gpu.mem.acquire(
            self.sim.now, Agent.GPU, Scope.SYSTEM, bufs))
        return ev

    # --------------------------------------------------------- triggering
    def store_trigger(self, tag: int, nic=None) -> Event:
        """``atomic_store_explicit(trigAddr, tag, memory_order_release,
        memory_scope_all_svm_devices)`` -- the GPU-TN trigger write."""
        nic = nic or self.gpu.nic
        delay = self.config.gpu.atomic_system_store_ns
        self.sim.call_later(delay, nic.mmio_write, nic.trigger_address, tag, Agent.GPU)
        return self.sim.timeout(delay)

    def store_trigger_dynamic(self, tag: int, nic=None, **overrides: Any) -> Event:
        """Section 3.4 extension: a wide trigger store that also carries
        operation fields (target, addresses, size) chosen on the GPU.
        Costs one extra store beat for the extra words."""
        nic = nic or self.gpu.nic
        delay = self.config.gpu.atomic_system_store_ns * 2
        self.sim.call_later(
            delay,
            lambda: nic.mmio_write_dynamic(nic.trigger_address, tag,
                                           Agent.GPU, **overrides),
        )
        return self.sim.timeout(delay)

    def store_trigger_per_workitem(self, base_tag: int, n_items: Optional[int] = None) -> Event:
        """Work-item-level triggering (Figure 7a): every work-item in the
        group stores its own tag.  Stores pipeline at ~1/cycle once the
        first reaches the fabric."""
        n = n_items if n_items is not None else self.wg_size
        if n <= 0:
            raise ValueError("need at least one work-item trigger")
        nic = self.gpu.nic
        first = self.config.gpu.atomic_system_store_ns
        for i in range(n):
            self.sim.call_later(first + i, nic.mmio_write, nic.trigger_address,
                                base_tag + i, Agent.GPU)
        return self.sim.timeout(first + n - 1)

    # ------------------------------------------------------------- polling
    def poll_flag(self, buf: Buffer, offset: int = 0, at_least: int = 1):
        """Spin on a uint32 flag word until it reaches ``at_least``.

        A generator: use ``yield from ctx.poll_flag(...)``.  Each probe is
        a system-scope acquire load (paper §4.2.5/§4.2.6) costing one
        poll interval.
        """
        if at_least <= 0:
            raise ValueError("poll target must be positive")
        word = buf.view(np.uint32, count=1, offset=offset)
        while True:
            self.gpu.mem.record_read(self.sim.now, Agent.GPU, buf,
                                     scope=Scope.SYSTEM, order=MemoryOrder.ACQUIRE)
            if int(word[0]) >= at_least:
                return int(word[0])
            yield self.sim.timeout(self.config.gpu.poll_interval_ns)

    # ---------------------------------------------------------------- data
    def write(self, buf: Buffer, data: np.ndarray, offset: int = 0) -> None:
        """Store ``data`` into ``buf`` (device-scope visibility only)."""
        view = buf.view(data.dtype, count=data.size, offset=offset)
        view[:] = data.reshape(-1)
        self.gpu.mem.record_write(self.sim.now, Agent.GPU, buf)

    def read(self, buf: Buffer, dtype=np.uint8, count: Optional[int] = None,
             offset: int = 0, acquire: bool = False) -> np.ndarray:
        """Load from ``buf``; pass ``acquire=True`` for system-scope loads."""
        self.gpu.mem.record_read(
            self.sim.now, Agent.GPU, buf,
            scope=Scope.SYSTEM if acquire else Scope.DEVICE,
            order=MemoryOrder.ACQUIRE if acquire else MemoryOrder.RELAXED,
        )
        return buf.view(dtype, count=count, offset=offset)
