"""In-memory GPU command queues (HSA soft queues, CUDA streams).

The host runtime enqueues commands; the GPU front-end scheduler consumes
them in order.  Two command types matter for the paper:

* :class:`KernelDispatchCommand` -- launch a kernel;
* :class:`DoorbellCommand` -- ring a NIC doorbell for a pre-posted network
  operation once all earlier commands have retired.  This is how GDS
  interleaves "network initiation points ... into CUDA streams at kernel
  boundaries".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.kernel import KernelDescriptor
from repro.sim import Event, Simulator, Store

__all__ = ["CommandQueue", "DoorbellCommand", "KernelDispatchCommand"]

_cmd_ids = itertools.count(1)


@dataclass
class _Command:
    cmd_id: int = field(default_factory=lambda: next(_cmd_ids), init=False)


@dataclass
class KernelDispatchCommand(_Command):
    """An AQL kernel-dispatch packet."""

    desc: KernelDescriptor
    #: fires when the kernel begins executing (post-launch-latency)
    started: Optional[Event] = None
    #: fires when the kernel has fully retired (post-teardown)
    finished: Optional[Event] = None


@dataclass
class DoorbellCommand(_Command):
    """Ring a NIC doorbell for a staged operation at a kernel boundary."""

    handle: object  # PutHandle; kept loose to avoid a nic import cycle
    #: fires when the doorbell has been rung
    rung: Optional[Event] = None


class CommandQueue:
    """One in-order command stream feeding a GPU front end."""

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._store = Store(sim, name=name)

    def __len__(self) -> int:
        return len(self._store)

    def submit_kernel(self, desc: KernelDescriptor) -> KernelDispatchCommand:
        cmd = KernelDispatchCommand(
            desc=desc,
            started=self.sim.event(f"started:{desc.name}"),
            finished=self.sim.event(f"finished:{desc.name}"),
        )
        self._store.try_put(cmd)
        return cmd

    def submit_doorbell(self, handle) -> DoorbellCommand:
        cmd = DoorbellCommand(handle=handle, rung=self.sim.event("doorbell"))
        self._store.try_put(cmd)
        return cmd

    def pop(self) -> Event:
        """Blocking get used by the GPU front end."""
        return self._store.get()

    @property
    def depth(self) -> int:
        """Commands currently waiting (excluding any being processed)."""
        return len(self._store)
