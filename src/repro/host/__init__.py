"""Host CPU model and runtimes.

The CPU performs the *serial* work the paper keeps off the GPU: network
packet construction, NIC command posting, kernel dispatch software paths,
two-sided progress, and whole-application compute for the CPU-only
baseline.  Costs come from :class:`repro.config.CpuConfig` and are charged
by generator helpers used inside strategy processes (``yield from
host.send(...)``), with core occupancy tracked through a semaphore so
helper-thread designs can be modeled and measured.
"""

from repro.host.runtime import Host

__all__ = ["Host"]
