"""The host runtime: CPU-side software paths with explicit time costs.

Every method that models software work is a **generator** meant for
``yield from`` inside a simulation process, so the caller's timeline
naturally includes the CPU cost.  Methods that only stage state (e.g.
posting a receive) are plain calls.

The runtime tracks core occupancy: time spent in these software paths
accumulates in ``stats['busy_ns']``, which the evaluation uses to compare
CPU overhead across strategies (paper Table 1's "CPU Overhead" column,
made quantitative).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.gpu.device import Gpu, KernelInstance
from repro.gpu.kernel import KernelDescriptor
from repro.memory import Agent, Buffer, MemoryTiming
from repro.nic.device import Nic, PutHandle, RecvHandle
from repro.sim import Event, Simulator, Tracer

__all__ = ["Host"]


class Host:
    """One node's CPU runtime."""

    def __init__(self, sim: Simulator, node: str, config: SystemConfig,
                 space, mem, nic: Nic, gpu: Optional[Gpu] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.node = node
        self.config = config
        self.space = space
        self.mem = mem
        self.nic = nic
        self.gpu = gpu
        self.tracer = tracer or Tracer(enabled=False)
        self.timing = MemoryTiming.for_cpu(config.cpu, config.memory)
        self.stats: Dict[str, Any] = {"busy_ns": 0, "sends": 0, "recvs": 0,
                                      "kernel_launches": 0, "trig_registrations": 0}

    # ------------------------------------------------------------- plumbing
    def _work(self, ns: int, phase: str):
        """Charge ``ns`` of CPU time, tracked and traced."""
        self.stats["busy_ns"] += ns
        self.tracer.begin(self.sim.now, self.node, "cpu", phase)
        yield self.sim.timeout(ns)
        self.tracer.end(self.sim.now, self.node, "cpu", phase)

    # ------------------------------------------------------- GPU dispatch
    def launch_kernel(self, desc: KernelDescriptor):
        """Software half of a kernel launch; returns a KernelInstance.

        ``yield from host.launch_kernel(desc)`` charges the user-runtime
        enqueue cost; hardware launch latency is charged by the GPU front
        end itself.
        """
        if self.gpu is None:
            raise RuntimeError(f"node {self.node} has no GPU")
        yield from self._work(self.config.cpu.kernel_dispatch_sw_ns, "kernel-enqueue")
        self.stats["kernel_launches"] += 1
        return self.gpu.launch(desc)

    def wait_kernel(self, inst: KernelInstance, mode: str = "blocking"):
        """Wait for a kernel to finish.

        ``mode='blocking'`` is the application path (stream-synchronize:
        interrupt + scheduler wakeup, ~10 us); ``mode='spin'`` busy-polls
        a completion flag, which latency benchmarks use.
        """
        yield inst.finished
        if mode == "blocking":
            yield from self._work(self.config.cpu.kernel_sync_block_ns, "kernel-sync")
        elif mode == "spin":
            yield self.sim.timeout(self.config.cpu.completion_poll_ns)
        else:
            raise ValueError(f"unknown wait mode {mode!r} (blocking|spin)")
        return inst.finished.value

    # ---------------------------------------------------------- two-sided
    def send(self, buf: Buffer, nbytes: int, target: str, tag: int,
             offset: int = 0):
        """Two-sided send (HDN baseline): build packet, post to NIC.

        Returns the :class:`PutHandle`; local/delivered events as usual.
        """
        cpu = self.config.cpu
        yield from self._work(cpu.packet_build_ns + cpu.send_post_ns, "send")
        self.stats["sends"] += 1
        return self.nic.post_put(buf.addr(offset), nbytes, target,
                                 remote_addr=None, wire_tag=tag, kind="send")

    def post_recv(self, tag: int, buf: Buffer, nbytes: int,
                  offset: int = 0) -> RecvHandle:
        """Post a receive (cheap descriptor write; non-blocking)."""
        self.stats["recvs"] += 1
        return self.nic.post_recv(tag, buf.addr(offset), nbytes)

    def wait_recv(self, handle: RecvHandle):
        """Progress-engine wait: poll until the receive completes."""
        cpu = self.config.cpu
        while not handle.complete.triggered:
            yield from self._work(cpu.mpi_progress_ns, "progress")
            if handle.complete.triggered:
                break
            # Idle until something changes; re-check each progress tick.
            yield self.sim.timeout(cpu.completion_poll_ns)
        if not handle.complete.ok:
            raise handle.complete.value
        return handle.complete.value

    # ----------------------------------------------------------- one-sided
    def put(self, buf: Buffer, nbytes: int, target: str, remote_addr: int,
            wire_tag: Optional[int] = None, offset: int = 0,
            deferred: bool = False,
            local_flag: Optional[Tuple[Buffer, int]] = None):
        """One-sided put: packet construction plus NIC post.

        ``deferred=True`` stages the operation for a later doorbell (GDS).
        """
        cpu = self.config.cpu
        yield from self._work(cpu.packet_build_ns + cpu.send_post_ns, "put-post")
        return self.nic.post_put(buf.addr(offset), nbytes, target, remote_addr,
                                 wire_tag=wire_tag, deferred=deferred,
                                 local_flag=local_flag)

    def register_triggered_put(self, tag: int, threshold: int, buf: Buffer,
                               nbytes: int, target: str, remote_addr: int,
                               wire_tag: Optional[int] = None, offset: int = 0,
                               local_flag: Optional[Tuple[Buffer, int]] = None):
        """GPU-TN host-side registration (Figure 6 ``TrigPut``): packet is
        built now, off the critical path; the GPU triggers it later."""
        cpu = self.config.cpu
        yield from self._work(cpu.packet_build_ns + cpu.send_post_ns, "trig-register")
        self.stats["trig_registrations"] += 1
        return self.nic.register_triggered_put(
            tag=tag, threshold=threshold, local_addr=buf.addr(offset),
            nbytes=nbytes, target=target, remote_addr=remote_addr,
            wire_tag=wire_tag, local_flag=local_flag,
        )

    # ------------------------------------------------------------- compute
    def compute_bytes(self, nbytes: int, flops_per_byte: float = 1.0,
                      phase: str = "compute"):
        """CPU streaming compute (OpenMP-style, all cores) over ``nbytes``."""
        ns = int(round(nbytes * max(flops_per_byte, 1.0)
                       / self.config.cpu.stream_bytes_per_ns))
        yield from self._work(max(ns, 1) if nbytes else 0, phase)

    def cpu_write(self, buf: Buffer, data: np.ndarray, offset: int = 0) -> None:
        """CPU store into a buffer (coherent; no fence needed)."""
        view = buf.view(data.dtype, count=data.size, offset=offset)
        view[:] = data.reshape(-1)
        self.mem.record_write(self.sim.now, Agent.CPU, buf)

    def cpu_read(self, buf: Buffer, dtype=np.uint8, count: Optional[int] = None,
                 offset: int = 0) -> np.ndarray:
        self.mem.record_read(self.sim.now, Agent.CPU, buf)
        return buf.view(dtype, count=count, offset=offset)

    def poll_flag(self, buf: Buffer, offset: int = 0, at_least: int = 1):
        """CPU spin on a uint32 flag word (coherent agent: no fences)."""
        word = buf.view(np.uint32, count=1, offset=offset)
        while True:
            self.mem.record_read(self.sim.now, Agent.CPU, buf)
            if int(word[0]) >= at_least:
                return int(word[0])
            yield self.sim.timeout(self.config.cpu.completion_poll_ns)

    # ------------------------------------------------------------- buffers
    def alloc(self, nbytes: int, name: str = "", register: bool = True) -> Buffer:
        """Allocate (and by default RDMA-register) a buffer."""
        buf = self.space.alloc(nbytes, name=name)
        if register:
            self.space.register(buf)
        return buf
