"""Shared-memory substrate.

The paper's evaluation platform is a coherent APU-style SoC: CPU, GPU and
NIC share one system address space (Section 5.1), and correctness of
intra-kernel networking hinges on the GPU's *scoped, relaxed* memory model
(Section 4.2.6): the send buffer must be made visible at **system scope**
(release fence) before the trigger-address store, and completion flags
must be read with system-scope acquire.

This subpackage provides:

* :class:`~repro.memory.address_space.AddressSpace` /
  :class:`~repro.memory.address_space.Buffer` -- byte-addressable shared
  memory with NumPy-backed buffers and NIC registration,
* :class:`~repro.memory.model.ScopedMemoryModel` -- visibility tracking
  between agents (CPU / GPU / NIC) with fences, scopes and hazard
  detection,
* :mod:`~repro.memory.timing` -- cache/DRAM access-latency estimators used
  by the compute cost models.
"""

from repro.memory.address_space import AddressSpace, Buffer, RegistrationError
from repro.memory.model import (
    Agent,
    MemoryHazard,
    MemoryOrder,
    Scope,
    ScopedMemoryModel,
)
from repro.memory.timing import MemoryTiming

__all__ = [
    "AddressSpace",
    "Agent",
    "Buffer",
    "MemoryHazard",
    "MemoryOrder",
    "MemoryTiming",
    "RegistrationError",
    "Scope",
    "ScopedMemoryModel",
]
