"""Byte-addressable shared address space with registered buffers.

Models the coherent SoC memory of the paper's evaluation node.  Buffers
are NumPy-backed, carry a base *virtual address* in a per-node address
space, and can be *registered* for NIC access (the RDMA analogue of memory
registration / pinning).  The NIC refuses DMA to unregistered ranges,
which is exactly the failure mode a real RDMA stack gives you.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = ["AddressSpace", "Buffer", "RegistrationError"]

_PAGE = 4096


class RegistrationError(RuntimeError):
    """DMA attempted on memory not registered with the NIC."""


class Buffer:
    """A contiguous allocation inside an :class:`AddressSpace`.

    Exposes the backing bytes both as raw ``uint8`` and as typed NumPy
    views.  All remote (NIC) accesses go through :meth:`read_bytes` /
    :meth:`write_bytes` so the address-space bookkeeping stays coherent.
    """

    def __init__(self, space: "AddressSpace", base: int, nbytes: int, name: str = ""):
        self.space = space
        self.base = base
        self.nbytes = nbytes
        self.name = name or f"buf@{base:#x}"
        self._data = np.zeros(nbytes, dtype=np.uint8)
        self.registered = False

    # ---------------------------------------------------------------- typing
    @property
    def data(self) -> np.ndarray:
        """Raw byte view of the buffer."""
        return self._data

    def view(self, dtype=np.uint8, count: Optional[int] = None, offset: int = 0) -> np.ndarray:
        """A typed view into the buffer (no copy)."""
        itemsize = np.dtype(dtype).itemsize
        avail = (self.nbytes - offset) // itemsize
        n = avail if count is None else count
        if n < 0 or offset < 0 or offset + n * itemsize > self.nbytes:
            raise IndexError(
                f"view [{offset}, {offset + (n or 0) * itemsize}) outside buffer "
                f"{self.name!r} of {self.nbytes} bytes"
            )
        return self._data[offset:offset + n * itemsize].view(dtype)

    # ------------------------------------------------------------ raw access
    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        self._check_range(offset, nbytes)
        return self._data[offset:offset + nbytes].tobytes()

    def write_bytes(self, offset: int, payload: bytes) -> None:
        self._check_range(offset, len(payload))
        self._data[offset:offset + len(payload)] = np.frombuffer(payload, dtype=np.uint8)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise IndexError(
                f"access [{offset}, {offset + nbytes}) outside buffer "
                f"{self.name!r} of {self.nbytes} bytes"
            )

    # ------------------------------------------------------------- addresses
    def addr(self, offset: int = 0) -> int:
        """Virtual address of ``offset`` within this buffer."""
        if offset < 0 or offset > self.nbytes:
            raise IndexError(f"offset {offset} outside buffer {self.name!r}")
        return self.base + offset

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.base + self.nbytes

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:  # pragma: no cover
        reg = " registered" if self.registered else ""
        return f"<Buffer {self.name!r} base={self.base:#x} size={self.nbytes}{reg}>"


class AddressSpace:
    """A per-node virtual address space.

    Allocation is a simple page-aligned bump allocator -- fragmentation is
    irrelevant to the timing model, but overlap/containment queries must be
    exact because the NIC validates every DMA against them.
    """

    def __init__(self, name: str = "node", base: int = 0x1000_0000):
        self.name = name
        self._next = base
        self._buffers: Dict[int, Buffer] = {}

    def alloc(self, nbytes: int, name: str = "") -> Buffer:
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        base = self._next
        # Page-align the next allocation; guard page between buffers makes
        # out-of-bounds DMA deterministic instead of silently hitting a
        # neighbouring buffer.
        span = (nbytes + _PAGE - 1) // _PAGE * _PAGE + _PAGE
        self._next += span
        buf = Buffer(self, base, nbytes, name=name)
        self._buffers[base] = buf
        return buf

    def free(self, buf: Buffer) -> None:
        if self._buffers.pop(buf.base, None) is None:
            raise ValueError(f"double free of {buf!r}")
        buf.registered = False

    # ---------------------------------------------------------- registration
    def register(self, buf: Buffer) -> None:
        """Pin ``buf`` for NIC access."""
        if buf.space is not self:
            raise RegistrationError(f"{buf!r} belongs to a different address space")
        if buf.base not in self._buffers:
            raise RegistrationError(f"{buf!r} was freed")
        buf.registered = True

    def deregister(self, buf: Buffer) -> None:
        buf.registered = False

    # --------------------------------------------------------------- lookups
    def resolve(self, addr: int, nbytes: int = 1) -> Tuple[Buffer, int]:
        """Map a virtual range to (buffer, offset); raises if unmapped."""
        for buf in self._buffers.values():
            if buf.contains(addr, nbytes):
                return buf, addr - buf.base
        raise IndexError(f"address {addr:#x} (+{nbytes}) unmapped in space {self.name!r}")

    def dma_read(self, addr: int, nbytes: int) -> bytes:
        """NIC-side read; enforces registration."""
        buf, off = self.resolve(addr, nbytes)
        if not buf.registered:
            raise RegistrationError(f"DMA read from unregistered buffer {buf.name!r}")
        return buf.read_bytes(off, nbytes)

    def dma_write(self, addr: int, payload: bytes) -> None:
        """NIC-side write; enforces registration."""
        buf, off = self.resolve(addr, len(payload))
        if not buf.registered:
            raise RegistrationError(f"DMA write to unregistered buffer {buf.name!r}")
        buf.write_bytes(off, payload)

    def buffers(self) -> Iterator[Buffer]:
        return iter(self._buffers.values())
