"""Scoped, relaxed memory-model visibility tracking.

Section 4.2.6 of the paper: GPU stores are not visible to other agents
(CPU, NIC) until published by a *system-scope release* fence or performed
as system-scope atomics; conversely the GPU must *acquire* at system scope
to observe NIC writes.  Getting this wrong in a real system produces the
correctness bugs reported for some GPU Native Networking stacks [GPUrdma].

We model visibility symbolically rather than duplicating data per cache:
each buffer range carries a monotonically increasing *write version* per
writing agent plus a *published version*; a read by a different agent that
precedes publication is a :class:`MemoryHazard`.  Hazards are recorded
(and optionally raised) -- the test suite asserts that the GPU-TN kernel
API never produces one, and that deliberately omitting the fence does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.address_space import Buffer

__all__ = ["Agent", "MemoryHazard", "MemoryOrder", "Scope", "ScopedMemoryModel"]


class Agent(str, enum.Enum):
    """A memory-system observer."""

    CPU = "cpu"
    GPU = "gpu"
    NIC = "nic"


class Scope(enum.IntEnum):
    """Synchronization scope (subset of the OpenCL 2.0 hierarchy)."""

    WORK_GROUP = 1
    DEVICE = 2
    SYSTEM = 3  # memory_scope_all_svm_devices


class MemoryOrder(str, enum.Enum):
    RELAXED = "relaxed"
    ACQUIRE = "acquire"
    RELEASE = "release"
    ACQ_REL = "acq_rel"
    SEQ_CST = "seq_cst"


@dataclass(frozen=True)
class MemoryHazard:
    """A cross-agent read that may observe stale data."""

    time: int
    reader: Agent
    writer: Agent
    buffer: str
    detail: str

    def __str__(self) -> str:
        return (f"t={self.time}: {self.reader.value} read of {self.buffer!r} may be stale "
                f"(unpublished {self.writer.value} writes): {self.detail}")


class StaleReadError(RuntimeError):
    """Raised in strict mode when a hazardous read occurs."""


@dataclass
class _BufferState:
    # Latest write version per agent, and the version each has published
    # to system scope.
    writes: Dict[Agent, int] = field(default_factory=dict)
    published: Dict[Agent, int] = field(default_factory=dict)
    # Version each reader has acquired (observed) at system scope.
    acquired: Dict[Agent, Dict[Agent, int]] = field(default_factory=dict)
    # Unpublished byte intervals [lo, hi) per writer.  Interval-granular
    # so that pipelined protocols (write slice s+1 while the NIC reads
    # slice s of the same buffer) are not flagged as hazards.
    dirty: Dict[Agent, List[Tuple[int, int]]] = field(default_factory=dict)


class ScopedMemoryModel:
    """Tracks cross-agent visibility of buffer writes.

    One instance per node.  The model is conservative-correct: it flags a
    hazard whenever a reader could observe stale data under the relaxed
    model; it does not try to model which staleness actually materializes
    (data in the simulator is always the latest value -- the hazard log is
    how tests observe would-be bugs).
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.hazards: List[MemoryHazard] = []
        self._state: Dict[int, _BufferState] = {}

    def _st(self, buf: Buffer) -> _BufferState:
        st = self._state.get(buf.base)
        if st is None:
            st = self._state[buf.base] = _BufferState()
        return st

    # -------------------------------------------------------------- mutation
    def record_write(self, time: int, agent: Agent, buf: Buffer,
                     scope: Scope = Scope.DEVICE,
                     order: MemoryOrder = MemoryOrder.RELAXED,
                     lo: Optional[int] = None, hi: Optional[int] = None) -> None:
        """Record a store to ``buf[lo:hi)`` by ``agent`` (whole buffer by
        default).

        CPU and NIC writes are naturally coherent at system scope in the
        modeled SoC; GPU writes stay device-scoped until released unless
        the store itself is a system-scope release.
        """
        st = self._st(buf)
        v = st.writes.get(agent, 0) + 1
        st.writes[agent] = v
        publishes = (
            agent in (Agent.CPU, Agent.NIC)
            or scope >= Scope.SYSTEM
            and order in (MemoryOrder.RELEASE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)
        )
        if publishes:
            st.published[agent] = v
            st.dirty.pop(agent, None)
            self._invalidate_readers(st, agent)
        else:
            span = (lo if lo is not None else 0,
                    hi if hi is not None else buf.nbytes)
            if span[0] >= span[1]:
                raise ValueError(f"empty write interval {span}")
            st.dirty.setdefault(agent, []).append(span)

    def release(self, time: int, agent: Agent, scope: Scope = Scope.SYSTEM,
                buffers: Optional[List[Buffer]] = None) -> None:
        """A release fence by ``agent``: publish its writes (all buffers or
        the given subset) at ``scope``."""
        if scope < Scope.SYSTEM:
            return  # sub-system release publishes nothing to other agents
        states = ([self._st(b) for b in buffers] if buffers is not None
                  else list(self._state.values()))
        for st in states:
            if agent in st.writes:
                st.published[agent] = st.writes[agent]
                st.dirty.pop(agent, None)
                self._invalidate_readers(st, agent)

    def acquire(self, time: int, agent: Agent, scope: Scope = Scope.SYSTEM,
                buffers: Optional[List[Buffer]] = None) -> None:
        """An acquire fence by ``agent``: observe all published versions."""
        if scope < Scope.SYSTEM:
            return
        states = ([self._st(b) for b in buffers] if buffers is not None
                  else list(self._state.values()))
        for st in states:
            mine = st.acquired.setdefault(agent, {})
            for writer, pub in st.published.items():
                mine[writer] = max(mine.get(writer, 0), pub)

    @staticmethod
    def _invalidate_readers(st: _BufferState, writer: Agent) -> None:
        # Publication makes the new version *available*; readers still need
        # an acquire to be guaranteed to see it.  CPU/NIC acquire implicitly
        # (coherent agents); the GPU does not.
        for reader in (Agent.CPU, Agent.NIC):
            st.acquired.setdefault(reader, {})[writer] = st.published[writer]

    # ---------------------------------------------------------------- reads
    def record_read(self, time: int, agent: Agent, buf: Buffer,
                    scope: Scope = Scope.DEVICE,
                    order: MemoryOrder = MemoryOrder.RELAXED,
                    lo: Optional[int] = None,
                    hi: Optional[int] = None) -> Optional[MemoryHazard]:
        """Record a load of ``buf[lo:hi)`` (whole buffer by default);
        returns (and logs) a hazard if it may observe stale data."""
        st = self._st(buf)
        if scope >= Scope.SYSTEM and order in (
            MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST
        ):
            mine = st.acquired.setdefault(agent, {})
            for writer, pub in st.published.items():
                mine[writer] = max(mine.get(writer, 0), pub)
        span = (lo if lo is not None else 0,
                hi if hi is not None else buf.nbytes)
        hazard = self._check(time, agent, buf, st, span)
        if hazard is not None:
            self.hazards.append(hazard)
            if self.strict:
                raise StaleReadError(str(hazard))
        return hazard

    def _check(self, time: int, reader: Agent, buf: Buffer,
               st: _BufferState, span: Tuple[int, int]) -> Optional[MemoryHazard]:
        seen = st.acquired.get(reader, {})
        for writer, latest in st.writes.items():
            if writer is reader:
                continue
            published = st.published.get(writer, 0)
            observed = seen.get(writer, 0)
            overlap = any(d_lo < span[1] and span[0] < d_hi
                          for d_lo, d_hi in st.dirty.get(writer, ()))
            if overlap:
                return MemoryHazard(
                    time, reader, writer, buf.name,
                    f"write v{latest} unpublished in [{span[0]}, {span[1]}) "
                    f"(published v{published})",
                )
            if observed < published and reader is Agent.GPU:
                return MemoryHazard(
                    time, reader, writer, buf.name,
                    f"published v{published} not acquired (observed v{observed})",
                )
        return None

    # -------------------------------------------------------------- queries
    def hazard_count(self) -> int:
        return len(self.hazards)

    def clear(self) -> None:
        self.hazards.clear()
        self._state.clear()
