"""Cache/DRAM access-latency estimation.

The compute cost models (Jacobi stencil, Allreduce arithmetic, vector
copies) need first-order memory timing: how long does it take an agent to
stream ``n`` bytes given its cache hierarchy?  We use the classic
working-set model: traffic that fits in a cache level is served at that
level's latency/bandwidth; larger working sets spill to the next level and
ultimately to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import CacheConfig, CpuConfig, GpuConfig, MemoryConfig

__all__ = ["MemoryTiming"]


@dataclass(frozen=True)
class _Level:
    name: str
    capacity: int
    latency_ns: float
    bytes_per_ns: float


class MemoryTiming:
    """Working-set based streaming-time estimator for one agent."""

    def __init__(self, levels: List[_Level], dram: _Level):
        if not levels:
            raise ValueError("at least one cache level required")
        self.levels = sorted(levels, key=lambda lv: lv.capacity)
        self.dram = dram

    # ------------------------------------------------------------- builders
    @classmethod
    def for_cpu(cls, cpu: CpuConfig, mem: MemoryConfig) -> "MemoryTiming":
        def lv(name: str, c: CacheConfig, bw: float) -> _Level:
            return _Level(name, c.size_bytes, c.latency_cycles / cpu.freq_ghz, bw)

        # Bandwidths decrease down the hierarchy; L3 stays above DRAM so
        # stream time is monotone in working-set size.
        return cls(
            [
                lv("L1", cpu.l1d, 512.0),
                lv("L2", cpu.l2, 256.0),
                lv("L3", cpu.l3, 160.0),
            ],
            _Level("DRAM", 1 << 62, mem.latency_ns, mem.bytes_per_ns),
        )

    @classmethod
    def for_gpu(cls, gpu: GpuConfig, mem: MemoryConfig) -> "MemoryTiming":
        def lv(name: str, c: CacheConfig, bw: float) -> _Level:
            return _Level(name, c.size_bytes * gpu.compute_units if name == "L1" else c.size_bytes,
                          c.latency_cycles / gpu.freq_ghz, bw)

        return cls(
            [
                lv("L1", gpu.l1d, 512.0),
                lv("L2", gpu.l2, 256.0),
            ],
            _Level("DRAM", 1 << 62, mem.latency_ns, mem.bytes_per_ns),
        )

    # ------------------------------------------------------------ estimates
    def serving_level(self, working_set_bytes: int) -> _Level:
        """The cache level that holds a working set of the given size."""
        for lv in self.levels:
            if working_set_bytes <= lv.capacity:
                return lv
        return self.dram

    def stream_ns(self, nbytes: int, working_set_bytes: int | None = None) -> int:
        """Time to stream ``nbytes`` with the given (or equal) working set."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        if nbytes == 0:
            return 0
        lv = self.serving_level(working_set_bytes if working_set_bytes is not None else nbytes)
        return int(round(lv.latency_ns + nbytes / lv.bytes_per_ns))

    def access_ns(self, nbytes: int = 64, working_set_bytes: int | None = None) -> int:
        """Latency of one access touching ``nbytes`` (default: a line)."""
        lv = self.serving_level(working_set_bytes if working_set_bytes is not None else nbytes)
        return int(round(lv.latency_ns + nbytes / lv.bytes_per_ns))

    def breakdown(self, nbytes: int) -> Tuple[str, int]:
        """(level name, stream time) -- used in reporting/tests."""
        lv = self.serving_level(nbytes)
        return lv.name, self.stream_ns(nbytes)
