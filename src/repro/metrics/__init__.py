"""Metrics and profiling observability (``repro stats``).

The paper's headline claims are where-does-the-time-go arguments (Fig 8's
2.71/3.76/4.21 us path decomposition, Fig 9/10 scaling); this package is
the queryable-counter side of that story, next to the Perfetto trace
export:

* :mod:`~repro.metrics.registry` -- simulation-time-aware Counter /
  Gauge / log2-bucketed Histogram / decimating TimeSeries primitives,
  gathered by a get-or-create :class:`MetricsRegistry`;
* :mod:`~repro.metrics.instrument` -- :func:`attach_metrics` wires a
  registry into a cluster through the same probe/observer hooks
  :mod:`repro.validate` uses: GPU CU occupancy and kernel
  launch/teardown histograms, NIC doorbell-FIFO depth and trigger-list
  size, per-link bytes/occupancy, transport retransmit counters and
  per-message initiation-to-delivery latency histograms.

Zero overhead when disabled: nothing in the hardware models references a
registry; an unattached run leaves every hook list empty (DESIGN.md §9).
"""

from repro.metrics.instrument import attach_metrics
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "attach_metrics",
]
