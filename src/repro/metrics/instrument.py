"""Wire a :class:`~repro.metrics.registry.MetricsRegistry` into a cluster.

:func:`attach_metrics` subscribes registry updates through exactly the
probe/observer hooks the :mod:`repro.validate` monitors use --
:meth:`repro.sim.Simulator.add_step_probe`,
:attr:`repro.net.fabric.Fabric.probes`, :attr:`repro.nic.Nic.probes` /
``queue_probes``, :attr:`repro.nic.triggered.TriggerList.observers`,
:attr:`repro.gpu.device.Gpu.probes` and
:attr:`repro.nic.transport.ReliableTransport.probes`.  The hardware
models never see the registry: with nothing attached every hook list is
empty and the pre-metrics code path runs unchanged (the
zero-overhead-when-disabled contract, DESIGN.md §9).

What gets published (names are ``<node>.<component>.<metric>`` or
``<component>.<metric>`` for cluster-wide aggregates):

========================================  =================================
metric                                    source hook
========================================  =================================
``sim.events`` (counter)                  simulator step probe
``gpu.kernel_launch_ns`` (histogram)      GPU probe ``kernel-launch``
``gpu.kernel_teardown_ns`` (histogram)    GPU probe ``kernel-teardown``
``<n>.gpu.cu_occupancy`` (series+gauge)   GPU probes ``wg-start``/``wg-end``
``<n>.nic.trigger_fifo_depth`` (series)   NIC queue probes (push/pop)
``<n>.nic.trigger_list_size`` (series)    trigger-list observers
``<n>.nic.triggers|fired|...`` (counter)  trigger-list observers
``nic.message_latency_ns`` (histogram)    NIC probes ``initiate``/``delivered``
``fabric.link.<s>-><d>.bytes`` (counter)  fabric transmit probe
``fabric.egress.<n>.busy_ns`` (counter)   fabric transmit probe
``fabric.delivery_latency_ns`` (hist.)    fabric transmit probe
``<n>.transport.retransmits|...``         transport probes
========================================  =================================

Applications may additionally publish app-level metrics (e.g. the
degraded study's per-message latencies) through ``cluster.metrics``,
which this module sets; it stays ``None`` on uninstrumented clusters.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.metrics.registry import MetricsRegistry

__all__ = ["attach_metrics"]


def _nics_of(cluster) -> List[Any]:
    """NICs of a :class:`~repro.cluster.Cluster` or of the leaner NIC
    testbed harness (``nics`` mapping) -- same duck-typing as
    :mod:`repro.validate.monitors`."""
    nodes = getattr(cluster, "nodes", None)
    if nodes and hasattr(nodes[0], "nic"):
        return [n.nic for n in nodes]
    nics = getattr(cluster, "nics", None)
    if nics:
        return list(nics.values())
    return []


def _gpus_of(cluster) -> List[Any]:
    nodes = getattr(cluster, "nodes", None)
    if not nodes:
        return []
    return [n.gpu for n in nodes if getattr(n, "gpu", None) is not None]


def attach_metrics(cluster, registry: Optional[MetricsRegistry] = None
                   ) -> MetricsRegistry:
    """Arm metrics collection on ``cluster``; returns the registry.

    Must run after the cluster is built and any reliability config is
    armed, and before traffic flows (:meth:`repro.runtime.experiment.
    Experiment.execute` does exactly this when given
    ``observers=Observers(metrics=registry)``).
    Also publishes the registry as ``cluster.metrics`` so application
    code can add app-level metrics.
    """
    registry = MetricsRegistry() if registry is None else registry
    if getattr(cluster, "metrics", None) is not None:
        raise RuntimeError("cluster already has a metrics registry attached")
    cluster.metrics = registry

    events = registry.counter("sim.events")
    cluster.sim.add_step_probe(lambda t, prio, tie, seq, ev: events.inc())

    fabric = getattr(cluster, "fabric", None)
    if fabric is not None:
        _instrument_fabric(fabric, registry)
    for nic in _nics_of(cluster):
        _instrument_nic(nic, registry)
        if nic.transport is not None:
            _instrument_transport(nic.transport, registry)
    for gpu in _gpus_of(cluster):
        _instrument_gpu(gpu, registry)
    return registry


# ---------------------------------------------------------------- fabric
def _instrument_fabric(fabric, registry: MetricsRegistry) -> None:
    latency = registry.histogram("fabric.delivery_latency_ns")

    def on_transmit(msg, sent_at: int, egress_end: int,
                    delivered_at: int) -> None:
        link = f"fabric.link.{msg.src}->{msg.dst}"
        registry.counter(f"{link}.bytes").inc(msg.nbytes)
        registry.counter(f"{link}.messages").inc()
        # Egress occupancy: serialization time actually spent on the port.
        registry.counter(f"fabric.egress.{msg.src}.busy_ns").inc(
            fabric.net.serialization_ns(msg.nbytes))
        latency.record(delivered_at - sent_at)

    fabric.probes.append(on_transmit)

    queues = getattr(fabric, "queues", None)
    if queues is not None:
        _instrument_queues(queues, registry)


def _instrument_queues(queues, registry: MetricsRegistry) -> None:
    """Queue telemetry: per-port depth time series + depth histogram.

    Drop/mark totals come from ``queues.stats`` via transport counters;
    here we record the *shape* of congestion -- when and where depth
    built up -- which the counters cannot show.
    """
    depth_hist = registry.histogram("queue.depth_bytes")

    def on_admit(now: int, key: tuple, depth: int) -> None:
        port = f"queue.{key[0]}->{key[1]}"
        registry.timeseries(f"{port}.depth_bytes", port=port).sample(now, depth)
        registry.gauge(f"{port}.depth_bytes").set(depth)
        depth_hist.record(depth)

    queues.probes.append(on_admit)


# ------------------------------------------------------------------- nic
def _instrument_nic(nic, registry: MetricsRegistry) -> None:
    node = nic.node
    fifo_depth = registry.timeseries(f"{node}.nic.trigger_fifo_depth",
                                     node=node)
    fifo_gauge = registry.gauge(f"{node}.nic.trigger_fifo_depth")
    list_size = registry.timeseries(f"{node}.nic.trigger_list_size",
                                    node=node)
    msg_latency = registry.histogram("nic.message_latency_ns")
    initiated_at = {}

    def on_queue(kind: str, now: int, depth: int) -> None:
        fifo_depth.sample(now, depth)
        fifo_gauge.set(depth)

    nic.queue_probes.append(on_queue)

    def on_trigger(kind: str, entry) -> None:
        registry.counter(f"{node}.nic.trigger_{kind}s").inc()
        if kind in ("register", "free"):
            list_size.sample(nic.sim.now, len(nic.trigger_list))

    nic.trigger_list.observers.append(on_trigger)

    def on_nic(kind: str, handle, now: int) -> None:
        if kind == "initiate":
            initiated_at[handle.handle_id] = now
        elif kind == "delivered":
            t0 = initiated_at.pop(handle.handle_id, None)
            if t0 is not None:
                msg_latency.record(now - t0)
                registry.counter(f"{node}.nic.deliveries").inc()

    nic.probes.append(on_nic)


def _instrument_transport(transport, registry: MetricsRegistry) -> None:
    node = transport.node
    counted = {"tx": "tx_data", "accept": "accepts", "dup": "rx_dups",
               "gap": "rx_gaps", "corrupt": "rx_corrupt",
               "retransmit": "retransmit_rounds", "give-up": "give_ups"}

    def on_transport(kind: str, peer: str, seq: int, now: int) -> None:
        stat = counted.get(kind)
        if stat is not None:
            registry.counter(f"{node}.transport.{stat}").inc()

    transport.probes.append(on_transport)


# ------------------------------------------------------------------- gpu
def _instrument_gpu(gpu, registry: MetricsRegistry) -> None:
    node = gpu.node
    launch = registry.histogram("gpu.kernel_launch_ns")
    teardown = registry.histogram("gpu.kernel_teardown_ns")
    occupancy = registry.timeseries(f"{node}.gpu.cu_occupancy", node=node)
    occ_gauge = registry.gauge(f"{node}.gpu.cu_occupancy")

    def on_gpu(kind: str, now: int, detail) -> None:
        if kind == "kernel-launch":
            launch.record(detail["latency_ns"])
            registry.counter(f"{node}.gpu.kernels").inc()
        elif kind == "kernel-teardown":
            teardown.record(detail["latency_ns"])
        elif kind in ("wg-start", "wg-end"):
            in_use = detail["in_use"]
            occupancy.sample(now, in_use)
            occ_gauge.set(in_use)

    gpu.probes.append(on_gpu)
