"""Simulation-time-aware metrics primitives.

Everything here is driven by the *event clock*: samples carry the
simulator's integer-nanosecond timestamps handed in by the caller, and
nothing ever reads a wall clock -- a metrics dump is as deterministic as
the simulation that produced it, so records carrying one still compare
byte-for-byte across serial/parallel runs and cache round-trips.

Four primitive kinds cover the hardware models' needs:

* :class:`Counter` -- a monotone event/byte count;
* :class:`Gauge` -- a last-value-wins level with min/max watermarks;
* :class:`Histogram` -- fixed **log2 bucketing** (bucket ``i`` holds
  values in ``[2^(i-1), 2^i - 1]``; bucket 0 holds exactly 0), so any
  nanosecond latency fits in ~64 buckets with bounded relative error and
  O(1) recording.  Percentile estimates interpolate within a bucket and
  are therefore accurate to one bucket's width;
* :class:`TimeSeries` -- ``(time, value)`` samples with stride-doubling
  decimation, so unbounded runs keep a bounded, uniformly thinned trace
  (exported as Perfetto counter tracks).

A :class:`MetricsRegistry` is a get-or-create namespace over all four.
Hardware models never hold one: :mod:`repro.metrics.instrument`
subscribes registry updates through the same probe/observer hooks the
:mod:`repro.validate` monitors use, so an unattached run executes zero
metrics code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "TimeSeries"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (events, bytes, retries...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n

    def dump(self) -> int:
        return self.value


class Gauge:
    """A level that moves both ways, with min/max watermarks."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.updates = 0

    def set(self, value: Number) -> None:
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.updates += 1

    def dump(self) -> Dict[str, Any]:
        return {"value": self.value, "min": self.min, "max": self.max,
                "updates": self.updates}


class Histogram:
    """Fixed log2-bucketed histogram of non-negative integers.

    ``record`` is O(1): the bucket index of ``v`` is ``v.bit_length()``,
    i.e. bucket 0 holds exactly 0 and bucket ``i >= 1`` holds
    ``[2^(i-1), 2^i - 1]``.  ``percentile`` interpolates linearly inside
    the bucket containing the requested rank, so its error is bounded by
    the bucket width (a factor of two in value).
    """

    __slots__ = ("name", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.buckets: List[int] = []
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: Number) -> None:
        value = int(value)
        if value < 0:
            raise ValueError(
                f"histogram {self.name!r} takes non-negative values, got {value}")
        idx = value.bit_length()
        if idx >= len(self.buckets):
            self.buckets.extend([0] * (idx + 1 - len(self.buckets)))
        self.buckets[idx] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @staticmethod
    def bucket_bounds(idx: int) -> Tuple[int, int]:
        """Inclusive ``(lo, hi)`` value range of bucket ``idx``."""
        if idx == 0:
            return (0, 0)
        return (1 << (idx - 1), (1 << idx) - 1)

    def percentile(self, q: float) -> Optional[int]:
        """Estimated ``q``-th percentile (0 < q <= 100), or None if empty."""
        if not 0 < q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if self.count == 0:
            return None
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q/100 * count)
        seen = 0
        for idx, n in enumerate(self.buckets):
            if n == 0:
                continue
            if seen + n >= rank:
                lo, hi = self.bucket_bounds(idx)
                # Clamp to observed extremes so single-bucket histograms
                # report exact values, not bucket edges.
                lo = max(lo, self.min if self.min is not None else lo)
                hi = min(hi, self.max if self.max is not None else hi)
                frac = (rank - seen - 1) / n
                return int(lo + (hi - lo) * frac)
            seen += n
        return self.max  # pragma: no cover - rank <= count by construction

    def dump(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            # Sparse: bucket upper bound -> count, JSON-keyable.
            "buckets": {str(self.bucket_bounds(i)[1]): n
                        for i, n in enumerate(self.buckets) if n},
        }


class TimeSeries:
    """``(sim_time, value)`` samples with bounded memory.

    When ``max_samples`` is reached every other kept sample is dropped
    and the keep-stride doubles, so arbitrarily long runs retain a
    uniformly thinned series of at most ``max_samples`` points while the
    observation count stays exact.
    """

    __slots__ = ("name", "node", "samples", "max_samples", "observed",
                 "min", "max", "_stride", "_phase")

    def __init__(self, name: str, node: Optional[str] = None,
                 max_samples: int = 1024):
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.name = name
        #: Simulated node the series belongs to (Perfetto process mapping).
        self.node = node
        self.samples: List[Tuple[int, Number]] = []
        self.max_samples = max_samples
        self.observed = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._stride = 1
        self._phase = 0

    def sample(self, time: int, value: Number) -> None:
        self.observed += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._phase += 1
        if self._phase < self._stride:
            return
        self._phase = 0
        self.samples.append((int(time), value))
        if len(self.samples) >= self.max_samples:
            self.samples = self.samples[::2]
            self._stride *= 2

    @property
    def last(self) -> Optional[Number]:
        return self.samples[-1][1] if self.samples else None

    def dump(self) -> Dict[str, Any]:
        return {
            "observed": self.observed,
            "kept": len(self.samples),
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "samples": [[t, v] for t, v in self.samples],
        }


class MetricsRegistry:
    """Get-or-create namespace of counters/gauges/histograms/series.

    Names are hierarchical by convention (``node0.nic.trigger_fifo_depth``,
    ``fabric.link.node0->node1.bytes``); :func:`repro.metrics.instrument.
    attach_metrics` populates them from the hardware models' hook points
    and :meth:`dump` renders everything as one JSON-safe document (the
    ``telemetry`` section of a :class:`~repro.runtime.record.RunRecord`).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    # ------------------------------------------------------------- factories
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._counters[name] = metric = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._gauges[name] = metric = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._histograms[name] = metric = Histogram(name)
        return metric

    def timeseries(self, name: str, node: Optional[str] = None,
                   max_samples: int = 1024) -> TimeSeries:
        metric = self._series.get(name)
        if metric is None:
            self._series[name] = metric = TimeSeries(name, node=node,
                                                     max_samples=max_samples)
        return metric

    # --------------------------------------------------------------- queries
    def series_list(self) -> List[TimeSeries]:
        """All time series, in name order (for Perfetto counter tracks)."""
        return [self._series[name] for name in sorted(self._series)]

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._series))

    def dump(self) -> Dict[str, Any]:
        """The full registry as a JSON-safe nested document.

        Keys are sorted so the document is deterministic; empty sections
        are omitted so an untouched registry dumps as ``{}`` (and a
        RunRecord built from one stays byte-identical to a metrics-less
        record).
        """
        doc: Dict[str, Any] = {}
        if self._counters:
            doc["counters"] = {k: self._counters[k].dump()
                               for k in sorted(self._counters)}
        if self._gauges:
            doc["gauges"] = {k: self._gauges[k].dump()
                             for k in sorted(self._gauges)}
        if self._histograms:
            doc["histograms"] = {k: self._histograms[k].dump()
                                 for k in sorted(self._histograms)}
        if self._series:
            doc["series"] = {k: self._series[k].dump()
                             for k in sorted(self._series)}
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)} "
                f"series={len(self._series)}>")
