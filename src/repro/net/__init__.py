"""Network fabric substrate.

Models the paper's Table 2 network: a single-switch star with 100 ns link
latency, 100 ns switch latency and 100 Gbps links, using *cut-through*
(wormhole) message timing: a message of ``n`` bytes from A to B arrives

    ser(n) + 2 x link + switch   ns

after it enters A's egress port, where ``ser(n) = n / 12.5 bytes-per-ns``.
Port contention is modeled exactly at the endpoints (egress serialization
at the source, ingress serialization at the destination), which is where
all contention in the paper's star topology occurs.

General topologies (multi-switch paths, built on ``networkx``) are
supported for extension studies; per-hop latencies add along the path.
"""

from repro.net.fabric import DeliveredMessage, Fabric, FaultDecision
from repro.net.packet import Message
from repro.net.queues import SwitchQueues
from repro.net.topologies import (DragonflyTopology, FatTreeTopology,
                                  SwitchFabricTopology, TorusTopology,
                                  make_topology)
from repro.net.topology import StarTopology, Topology

__all__ = ["DeliveredMessage", "DragonflyTopology", "Fabric", "FatTreeTopology",
           "FaultDecision", "Message", "StarTopology", "SwitchFabricTopology",
           "SwitchQueues", "Topology", "TorusTopology", "make_topology"]
