"""The fabric: message transport with cut-through timing and port contention.

Timing model (see package docstring): for a message of ``n`` bytes,

* the source **egress port** is occupied for ``ser(n)`` starting when the
  message reaches the head of that port's queue;
* the head of the message propagates along the path
  (``topology.path_latency_ns``);
* the destination **ingress port** is occupied for ``ser(n)`` starting
  when the head arrives (or when the port frees, whichever is later);
* the message is *delivered* (last byte in target memory) when ingress
  occupation ends.

This reproduces the uncontended latency ``ser(n) + 2*link + switch`` of
the paper's star while serializing concurrent senders at the endpoints --
the only contention points of a star with a non-blocking switch.

Fault interposition
-------------------

The fabric is lossless by construction.  :mod:`repro.faults` makes it
misbehave *without touching the timing model* through two hooks:

* an :meth:`install_interposer`-registered object is consulted once per
  transmission and may drop the message, flag it corrupted, add head
  propagation jitter, or defer its delivery (NIC rx stall).  With no
  interposer installed -- the default -- ``transmit`` takes the exact
  pre-fault code path.
* :meth:`register_rx_filter` handlers run at delivery time *before* the
  node's rx handlers and may consume the message (return ``False``),
  which also suppresses the delivery event -- the attachment point for
  the reliable transport's sequencing/dedup/ACK logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.config import NetworkConfig
from repro.net.packet import Message
from repro.net.topology import Topology
from repro.sim import Event, Simulator, Tracer

__all__ = ["DeliveredMessage", "Fabric", "FaultDecision"]


@dataclass(frozen=True, slots=True)
class DeliveredMessage:
    """What the destination NIC sees when a message lands."""

    message: Message
    sent_at: int       # entered the source egress queue
    delivered_at: int  # last byte in destination memory
    #: Payload failed the receive-side CRC (fault injection); reliable
    #: transports NACK and discard, plain NICs count and discard.
    corrupted: bool = False
    #: An armed RED+ECN switch queue marked the packet en route; pacing
    #: transports echo this on ACKs and shrink their congestion window.
    ecn: bool = False


@dataclass(frozen=True)
class FaultDecision:
    """One interposer verdict for one transmission."""

    drop: bool = False
    corrupt: bool = False
    extra_delay_ns: int = 0

    def __post_init__(self) -> None:
        if self.extra_delay_ns < 0:
            raise ValueError(f"negative fault delay {self.extra_delay_ns}")


#: The no-fault verdict (shared: decisions are immutable).
NO_FAULT = FaultDecision()


class _Port:
    """One direction of a node's link: FIFO occupancy bookkeeping."""

    __slots__ = ("busy_until",)

    def __init__(self) -> None:
        self.busy_until = 0

    def reserve(self, now: int, duration: int, earliest: int = 0) -> tuple[int, int]:
        """Occupy the port for ``duration`` starting no earlier than
        ``max(now, earliest, busy_until)``; returns (start, end)."""
        start = max(now, earliest, self.busy_until)
        end = start + duration
        self.busy_until = end
        return start, end


class Fabric:
    """Message transport over a :class:`Topology`."""

    def __init__(self, sim: Simulator, topology: Topology, net: NetworkConfig,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.topology = topology
        self.net = net
        self.tracer = tracer or Tracer(enabled=False)
        self._egress: Dict[str, _Port] = {n: _Port() for n in topology.nodes}
        self._ingress: Dict[str, _Port] = {n: _Port() for n in topology.nodes}
        #: Per-switch *output* ports, keyed (switch, next_vertex); created
        #: lazily the first time a routed path crosses them.  Star (and any
        #: topology whose ``route`` returns ``None``) never touches these.
        self._switch_ports: Dict[tuple, _Port] = {}
        self._rx_handlers: Dict[str, List[Callable[[DeliveredMessage], None]]] = {
            n: [] for n in topology.nodes
        }
        self._rx_filters: Dict[str, List[Callable[[DeliveredMessage], bool]]] = {
            n: [] for n in topology.nodes
        }
        #: Fault interposer (:class:`repro.faults.FaultPlan` attachment);
        #: ``None`` keeps the fabric perfectly lossless.
        self.interposer = None
        #: Finite switch-queue model (:class:`repro.net.queues.SwitchQueues`);
        #: ``None`` keeps switch output ports unbounded (pre-queue timing,
        #: byte for byte).
        self.queues = None
        #: Per-node transport registry: reliable transports announce
        #: themselves here so a receiver can complete the sender's
        #: oracle delivery event (see :mod:`repro.nic.transport`).
        self.transports: Dict[str, object] = {}
        #: Validation probes: called at transmit time with
        #: ``(msg, sent_at, egress_end, delivered_at)`` -- the attachment
        #: point for :mod:`repro.validate` fabric-ordering monitors.
        #: Dropped transmissions are not probed (they never deliver).
        self.probes: List[Callable[[Message, int, int, int], None]] = []
        self.stats = {"messages": 0, "bytes": 0}

    # ------------------------------------------------------------- handlers
    def register_rx(self, node: str, handler: Callable[[DeliveredMessage], None]) -> None:
        """Register a destination-NIC callback for messages landing at ``node``."""
        self.topology.index(node)
        self._rx_handlers[node].append(handler)

    def register_rx_filter(self, node: str,
                           fltr: Callable[[DeliveredMessage], bool]) -> None:
        """Interpose ``fltr`` ahead of ``node``'s rx handlers.  A filter
        returning ``False`` consumes the delivery: handlers do not run and
        the transmit event never fires."""
        self.topology.index(node)
        self._rx_filters[node].append(fltr)

    def install_interposer(self, interposer) -> None:
        """Attach a fault interposer (at most one; see module docstring)."""
        if self.interposer is not None:
            raise RuntimeError("fabric already has a fault interposer")
        self.interposer = interposer

    def enable_queues(self, config, streams=None):
        """Arm finite switch output-port queues (at most once).

        ``config`` is a :class:`repro.config.QueueConfig`; ``streams`` a
        :class:`repro.sim.rng.RandomStreams` (required for RED, whose
        marking draws come from dedicated per-port substreams).  Returns
        the installed :class:`repro.net.queues.SwitchQueues`.
        """
        from repro.net.queues import SwitchQueues

        if self.queues is not None:
            raise RuntimeError("fabric already has switch queues")
        self.queues = SwitchQueues(config, streams)
        return self.queues

    # --------------------------------------------------------------- sending
    def transmit(self, msg: Message) -> Event:
        """Inject ``msg`` at its source now; returns the delivery event.

        The event fires at the destination's delivery time with the
        :class:`DeliveredMessage`; registered rx handlers at the
        destination run at the same instant (before event waiters, since
        handler dispatch is part of the delivery callback).  If a fault
        interposer drops the message, or an rx filter consumes it, the
        event never fires.
        """
        now = self.sim.now
        self.topology.index(msg.src)
        self.topology.index(msg.dst)
        ser = self.net.serialization_ns(msg.nbytes)
        verdict = (self.interposer.on_transmit(msg, now)
                   if self.interposer is not None else NO_FAULT)

        # The sender spends the egress bandwidth whether or not the
        # message survives the wire.  Tracer calls short-circuit on the
        # enabled flag *at the call site* so a traceless sweep never pays
        # for the kwargs dicts.
        tracer = self.tracer
        traced = tracer.enabled
        _, egress_end = self._egress[msg.src].reserve(now, ser)
        if traced:
            tracer.point(now, msg.src, "fabric", "tx",
                         msg_id=msg.msg_id, dst=msg.dst, nbytes=msg.nbytes)
        done = self.sim.event(name=f"deliver:{msg.msg_id}")
        self.stats["messages"] += 1
        self.stats["bytes"] += msg.nbytes

        if verdict.drop:
            # Lost in the fabric: no ingress occupancy, no delivery, no
            # probe -- the delivery event simply never fires.
            if traced:
                tracer.point(now, msg.src, "fault", "drop",
                             msg_id=msg.msg_id, dst=msg.dst, nbytes=msg.nbytes)
            return done

        # Head reaches the destination port once it propagates the path;
        # it cannot enter the wire before its turn at the egress port.
        route = self.topology.route(msg.src, msg.dst)
        ecn_marked = False
        if route is None:
            # Endpoint-contention-only (the paper's star): propagation is
            # one closed-form number, contention lives at the endpoints.
            head_at_ingress = (egress_end - ser
                               + self.topology.path_latency_ns(msg.src, msg.dst)
                               + verdict.extra_delay_ns)
        else:
            # Hop-by-hop cut-through: the head crosses each link, pays each
            # switch, and must win that switch's output port toward the
            # next vertex before entering the next link.  Ports serialize
            # in transmit order (an analytic approximation: reservations
            # happen up front, not as the head actually arrives).
            topo = self.topology
            ports = self._switch_ports
            queues = self.queues
            head = egress_end - ser
            last = len(route) - 1
            for i in range(1, last + 1):
                head += topo.segment_latency_ns(route[i - 1], route[i])
                if i < last:
                    head += topo.switch_latency_ns
                    key = (route[i], route[i + 1])
                    port = ports.get(key)
                    if port is None:
                        port = ports[key] = _Port()
                    if queues is None:
                        head, _ = port.reserve(now, ser, earliest=head)
                    else:
                        head, marked = queues.admit(key, port, msg, now, head, ser)
                        if head is None:
                            # Queue overflow / RED drop: like an interposer
                            # drop -- no ingress occupancy, no delivery, no
                            # probe; the delivery event never fires.
                            if traced:
                                tracer.point(now, route[i], "queue", "drop",
                                             msg_id=msg.msg_id, dst=msg.dst,
                                             nbytes=msg.nbytes)
                            return done
                        if marked:
                            ecn_marked = True
            head_at_ingress = head + verdict.extra_delay_ns
        _, ingress_end = self._ingress[msg.dst].reserve(now, ser, earliest=head_at_ingress)
        delivery_time = ingress_end
        if self.interposer is not None:
            # NIC rx stall windows defer delivery past port occupancy.
            delivery_time = self.interposer.adjust_delivery(msg.dst, delivery_time)
        delivered = DeliveredMessage(msg, sent_at=now, delivered_at=delivery_time,
                                     corrupted=verdict.corrupt, ecn=ecn_marked)
        if verdict.corrupt and traced:
            tracer.point(now, msg.src, "fault", "corrupt",
                         msg_id=msg.msg_id, dst=msg.dst)

        # Bound method, not a closure: pending deliveries live on the
        # event heap and must pickle for repro.checkpoint snapshots.
        self.sim.call_later(delivery_time - now, self._deliver, delivered, done)
        if self.probes:
            for probe in self.probes:
                probe(msg, now, egress_end, delivery_time)
        return done

    def _deliver(self, delivered: DeliveredMessage, done: Event) -> None:
        """Delivery instant: filters, rx handlers, then the waiter event."""
        msg = delivered.message
        for fltr in self._rx_filters[msg.dst]:
            if not fltr(delivered):
                return
        tracer = self.tracer
        if tracer.enabled:
            tracer.point(self.sim.now, msg.dst, "fabric", "rx",
                         msg_id=msg.msg_id, src=msg.src, nbytes=msg.nbytes)
        for handler in self._rx_handlers[msg.dst]:
            handler(delivered)
        done.succeed(delivered)

    # ------------------------------------------------------------ estimates
    def uncontended_latency_ns(self, src: str, dst: str, nbytes: int) -> int:
        """Closed-form delivery latency with idle ports (for tests/docs)."""
        return self.net.serialization_ns(nbytes) + self.topology.path_latency_ns(src, dst)
