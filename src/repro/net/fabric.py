"""The fabric: message transport with cut-through timing and port contention.

Timing model (see package docstring): for a message of ``n`` bytes,

* the source **egress port** is occupied for ``ser(n)`` starting when the
  message reaches the head of that port's queue;
* the head of the message propagates along the path
  (``topology.path_latency_ns``);
* the destination **ingress port** is occupied for ``ser(n)`` starting
  when the head arrives (or when the port frees, whichever is later);
* the message is *delivered* (last byte in target memory) when ingress
  occupation ends.

This reproduces the uncontended latency ``ser(n) + 2*link + switch`` of
the paper's star while serializing concurrent senders at the endpoints --
the only contention points of a star with a non-blocking switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.config import NetworkConfig
from repro.net.packet import Message
from repro.net.topology import Topology
from repro.sim import Event, Simulator, Tracer

__all__ = ["DeliveredMessage", "Fabric"]


@dataclass(frozen=True)
class DeliveredMessage:
    """What the destination NIC sees when a message lands."""

    message: Message
    sent_at: int       # entered the source egress queue
    delivered_at: int  # last byte in destination memory


class _Port:
    """One direction of a node's link: FIFO occupancy bookkeeping."""

    __slots__ = ("busy_until",)

    def __init__(self) -> None:
        self.busy_until = 0

    def reserve(self, now: int, duration: int, earliest: int = 0) -> tuple[int, int]:
        """Occupy the port for ``duration`` starting no earlier than
        ``max(now, earliest, busy_until)``; returns (start, end)."""
        start = max(now, earliest, self.busy_until)
        end = start + duration
        self.busy_until = end
        return start, end


class Fabric:
    """Message transport over a :class:`Topology`."""

    def __init__(self, sim: Simulator, topology: Topology, net: NetworkConfig,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.topology = topology
        self.net = net
        self.tracer = tracer or Tracer(enabled=False)
        self._egress: Dict[str, _Port] = {n: _Port() for n in topology.nodes}
        self._ingress: Dict[str, _Port] = {n: _Port() for n in topology.nodes}
        self._rx_handlers: Dict[str, List[Callable[[DeliveredMessage], None]]] = {
            n: [] for n in topology.nodes
        }
        #: Validation probes: called at transmit time with
        #: ``(msg, sent_at, egress_end, delivered_at)`` -- the attachment
        #: point for :mod:`repro.validate` fabric-ordering monitors.
        self.probes: List[Callable[[Message, int, int, int], None]] = []
        self.stats = {"messages": 0, "bytes": 0}

    # ------------------------------------------------------------- handlers
    def register_rx(self, node: str, handler: Callable[[DeliveredMessage], None]) -> None:
        """Register a destination-NIC callback for messages landing at ``node``."""
        self.topology.index(node)
        self._rx_handlers[node].append(handler)

    # --------------------------------------------------------------- sending
    def transmit(self, msg: Message) -> Event:
        """Inject ``msg`` at its source now; returns the delivery event.

        The event fires at the destination's delivery time with the
        :class:`DeliveredMessage`; registered rx handlers at the
        destination run at the same instant (before event waiters, since
        handler dispatch is part of the delivery callback).
        """
        now = self.sim.now
        self.topology.index(msg.src)
        self.topology.index(msg.dst)
        ser = self.net.serialization_ns(msg.nbytes)
        head_lat = self.topology.path_latency_ns(msg.src, msg.dst)

        _, egress_end = self._egress[msg.src].reserve(now, ser)
        # Head reaches the destination port once it propagates the path;
        # it cannot enter the wire before its turn at the egress port.
        head_at_ingress = egress_end - ser + head_lat
        _, ingress_end = self._ingress[msg.dst].reserve(now, ser, earliest=head_at_ingress)
        delivery_time = ingress_end

        self.tracer.point(now, msg.src, "fabric", "tx",
                          msg_id=msg.msg_id, dst=msg.dst, nbytes=msg.nbytes)
        done = self.sim.event(name=f"deliver:{msg.msg_id}")
        delivered = DeliveredMessage(msg, sent_at=now, delivered_at=delivery_time)

        def _deliver() -> None:
            self.tracer.point(self.sim.now, msg.dst, "fabric", "rx",
                              msg_id=msg.msg_id, src=msg.src, nbytes=msg.nbytes)
            for handler in self._rx_handlers[msg.dst]:
                handler(delivered)
            done.succeed(delivered)

        self.sim.schedule(delivery_time - now, _deliver)
        self.stats["messages"] += 1
        self.stats["bytes"] += msg.nbytes
        for probe in self.probes:
            probe(msg, now, egress_end, delivery_time)
        return done

    # ------------------------------------------------------------ estimates
    def uncontended_latency_ns(self, src: str, dst: str, nbytes: int) -> int:
        """Closed-form delivery latency with idle ports (for tests/docs)."""
        return self.net.serialization_ns(nbytes) + self.topology.path_latency_ns(src, dst)
