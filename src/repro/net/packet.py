"""Wire message descriptors.

A :class:`Message` is the unit the NIC hands to the fabric: one RDMA
operation's worth of bytes plus routing/metadata.  Payload bytes are
carried out-of-band (the NIC DMA-reads them at the source and DMA-writes
them at the target); the fabric only needs sizes for timing.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Message", "MessageKind"]

_msg_ids = itertools.count(1)


class MessageKind(str, enum.Enum):
    """RDMA operation classes carried by the fabric."""

    PUT = "put"            # one-sided write
    GET_REQUEST = "get_request"
    GET_REPLY = "get_reply"
    SEND = "send"          # two-sided send (HDN baseline)
    ACK = "ack"            # hardware-level put acknowledgment
    NACK = "nack"          # reliable-transport gap/corruption report

    @property
    def is_control(self) -> bool:
        """Control packets (ACK/NACK) are never sequenced or retransmitted."""
        return self in (MessageKind.ACK, MessageKind.NACK)


@dataclass(slots=True)
class Message:
    """One fabric-level message.

    ``slots=True``: messages are the unit of fabric work, so the per-message
    ``__dict__`` was measurable churn on large sweeps.
    """

    src: str
    dst: str
    nbytes: int
    kind: MessageKind = MessageKind.PUT
    payload: Optional[bytes] = None
    #: Target-side virtual address for puts (None for sends: matched by tag).
    remote_addr: Optional[int] = None
    #: Two-sided match tag (sends) or triggered-op identity (puts).
    tag: Optional[int] = None
    #: Reliable-transport sequence number within the (src, dst) flow --
    #: stamped by :class:`repro.nic.transport.ReliableTransport` on data
    #: messages; carries the cumulative/expected sequence on ACK/NACK.
    #: ``None`` when the reliability layer is off (the default).
    seq: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"negative message size {self.nbytes}")
        if self.payload is not None and len(self.payload) != self.nbytes:
            raise ValueError(
                f"payload length {len(self.payload)} != declared size {self.nbytes}"
            )
        if self.src == self.dst:
            raise ValueError(f"message to self ({self.src}); use local copy instead")

    def __repr__(self) -> str:  # pragma: no cover
        seq = f" seq={self.seq}" if self.seq is not None else ""
        return (f"<Message #{self.msg_id} {self.kind.value} {self.src}->{self.dst} "
                f"{self.nbytes}B tag={self.tag}{seq}>")
