"""Finite per-switch output-port queues with pluggable discipline.

The base fabric reserves switch output ports as unbounded FIFOs: every
arrival eventually gets a slot, however deep the backlog.  Arming a
:class:`SwitchQueues` on a fabric (:meth:`repro.net.Fabric.enable_queues`)
bounds each output port to :class:`repro.config.QueueConfig.capacity_bytes`
of queued payload and applies a discipline to arrivals:

* ``drop-tail`` -- arrivals that would overflow the capacity are dropped
  (the delivery event simply never fires, exactly like an interposer
  drop, so the reliable transport's retransmit machinery recovers them);
* ``red`` -- random early detection: between ``red_min_bytes`` and
  ``red_max_bytes`` of occupancy an arrival is dropped with probability
  ramping linearly up to ``red_max_prob``; at/above ``red_max_bytes`` it
  is always dropped.  With ``ecn=True`` RED *marks* instead of dropping:
  the congestion bit rides the :class:`~repro.net.fabric.DeliveredMessage`
  to the receiver, which echoes it on ACKs so a pacing transport can back
  off (see :mod:`repro.nic.transport`).  Only the capacity brick wall
  still drops.

Determinism contract (mirrors :class:`repro.faults.FaultPlan`):

* every RED draw comes from a dedicated per-port
  :class:`repro.sim.rng.RandomStreams` substream named
  ``queue.red.<switch>-><next>`` -- adding ports, flows, or faults never
  shifts another port's draws;
* occupancy at or below ``red_min_bytes`` -- in particular the zero-load
  case -- never draws, so an armed-but-uncongested fabric consumes no
  randomness and stays byte-identical to an unarmed one;
* queue drop/mark counters live in :attr:`SwitchQueues.stats`, *not* in
  ``fabric.stats`` (which stays exactly ``{messages, bytes}``).

Occupancy model: each admitted message holds ``nbytes`` of queue space
until its reservation drains off the port (the ``end`` returned by
``_Port.reserve``).  An arrival whose head reaches the port at ``head``
sees the backlog of reservations still draining at that instant -- a
cut-through approximation consistent with the fabric's up-front
reservation timing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import QueueConfig
from repro.sim.rng import RandomStreams

__all__ = ["SwitchQueues"]


class _PortQueue:
    """Backlog bookkeeping for one switch output port."""

    __slots__ = ("entries", "depth_bytes")

    def __init__(self) -> None:
        #: (drain_end_ns, nbytes), kept in end order (reserve is FIFO).
        self.entries: deque = deque()
        self.depth_bytes = 0

    def prune(self, head_ns: int) -> None:
        """Forget reservations fully drained by ``head_ns``."""
        entries = self.entries
        while entries and entries[0][0] <= head_ns:
            _, nbytes = entries.popleft()
            self.depth_bytes -= nbytes


class SwitchQueues:
    """Per-switch output-port finite queues (see module docstring).

    Armed on a fabric via :meth:`repro.net.Fabric.enable_queues`; the
    fabric consults :meth:`admit` once per switch output port a routed
    message crosses.  Star topologies route entirely at the endpoints
    and never reach this object.
    """

    def __init__(self, config: QueueConfig,
                 streams: Optional[RandomStreams] = None):
        if config.discipline == "red" and streams is None:
            raise ValueError(
                "RED needs a RandomStreams for its seeded marking draws")
        self.config = config
        self._streams = streams
        self._queues: Dict[tuple, _PortQueue] = {}
        self._rngs: Dict[tuple, object] = {}
        #: Monitoring counters -- deliberately *not* folded into
        #: ``fabric.stats`` (pinned to {messages, bytes}).
        self.stats = {"enqueued": 0, "dropped": 0, "ecn_marked": 0,
                      "max_depth_bytes": 0}
        #: Telemetry probes called ``(now_ns, port_key, depth_bytes)``
        #: after every admission -- the :mod:`repro.metrics` attachment
        #: point for queue-depth time series.
        self.probes: List[Callable[[int, tuple, int], None]] = []

    # ------------------------------------------------------------- verdicts
    def red_probability(self, occupancy: int) -> float:
        """RED drop/mark probability for an arrival seeing ``occupancy``
        queued bytes.  Pure (no draw): 0 at/below ``red_min_bytes``,
        linear ramp to ``red_max_prob`` at ``red_max_bytes``, 1 above."""
        cfg = self.config
        if occupancy <= cfg.red_min_bytes:
            return 0.0
        if occupancy >= cfg.red_max_bytes:
            return 1.0
        span = cfg.red_max_bytes - cfg.red_min_bytes
        return cfg.red_max_prob * (occupancy - cfg.red_min_bytes) / span

    def decide(self, key: tuple, occupancy: int, nbytes: int) -> Tuple[bool, bool]:
        """``(drop, mark)`` verdict for an arrival of ``nbytes`` finding
        ``occupancy`` bytes queued at port ``key``."""
        cfg = self.config
        if occupancy + nbytes > cfg.capacity_bytes:
            return True, False
        if cfg.discipline == "red":
            p = self.red_probability(occupancy)
            if p <= 0.0:
                return False, False
            if p < 1.0 and self._rng(key).random() >= p:
                return False, False
            if cfg.ecn:
                return False, True
            return True, False
        return False, False

    # ------------------------------------------------------------ admission
    def admit(self, key: tuple, port, msg, now: int, head: int,
              ser: int) -> Tuple[Optional[int], bool]:
        """Admit ``msg``'s head arriving at output port ``key`` at ``head``.

        Returns ``(head_start, ecn_marked)`` after reserving the port, or
        ``(None, False)`` if the discipline drops the arrival (the caller
        must abandon the transmission: no ingress, no probe)."""
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = _PortQueue()
        q.prune(head)
        drop, mark = self.decide(key, q.depth_bytes, msg.nbytes)
        if drop:
            self.stats["dropped"] += 1
            return None, False
        start, end = port.reserve(now, ser, earliest=head)
        q.entries.append((end, msg.nbytes))
        q.depth_bytes += msg.nbytes
        self.stats["enqueued"] += 1
        if mark:
            self.stats["ecn_marked"] += 1
        if q.depth_bytes > self.stats["max_depth_bytes"]:
            self.stats["max_depth_bytes"] = q.depth_bytes
        if self.probes:
            for probe in self.probes:
                probe(now, key, q.depth_bytes)
        return start, mark

    # ------------------------------------------------------------ reporting
    def counters(self) -> Dict[str, int]:
        """Non-zero counters (merged into RunRecord transport_counters)."""
        return {f"queue_{k}": v for k, v in self.stats.items() if v}

    def _rng(self, key: tuple):
        rng = self._rngs.get(key)
        if rng is None:
            name = f"queue.red.{key[0]}->{key[1]}"
            rng = self._rngs[key] = self._streams.stream(name)
        return rng
