"""Datacenter-scale switch fabrics: fat-tree, dragonfly, torus.

The paper evaluates a star; scale-out studies need real topologies.  Each
class here names its hosts ``node0..nodeN-1`` (what :class:`repro.cluster.
Cluster` expects), computes a *deterministic* route -- a vertex path
``[src, switch..., dst]`` -- for every host pair, and derives path latency
and hop count from that route.  The :class:`repro.net.fabric.Fabric`
consumes the route for hop-by-hop output-port contention; the closed-form
uncontended latency stays ``ser(n) + links*link_lat + switches*switch_lat``.

Routing disciplines (all minimal, all provably deadlock-free):

* **fat-tree** -- up/down (valley-free) routing: up to the lowest common
  ancestor tier, then down.  The up-path switch choice hashes on the
  destination host index (deterministic ECMP), so a pair always uses the
  same core.
* **dragonfly** -- minimal ``l-g-l`` routing: at most one local hop to the
  router holding the global link, one global hop, one local hop to the
  destination router.
* **torus** -- dimension-order routing, shortest wrap direction per
  dimension (ties break toward +1), which is the classic deadlock-free
  e-cube discipline.

``make_topology`` parses the ``NetworkConfig.topology`` spec string
(``"star"``, ``"fat-tree:k=4"``, ``"torus:4x4"``, ``"dragonfly:a=4,g=9"``)
so topology choice rides in existing config -- no new fingerprint fields.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.topology import StarTopology, Topology

__all__ = [
    "DragonflyTopology",
    "FatTreeTopology",
    "SwitchFabricTopology",
    "TorusTopology",
    "make_topology",
]


class SwitchFabricTopology(Topology):
    """Base for explicitly-routed multi-switch fabrics.

    Subclasses implement :meth:`_route` returning the vertex path for a
    distinct host pair; latency and hop count derive from it.  Routes are
    cached -- topologies are immutable, so a pair's path never changes
    (determinism is also a property-tested invariant).
    """

    def __init__(self, nodes: Sequence[str], link_latency_ns: int = 100,
                 switch_latency_ns: int = 100):
        super().__init__(nodes)
        if link_latency_ns < 0 or switch_latency_ns < 0:
            raise ValueError("latencies must be non-negative")
        self.link_latency_ns = link_latency_ns
        self.switch_latency_ns = switch_latency_ns
        self._routes: Dict[Tuple[str, str], List[str]] = {}

    # -- subclass contract -------------------------------------------------
    def _route(self, src: str, dst: str) -> List[str]:
        raise NotImplementedError

    def diameter_hops(self) -> int:
        """Closed-form worst-case switch count over all host pairs."""
        raise NotImplementedError

    # -- Topology interface ------------------------------------------------
    def route(self, src: str, dst: str) -> Optional[List[str]]:
        if src == dst:
            return None
        key = (src, dst)
        path = self._routes.get(key)
        if path is None:
            self.index(src), self.index(dst)
            path = self._route(src, dst)
            if path[0] != src or path[-1] != dst or len(path) < 3:
                raise AssertionError(f"malformed route {path} for {src}->{dst}")
            self._routes[key] = path
        return path

    def segment_latency_ns(self, u: str, v: str) -> int:
        return self.link_latency_ns

    def path_latency_ns(self, src: str, dst: str) -> int:
        if src == dst:
            self.index(src)
            return 0
        path = self.route(src, dst)
        total = (len(path) - 2) * self.switch_latency_ns
        for a, b in zip(path, path[1:]):
            total += self.segment_latency_ns(a, b)
        return total

    def hop_count(self, src: str, dst: str) -> int:
        if src == dst:
            self.index(src)
            return 0
        return len(self.route(src, dst)) - 2


class FatTreeTopology(SwitchFabricTopology):
    """k-ary fat-tree (Al-Fares et al.): k pods of k/2 edge + k/2 agg
    switches, (k/2)^2 cores, up to k^3/4 hosts.  ``n_nodes`` may be less
    than capacity; hosts fill edge switches in order."""

    def __init__(self, n_nodes: int, k: Optional[int] = None,
                 link_latency_ns: int = 100, switch_latency_ns: int = 100):
        if n_nodes < 1:
            raise ValueError("fat-tree needs >=1 host")
        if k is None:
            k = 2
            while k ** 3 // 4 < n_nodes:
                k += 2
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity k must be even and >=2, got {k}")
        if k ** 3 // 4 < n_nodes:
            raise ValueError(f"k={k} fat-tree holds {k ** 3 // 4} hosts, "
                             f"need {n_nodes}")
        self.k = k
        self.half = k // 2
        self.hosts_per_pod = self.half * self.half
        super().__init__([f"node{i}" for i in range(n_nodes)],
                         link_latency_ns, switch_latency_ns)

    # host i lives in pod i // (k/2)^2 on edge switch (i % (k/2)^2) // (k/2)
    def _locate(self, host: str) -> Tuple[int, int, int]:
        i = self.index(host)
        pod, j = divmod(i, self.hosts_per_pod)
        edge, port = divmod(j, self.half)
        return pod, edge, port

    @staticmethod
    def _edge(pod: int, e: int) -> str:
        return f"ftE{pod}.{e}"

    @staticmethod
    def _agg(pod: int, a: int) -> str:
        return f"ftA{pod}.{a}"

    @staticmethod
    def _core(c: int) -> str:
        return f"ftC{c}"

    def _route(self, src: str, dst: str) -> List[str]:
        sp, se, _ = self._locate(src)
        dp, de, dport = self._locate(dst)
        if (sp, se) == (dp, de):
            return [src, self._edge(sp, se), dst]
        # Deterministic ECMP: hash the up-path on the destination host's
        # in-pod position so every (src, dst) pair pins one agg/core.
        a = dport % self.half
        if sp == dp:
            return [src, self._edge(sp, se), self._agg(sp, a),
                    self._edge(dp, de), dst]
        c = a * self.half + de % self.half
        return [src, self._edge(sp, se), self._agg(sp, a), self._core(c),
                self._agg(dp, a), self._edge(dp, de), dst]

    def diameter_hops(self) -> int:
        n = len(self.nodes)
        if n <= self.half:
            return 1  # all hosts share one edge switch
        if n <= self.hosts_per_pod:
            return 3  # one pod: edge-agg-edge
        return 5      # cross-pod: edge-agg-core-agg-edge


class DragonflyTopology(SwitchFabricTopology):
    """Dragonfly (Kim et al.): ``g`` groups of ``a`` fully-meshed routers,
    ``p`` hosts per router, all-to-all global links between groups.  The
    global link for group pair (g1, g2) hangs off router
    ``((g2 - g1 - 1) mod g) mod a`` in g1 (and symmetrically in g2), which
    distributes the g-1 global links round-robin over a group's routers."""

    def __init__(self, n_nodes: int, a: Optional[int] = None,
                 g: Optional[int] = None, p: Optional[int] = None,
                 link_latency_ns: int = 100, switch_latency_ns: int = 100,
                 global_latency_ns: Optional[int] = None):
        if n_nodes < 1:
            raise ValueError("dragonfly needs >=1 host")
        if a is None and g is None and p is None:
            # Balanced-ish auto-sizing: p = a, g = a + 1 (one global link
            # per router); smallest a whose a*a*(a+1) capacity fits.
            a = 1
            while a * a * (a + 1) < n_nodes:
                a += 1
            p, g = a, a + 1
        a = a or 4
        g = g or (a + 1)
        p = p or a
        if a < 1 or g < 1 or p < 1:
            raise ValueError("dragonfly a/g/p must all be >=1")
        if g > 1 and a < 1:
            raise ValueError("multi-group dragonfly needs >=1 router/group")
        if a * g * p < n_nodes:
            raise ValueError(f"dragonfly(a={a}, g={g}, p={p}) holds "
                             f"{a * g * p} hosts, need {n_nodes}")
        self.a, self.g, self.p = a, g, p
        self.global_latency_ns = (global_latency_ns if global_latency_ns
                                  is not None else link_latency_ns)
        super().__init__([f"node{i}" for i in range(n_nodes)],
                         link_latency_ns, switch_latency_ns)

    def _locate(self, host: str) -> Tuple[int, int]:
        i = self.index(host)
        grp, rem = divmod(i, self.a * self.p)
        return grp, rem // self.p

    @staticmethod
    def _router(grp: int, r: int) -> str:
        return f"dfR{grp}.{r}"

    def _gateway(self, src_grp: int, dst_grp: int) -> int:
        """Router index in ``src_grp`` owning the global link to ``dst_grp``."""
        return ((dst_grp - src_grp - 1) % self.g) % self.a

    def _route(self, src: str, dst: str) -> List[str]:
        sg, sr = self._locate(src)
        dg, dr = self._locate(dst)
        if sg == dg:
            if sr == dr:
                return [src, self._router(sg, sr), dst]
            return [src, self._router(sg, sr), self._router(dg, dr), dst]
        # Minimal l-g-l: local to the egress gateway, global, local to dst.
        ga, gb = self._gateway(sg, dg), self._gateway(dg, sg)
        path = [src, self._router(sg, sr)]
        if ga != sr:
            path.append(self._router(sg, ga))
        path.append(self._router(dg, gb))
        if gb != dr:
            path.append(self._router(dg, dr))
        path.append(dst)
        return path

    def segment_latency_ns(self, u: str, v: str) -> int:
        # A global (inter-group) link connects routers of different groups.
        if u.startswith("dfR") and v.startswith("dfR"):
            if u.split(".", 1)[0] != v.split(".", 1)[0]:
                return self.global_latency_ns
        return self.link_latency_ns

    def diameter_hops(self) -> int:
        n = len(self.nodes)
        if n <= self.p:
            return 1
        if n <= self.a * self.p:
            return 2
        return 4 if self.a > 1 else 2  # a == 1: every router is a gateway


class TorusTopology(SwitchFabricTopology):
    """k-ary n-cube: one host per router, wraparound links, dimension-order
    routing taking the shorter wrap direction (ties toward +1)."""

    def __init__(self, dims: Sequence[int], link_latency_ns: int = 100,
                 switch_latency_ns: int = 100):
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 1 for d in dims):
            raise ValueError(f"torus dims must be positive, got {dims}")
        self.dims = dims
        n = math.prod(dims)
        super().__init__([f"node{i}" for i in range(n)],
                         link_latency_ns, switch_latency_ns)

    def _coord(self, host: str) -> Tuple[int, ...]:
        i = self.index(host)
        coord = []
        for d in reversed(self.dims):
            i, c = divmod(i, d)
            coord.append(c)
        return tuple(reversed(coord))

    @staticmethod
    def _router(coord: Tuple[int, ...]) -> str:
        return "tR" + ".".join(str(c) for c in coord)

    def _route(self, src: str, dst: str) -> List[str]:
        cur = list(self._coord(src))
        goal = self._coord(dst)
        path = [src, self._router(tuple(cur))]
        for dim, size in enumerate(self.dims):
            fwd = (goal[dim] - cur[dim]) % size
            if not fwd:
                continue
            back = size - fwd
            step = 1 if fwd <= back else -1
            for _ in range(min(fwd, back)):
                cur[dim] = (cur[dim] + step) % size
                path.append(self._router(tuple(cur)))
        path.append(dst)
        return path

    def diameter_hops(self) -> int:
        return sum(d // 2 for d in self.dims) + 1


# --------------------------------------------------------------------------
# Spec-string factory
# --------------------------------------------------------------------------

#: One-line grammar reminder appended to every spec-parse error so CLI
#: users see the supported shapes without digging into the docs.
_SPEC_GRAMMAR = ("star, fat-tree[:k=K], torus[:AxB...], or "
                 "dragonfly[:a=A,g=G,p=P]")


def _parse_kv(body: str) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for part in filter(None, body.split(",")):
        key, _, val = part.partition("=")
        if not val:
            raise ValueError(f"malformed topology parameter {part!r}: "
                             f"expected key=INT (supported specs: "
                             f"{_SPEC_GRAMMAR})")
        try:
            out[key.strip()] = int(val)
        except ValueError:
            raise ValueError(
                f"topology parameter {part.strip()!r}: {val.strip()!r} is "
                f"not an integer (supported specs: {_SPEC_GRAMMAR})"
            ) from None
    return out


def _auto_torus_dims(n: int) -> Tuple[int, ...]:
    """Near-square 2D factorization; primes degrade to a 1D ring."""
    best = 1
    for d in range(2, int(math.isqrt(n)) + 1):
        if n % d == 0:
            best = d
    return (n,) if best == 1 else (best, n // best)


def make_topology(spec: str, n_nodes: int, link_latency_ns: int = 100,
                  switch_latency_ns: int = 100) -> Topology:
    """Build the topology named by a ``NetworkConfig.topology`` spec string.

    Grammar: ``name[:params]`` with ``star``, ``fat-tree[:k=K]``,
    ``torus[:AxBxC...]``, ``dragonfly[:a=A,g=G,p=P]``.  Parameters are
    optional -- omitted ones auto-size to fit ``n_nodes``.
    """
    name, _, body = spec.strip().partition(":")
    name = name.strip().lower()
    if name == "star":
        if body:
            raise ValueError(f"star takes no parameters, got {body!r}")
        return StarTopology([f"node{i}" for i in range(n_nodes)],
                            link_latency_ns, switch_latency_ns)
    if name in ("fat-tree", "fattree"):
        params = _parse_kv(body)
        unknown = set(params) - {"k"}
        if unknown:
            raise ValueError(f"unknown fat-tree parameters {sorted(unknown)}")
        return FatTreeTopology(n_nodes, k=params.get("k"),
                               link_latency_ns=link_latency_ns,
                               switch_latency_ns=switch_latency_ns)
    if name == "dragonfly":
        params = _parse_kv(body)
        unknown = set(params) - {"a", "g", "p", "global_latency_ns"}
        if unknown:
            raise ValueError(f"unknown dragonfly parameters {sorted(unknown)}")
        return DragonflyTopology(n_nodes, a=params.get("a"), g=params.get("g"),
                                 p=params.get("p"),
                                 link_latency_ns=link_latency_ns,
                                 switch_latency_ns=switch_latency_ns,
                                 global_latency_ns=params.get("global_latency_ns"))
    if name == "torus":
        if body:
            try:
                dims = tuple(int(d) for d in body.replace(" ", "").split("x"))
            except ValueError:
                raise ValueError(
                    f"torus dimensions {body!r}: expected INTxINT... like "
                    f"torus:8x8 (supported specs: {_SPEC_GRAMMAR})") from None
        else:
            dims = _auto_torus_dims(n_nodes)
        if math.prod(dims) != n_nodes:
            raise ValueError(f"torus {'x'.join(map(str, dims))} has "
                             f"{math.prod(dims)} hosts, cluster has {n_nodes}")
        return TorusTopology(dims, link_latency_ns=link_latency_ns,
                             switch_latency_ns=switch_latency_ns)
    raise ValueError(
        f"unknown topology spec {spec!r}; expected {_SPEC_GRAMMAR}")
