"""Cluster topologies.

The paper evaluates a star (single switch).  :class:`Topology` is the
general interface -- a path cost (propagation + switching latency) between
any two nodes -- and :class:`StarTopology` the concrete Table 2 instance.
Arbitrary graphs are supported through :class:`GraphTopology` (built on
``networkx``) for extension experiments; path latency adds per hop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["GraphTopology", "StarTopology", "Topology"]


class Topology:
    """Abstract cluster wiring: node names and inter-node path latency."""

    def __init__(self, nodes: Sequence[str]):
        if len(set(nodes)) != len(nodes):
            raise ValueError("duplicate node names in topology")
        if not nodes:
            raise ValueError("topology needs at least one node")
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self.nodes)}

    def __contains__(self, node: str) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self.nodes)

    def index(self, node: str) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}; topology has {list(self.nodes)}") from None

    def path_latency_ns(self, src: str, dst: str) -> int:
        """Head-of-message propagation latency src -> dst (excl. serialization)."""
        raise NotImplementedError

    def hop_count(self, src: str, dst: str) -> int:
        """Number of switch traversals on the path."""
        raise NotImplementedError

    def route(self, src: str, dst: str) -> Optional[List[str]]:
        """Vertex path ``[src, switch..., dst]`` for hop-by-hop fabric
        simulation, or ``None`` for endpoint-contention-only topologies
        (the star keeps the paper's exact timing model this way).  Routes
        must be deterministic: same pair, same path, every call."""
        return None

    def segment_latency_ns(self, u: str, v: str) -> int:
        """Propagation latency of the directed link ``u -> v`` on a routed
        path.  Only consulted when :meth:`route` returns a path."""
        raise NotImplementedError


class StarTopology(Topology):
    """All nodes hang off one switch (Table 2: 'Star (single switch)')."""

    def __init__(self, nodes: Sequence[str], link_latency_ns: int = 100,
                 switch_latency_ns: int = 100):
        super().__init__(nodes)
        if link_latency_ns < 0 or switch_latency_ns < 0:
            raise ValueError("latencies must be non-negative")
        self.link_latency_ns = link_latency_ns
        self.switch_latency_ns = switch_latency_ns

    def path_latency_ns(self, src: str, dst: str) -> int:
        self.index(src), self.index(dst)
        if src == dst:
            return 0
        return 2 * self.link_latency_ns + self.switch_latency_ns

    def hop_count(self, src: str, dst: str) -> int:
        self.index(src), self.index(dst)
        return 0 if src == dst else 1


class GraphTopology(Topology):
    """An arbitrary switch fabric described as a networkx graph.

    Node names are leaf endpoints; other graph vertices are switches.
    Edge attribute ``latency_ns`` (default ``link_latency_ns``) is the link
    propagation time; each intermediate vertex adds ``switch_latency_ns``.

    The graph is **copied and frozen at construction**: shortest paths are
    cached on first use, so later mutation of the caller's graph (or of
    ``self.graph``) could silently desynchronize the cache -- exactly the
    hazard link-flap fault injection would trip.  Outages are modeled by
    :mod:`repro.faults` on top of an immutable topology, never by editing
    edges.
    """

    def __init__(self, graph, endpoints: Sequence[str], link_latency_ns: int = 100,
                 switch_latency_ns: int = 100):
        import networkx as nx  # local import: optional for the core library

        super().__init__(endpoints)
        for n in endpoints:
            if n not in graph:
                raise ValueError(f"endpoint {n!r} missing from graph")
        # Private frozen copy: networkx raises on any add/remove attempt,
        # and the caller keeps ownership of (and may keep mutating) the
        # graph they passed in without affecting routing.
        self.graph = nx.freeze(graph.copy())
        self.link_latency_ns = link_latency_ns
        self.switch_latency_ns = switch_latency_ns
        self._paths: Dict[Tuple[str, str], List[str]] = {}
        self._nx = nx

    def _path(self, src: str, dst: str) -> List[str]:
        key = (src, dst)
        path = self._paths.get(key)
        if path is None:
            path = self._nx.shortest_path(self.graph, src, dst)
            self._paths[key] = path
        return path

    def path_latency_ns(self, src: str, dst: str) -> int:
        self.index(src), self.index(dst)
        if src == dst:
            return 0
        path = self._path(src, dst)
        total = 0
        for a, b in zip(path, path[1:]):
            total += int(self.graph.edges[a, b].get("latency_ns", self.link_latency_ns))
        total += self.hop_count(src, dst) * self.switch_latency_ns
        return total

    def hop_count(self, src: str, dst: str) -> int:
        if src == dst:
            return 0
        return max(0, len(self._path(src, dst)) - 2)

    def route(self, src: str, dst: str) -> Optional[List[str]]:
        if src == dst:
            return None
        return self._path(src, dst)

    def segment_latency_ns(self, u: str, v: str) -> int:
        return int(self.graph.edges[u, v].get("latency_ns", self.link_latency_ns))
