"""NIC model with Portals-4-style triggered operations (paper Section 3).

The NIC is where the paper's contribution lives:

* :mod:`~repro.nic.lookup` -- the three trigger-list lookup organizations
  discussed in Section 3.3 (linked list, bounded associative array, hash
  table), each with its own latency model;
* :mod:`~repro.nic.triggered` -- trigger entries ({network op, tag,
  counter, threshold}) and the trigger list with the Section 3.2 *relaxed
  synchronization* semantics (GPU may trigger before the CPU registers);
* :mod:`~repro.nic.device` -- the NIC device: CPU command interface,
  MMIO trigger-address FIFO, trigger processor, DMA engine, two-sided
  matching and completion notification;
* :mod:`~repro.nic.portals` -- a thin Portals-4-flavored API layer
  (counters, memory descriptors, triggered puts) matching how the paper
  describes its prototype;
* :mod:`~repro.nic.transport` -- the optional reliable transports
  (go-back-N and selective-repeat/SACK with AIMD pacing: sequence
  numbers, ACK/NACK, retransmit timers, retry budget) armed per NIC via
  :meth:`Nic.enable_reliability` for fault and congestion campaigns
  (:mod:`repro.faults`, :mod:`repro.traffic`).
"""

from repro.nic.device import Nic, PutHandle, RecvHandle
from repro.nic.transport import (ReliableTransport, SelectiveRepeatTransport,
                                 TransportError, make_transport)
from repro.nic.lookup import (
    AssociativeLookup,
    CachedLookup,
    HashLookup,
    LinkedListLookup,
    TriggerListFull,
    make_lookup,
)
from repro.nic.triggered import NetworkOp, TriggerEntry, TriggerList

__all__ = [
    "AssociativeLookup",
    "CachedLookup",
    "HashLookup",
    "LinkedListLookup",
    "NetworkOp",
    "Nic",
    "PutHandle",
    "RecvHandle",
    "ReliableTransport",
    "SelectiveRepeatTransport",
    "TransportError",
    "TriggerEntry",
    "TriggerList",
    "TriggerListFull",
    "make_lookup",
    "make_transport",
]
