"""The NIC device model.

One :class:`Nic` per node.  It owns:

* a **command interface** used by the host runtime: post-and-go operations
  (puts / gets / two-sided sends) and *deferred* operations that wait for a
  doorbell (the GDS baseline) or a trigger threshold (GPU-TN);
* the **trigger machinery** of the paper: an MMIO *trigger address* whose
  writes land in a FIFO, a trigger processor that pops the FIFO, matches
  tags against the trigger list and fires ready operations;
* a **DMA engine** that moves real bytes between the node's address space
  and the wire (so application-level correctness is end-to-end testable),
  validating RDMA registration and the scoped memory model on every access;
* target-side handling: one-sided put landing, two-sided matching with an
  unexpected-message queue, get servicing, and completion-flag writes.

Timing knobs come from :class:`repro.config.NicConfig`; see DESIGN.md §5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.config import NicConfig, ReliabilityConfig, SystemConfig
from repro.memory import Agent, Buffer, MemoryOrder, Scope
from repro.net import DeliveredMessage, Fabric, Message
from repro.net.packet import MessageKind
from repro.nic.lookup import make_lookup
from repro.nic.triggered import NetworkOp, TriggerEntry, TriggerList
from repro.sim import Event, Simulator, Store, Tracer

__all__ = ["Nic", "PutHandle", "RecvHandle", "GetHandle"]

_handle_ids = itertools.count(1)

#: Size of the MMIO window that serves as the trigger address.
_TRIGGER_WINDOW_BYTES = 64


@dataclass(slots=True)
class PutHandle:
    """Initiator-side handle for a put/send operation."""

    op: NetworkOp
    #: fires when the send buffer is reusable (NIC finished reading it)
    local: Event = None  # type: ignore[assignment]
    #: fires when the last byte lands in target memory.  In hardware this
    #: requires an ACK; here it is the simulator's oracle view, used for
    #: measurement (paper Figure 8 reports target-side completion).
    delivered: Event = None  # type: ignore[assignment]
    handle_id: int = field(default_factory=lambda: next(_handle_ids))
    #: optional (buffer, offset) the NIC writes 1 to at local completion
    local_flag: Optional[Tuple[Buffer, int]] = None


@dataclass(slots=True)
class RecvHandle:
    """Target-side handle for a two-sided receive."""

    tag: int
    local_addr: int
    nbytes: int
    complete: Event = None  # type: ignore[assignment]
    handle_id: int = field(default_factory=lambda: next(_handle_ids))


@dataclass(slots=True)
class GetHandle:
    """Initiator-side handle for a get operation."""

    op: NetworkOp
    complete: Event = None  # type: ignore[assignment]
    handle_id: int = field(default_factory=lambda: next(_handle_ids))


class Nic:
    """Per-node RDMA NIC with GPU-TN trigger extensions."""

    def __init__(self, sim: Simulator, node: str, space, mem_model, fabric: Fabric,
                 config: SystemConfig, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.node = node
        self.space = space
        self.mem = mem_model
        self.fabric = fabric
        self.config = config
        self.nc: NicConfig = config.nic
        self.tracer = tracer or Tracer(enabled=False)

        # Trigger machinery.
        lookup = make_lookup(self.nc.trigger_lookup, capacity=self.nc.max_trigger_entries)
        self.trigger_list = TriggerList(lookup, on_fire=self._on_trigger_fire)
        self._trigger_fifo: Store = Store(sim, capacity=self.nc.trigger_fifo_depth,
                                          name=f"{node}.trigfifo")
        self._trigger_addr = 0xF000_0000 + hash(node) % 0x1000 * _TRIGGER_WINDOW_BYTES
        # The trigger pump is a callback state machine, not a generator
        # process: generator frames cannot be pickled, and an always-live
        # pump generator would make every cluster un-checkpointable (see
        # repro.checkpoint).  The boot event reproduces the exact event
        # count and seq numbering the old spawn() had.
        boot = Event(sim, name=f"boot:{node}.nic.trigger-pump")
        boot.callbacks.append(self._pump_boot)
        boot.succeed()
        #: Set if the pump halted on a model error (e.g. trigger-list
        #: overflow) -- the callback-machine analogue of the old pump
        #: process's silent failure.
        self._pump_error: Optional[BaseException] = None

        # Two-sided state.
        self._posted_recvs: Dict[int, Deque[RecvHandle]] = {}
        self._unexpected: Dict[int, Deque[DeliveredMessage]] = {}

        # Completion routing for one-sided ops landing here.
        self._rx_flags: Dict[int, Tuple[Buffer, int]] = {}
        self._rx_watchers: Dict[int, List[Event]] = {}
        # Arrival-chained triggers (Portals CT-event chaining): a put
        # landing with wire_tag increments these local trigger tags, with
        # no host involvement -- the mechanism behind NIC-offloaded
        # collectives (Underwood et al., the paper's ref [40]).
        self._rx_chains: Dict[int, List[int]] = {}

        # Get servicing.
        self._pending_gets: Dict[int, GetHandle] = {}
        # Section 3.4 dynamic-trigger overrides (set around trigger() calls).
        self._active_overrides: Optional[Dict[str, Any]] = None

        fabric.register_rx(node, self._handle_rx)
        #: Reliable-transport engine; ``None`` (the default) keeps the
        #: seed's lossless fire-and-forget behavior.  Armed via
        #: :meth:`enable_reliability` before any traffic flows.
        self.transport = None
        # Validation/metrics probes: called with (kind, handle, now) for
        # kinds "send-dma-read" (payload captured off the send buffer),
        # "local-complete" (buffer-reusable flag raised), "initiate"
        # (put/send starts NIC processing) and "delivered" (payload
        # accepted at the target) -- the attachment point for
        # repro.validate completion-safety monitors and repro.metrics
        # message-latency histograms.
        self.probes: List[Callable[[str, PutHandle, int], None]] = []
        # Queue-depth probes: called with (kind, now, depth) for kinds
        # "fifo-push" / "fifo-pop" on the trigger-address FIFO -- the
        # attachment point for repro.metrics doorbell-FIFO depth series.
        self.queue_probes: List[Callable[[str, int, int], None]] = []
        self.stats = {"tx_ops": 0, "rx_puts": 0, "rx_sends": 0, "rx_gets": 0,
                      "rx_corrupt": 0, "doorbells": 0, "trigger_writes": 0}

    def _emit(self, kind: str, handle: "PutHandle") -> None:
        for probe in self.probes:
            probe(kind, handle, self.sim.now)

    # ------------------------------------------------------- reliable transport
    def enable_reliability(self, config: Optional[ReliabilityConfig] = None):
        """Arm the reliable transport on this NIC (go-back-N by default,
        selective-repeat via ``ReliabilityConfig(mode=...)``).

        Must run before any traffic flows (sequence numbers start at the
        first send).  Returns the :class:`~repro.nic.transport.
        ReliableTransport` engine so callers can attach probes.
        """
        if self.transport is not None:
            raise RuntimeError(f"reliability already enabled on {self.node}")
        from repro.nic.transport import make_transport

        self.transport = make_transport(self, config or ReliabilityConfig())
        return self.transport

    def _transmit(self, msg: Message,
                  on_first_tx: Optional[Callable[[], None]] = None) -> Event:
        """Send one data message, through the reliable transport when
        armed.  Returns the delivery event; with reliability on it can
        *fail* with :class:`~repro.nic.transport.TransportError`."""
        if self.transport is not None:
            return self.transport.send(msg, on_first_tx=on_first_tx)
        done = self.fabric.transmit(msg)
        if on_first_tx is not None:
            on_first_tx()
        return done

    # ------------------------------------------------------------ MMIO side
    @property
    def trigger_address(self) -> int:
        """The memory-mapped address GPU kernels store tags to (paper §3.1)."""
        return self._trigger_addr

    def mmio_write(self, addr: int, value: int, from_agent: Agent = Agent.GPU) -> None:
        """A posted write to NIC MMIO space.

        Arrives at the NIC FIFO ``doorbell_mmio_ns`` after issue.  Writes
        to addresses outside the trigger window are a programming error.
        """
        if not (self._trigger_addr <= addr < self._trigger_addr + _TRIGGER_WINDOW_BYTES):
            raise ValueError(
                f"MMIO write to {addr:#x} outside trigger window of node {self.node}"
            )
        self.stats["trigger_writes"] += 1
        if self.tracer.enabled:
            self.tracer.point(self.sim.now, self.node, from_agent.value,
                              "trigger-store", tag=value)
        self.sim.call_later(self.nc.doorbell_mmio_ns, self._fifo_push, (int(value), None))

    _DYNAMIC_FIELDS = frozenset({"target", "remote_addr", "local_addr", "nbytes"})

    def mmio_write_dynamic(self, addr: int, tag: int,
                           from_agent: Agent = Agent.GPU, **overrides: Any) -> None:
        """The Section 3.4 extension: a wide MMIO write that carries
        operation fields alongside the tag, letting the GPU choose e.g.
        the target node or buffer at trigger time.

        When the write that crosses the threshold carries overrides, they
        are applied to the registered operation before it fires
        (last-writer-wins for accumulating thresholds).
        """
        if not (self._trigger_addr <= addr < self._trigger_addr + _TRIGGER_WINDOW_BYTES):
            raise ValueError(
                f"MMIO write to {addr:#x} outside trigger window of node {self.node}"
            )
        unknown = set(overrides) - self._DYNAMIC_FIELDS
        if unknown:
            raise ValueError(f"unsupported dynamic fields {sorted(unknown)}; "
                             f"allowed: {sorted(self._DYNAMIC_FIELDS)}")
        self.stats["trigger_writes"] += 1
        if self.tracer.enabled:
            self.tracer.point(self.sim.now, self.node, from_agent.value,
                              "trigger-store", tag=tag, dynamic=True)
        # A wide (multi-word) MMIO write costs one extra propagation beat.
        self.sim.call_later(self.nc.doorbell_mmio_ns + self.nc.doorbell_mmio_ns // 4,
                            self._fifo_push, (int(tag), dict(overrides)))

    def _fifo_push(self, item: tuple[int, Optional[Dict[str, Any]]]) -> None:
        if not self._trigger_fifo.try_put(item):
            # A full FIFO in hardware back-pressures the interconnect; we
            # surface it loudly instead of silently dropping triggers.
            raise RuntimeError(
                f"trigger FIFO overflow on node {self.node} "
                f"(depth {self.nc.trigger_fifo_depth})"
            )
        if self.queue_probes:
            depth = len(self._trigger_fifo)
            for probe in self.queue_probes:
                probe("fifo-push", self.sim.now, depth)

    # The trigger processor: pop, match, count, maybe fire.  Spelled as a
    # callback loop (_pump_boot -> _pump_wait -> _pump_item -> timeout ->
    # _pump_cooled -> _pump_wait ...) so the NIC holds no generator frame;
    # each handler attaches at the exact callback position the generator's
    # _resume used to occupy, keeping pop order byte-identical.
    def _pump_boot(self, _ev: Event) -> None:
        self._pump_wait()

    def _pump_wait(self) -> None:
        self._trigger_fifo.get().callbacks.append(self._pump_item)

    def _pump_item(self, ev: Event) -> None:
        tag, overrides = ev.value
        if self.queue_probes:
            depth = len(self._trigger_fifo)
            for probe in self.queue_probes:
                probe("fifo-pop", self.sim.now, depth)
        self._active_overrides = overrides
        try:
            self.trigger_list.trigger(tag)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            # The generator pump died silently here (Process._resume
            # swallowed model errors into an unwaited process event);
            # keep that contract, but record the cause for inspection.
            self._pump_error = exc
            return
        finally:
            self._active_overrides = None
        # Lookup cost of the match we just did (structure-dependent).
        cooldown = self.sim.timeout(self.trigger_list.lookup.cost_ns())
        cooldown.callbacks.append(self._pump_cooled)

    def _pump_cooled(self, _ev: Event) -> None:
        self._pump_wait()

    # --------------------------------------------------- CPU command: posts
    def post_put(self, local_addr: int, nbytes: int, target: str,
                 remote_addr: int, wire_tag: Optional[int] = None,
                 local_flag: Optional[Tuple[Buffer, int]] = None,
                 kind: str = "put",
                 meta: Optional[Dict[str, Any]] = None,
                 deferred: bool = False) -> PutHandle:
        """Post a put (or two-sided send) command to the NIC.

        With ``deferred=True`` the operation is staged and waits for
        :meth:`ring_doorbell` -- the GDS model, where the CPU posts ahead
        of time and the GPU front-end rings at a kernel boundary.
        """
        op = NetworkOp(kind=kind, local_addr=local_addr, nbytes=nbytes,
                       target=target, remote_addr=remote_addr, wire_tag=wire_tag,
                       meta=dict(meta or {}))
        handle = PutHandle(op=op, local=self.sim.event(f"local:{op.op_id}"),
                           delivered=self.sim.event(f"delivered:{op.op_id}"),
                           local_flag=local_flag)
        if not deferred:
            self._initiate(handle, extra_delay=0)
        return handle

    def ring_doorbell(self, handle: PutHandle) -> None:
        """Initiate a previously staged (deferred) operation.

        Models the GDS doorbell: because the operation was fully posted
        ahead of time, the descriptor and DMA program are already staged
        on the NIC -- the doorbell merely flips a valid bit, so initiation
        is immediate (this matches the paper's Figure 8, where the GDS put
        leaves the initiator essentially at kernel completion).  Contrast
        with the GPU-TN trigger path, which pays MMIO propagation, tag
        matching and operation fetch.
        """
        self.stats["doorbells"] += 1
        if self.tracer.enabled:
            self.tracer.point(self.sim.now, self.node, "nic", "doorbell",
                              op=handle.op.op_id)
        self._initiate(handle, extra_delay=0, staged=True)

    def post_get(self, local_addr: int, nbytes: int, target: str,
                 remote_addr: int) -> GetHandle:
        """Post a one-sided get: fetch remote bytes into local memory."""
        op = NetworkOp(kind="get", local_addr=local_addr, nbytes=nbytes,
                       target=target, remote_addr=remote_addr)
        handle = GetHandle(op=op, complete=self.sim.event(f"get:{op.op_id}"))
        self._pending_gets[op.op_id] = handle
        self.sim.call_later(self.nc.command_process_ns, self._issue_get, op)
        return handle

    def _issue_get(self, op: NetworkOp) -> None:
        msg = Message(src=self.node, dst=op.target, nbytes=64,
                      kind=MessageKind.GET_REQUEST,
                      remote_addr=op.remote_addr,
                      meta={"op_id": op.op_id, "nbytes": op.nbytes,
                            "reply_addr": op.local_addr})
        done = self._transmit(msg)
        self.stats["tx_ops"] += 1
        done.callbacks.append(partial(self._on_get_request_outcome, op.op_id))

    def _on_get_request_outcome(self, op_id: int, ev: Event) -> None:
        # Reliable transport gave up on the request: surface the
        # TransportError on the get handle instead of hanging.
        if not ev.ok:
            handle = self._pending_gets.pop(op_id, None)
            if handle is not None and not handle.complete.triggered:
                handle.complete.fail(ev.value)

    def register_triggered_get(self, tag: int, threshold: int, local_addr: int,
                               nbytes: int, target: str,
                               remote_addr: int) -> TriggerEntry:
        """Register a triggered *get*: fetch remote bytes when the tag's
        counter reaches the threshold (Portals 4 offers the full family
        of triggered operations; the paper evaluates puts)."""
        op = NetworkOp(kind="get", local_addr=local_addr, nbytes=nbytes,
                       target=target, remote_addr=remote_addr)
        handle = GetHandle(op=op, complete=self.sim.event(f"tget:{op.op_id}"))
        op.meta["get_handle"] = handle
        self._pending_gets[op.op_id] = handle
        return self.trigger_list.register(op, tag, threshold)

    def get_handle_for(self, entry: TriggerEntry) -> GetHandle:
        if entry.op is None or entry.op.kind != "get":
            raise ValueError(f"trigger entry tag={entry.tag} is not a get")
        return entry.op.meta["get_handle"]

    # ------------------------------------------------ CPU command: recv side
    def post_recv(self, tag: int, local_addr: int, nbytes: int) -> RecvHandle:
        """Post a two-sided receive; matches sends by tag, FIFO per tag."""
        handle = RecvHandle(tag=tag, local_addr=local_addr, nbytes=nbytes,
                            complete=self.sim.event(f"recv:{tag}"))
        waiting = self._unexpected.get(tag)
        if waiting:
            delivered = waiting.popleft()
            self.sim.call_later(self.config.cpu.recv_match_ns,
                                self._finish_recv, handle, delivered)
        else:
            self._posted_recvs.setdefault(tag, deque()).append(handle)
        return handle

    def expose_rx_flag(self, wire_tag: int, flag: Tuple[Buffer, int]) -> None:
        """Associate an incoming one-sided wire tag with a local flag word
        the NIC sets on arrival (paper §4.2.5: PGAS-style notification)."""
        self._rx_flags[wire_tag] = flag

    def chain_rx_trigger(self, wire_tag: int, trigger_tag: int) -> None:
        """Chain an arrival to a local trigger: every put landing with
        ``wire_tag`` counts one write toward ``trigger_tag``'s entry --
        exactly a Portals triggered op progressed by a CT event, so
        sequences of operations advance NIC-to-NIC with no CPU or GPU on
        the path."""
        self._rx_chains.setdefault(wire_tag, []).append(trigger_tag)

    def watch_rx(self, wire_tag: int) -> Event:
        """An event that fires when a put with ``wire_tag`` lands here."""
        ev = self.sim.event(f"rxwatch:{wire_tag}")
        self._rx_watchers.setdefault(wire_tag, []).append(ev)
        return ev

    # ------------------------------------------------- triggered operations
    def register_triggered_put(self, tag: int, threshold: int, local_addr: int,
                               nbytes: int, target: str, remote_addr: int,
                               wire_tag: Optional[int] = None,
                               local_flag: Optional[Tuple[Buffer, int]] = None,
                               meta: Optional[Dict[str, Any]] = None) -> TriggerEntry:
        """CPU-side registration of a triggered put (paper Figure 6, step 2).

        Firing happens on the NIC when the tag's counter reaches
        ``threshold`` -- possibly immediately, if early GPU triggers
        already accumulated on a placeholder entry (Section 3.2).
        """
        op = NetworkOp(kind="put", local_addr=local_addr, nbytes=nbytes,
                       target=target, remote_addr=remote_addr, wire_tag=wire_tag,
                       meta=dict(meta or {}))
        handle = PutHandle(op=op, local=self.sim.event(f"local:{op.op_id}"),
                           delivered=self.sim.event(f"delivered:{op.op_id}"),
                           local_flag=local_flag)
        op.meta["handle"] = handle
        return self.trigger_list.register(op, tag, threshold)

    def register_triggered_fanout(self, tag: int, threshold: int,
                                  puts: List[Dict[str, Any]]) -> TriggerEntry:
        """Register several puts under ONE trigger tag: when the counter
        crosses the threshold, all of them fire (a Portals CT can chain
        any number of triggered operations; used for offloaded-collective
        fan-out).  Each dict takes the post_put keyword arguments
        ``local_addr, nbytes, target, remote_addr[, wire_tag]``."""
        if not puts:
            raise ValueError("fanout needs at least one operation")
        handles: List[PutHandle] = []
        ops: List[NetworkOp] = []
        for spec in puts:
            op = NetworkOp(kind="put", local_addr=spec["local_addr"],
                           nbytes=spec["nbytes"], target=spec["target"],
                           remote_addr=spec["remote_addr"],
                           wire_tag=spec.get("wire_tag"))
            handle = PutHandle(op=op, local=self.sim.event(f"local:{op.op_id}"),
                               delivered=self.sim.event(f"delivered:{op.op_id}"))
            op.meta["handle"] = handle
            ops.append(op)
            handles.append(handle)
        master = ops[0]
        master.meta["fanout_handles"] = handles
        return self.trigger_list.register(master, tag, threshold)

    def fanout_handles(self, entry: TriggerEntry) -> List[PutHandle]:
        if entry.op is None or "fanout_handles" not in entry.op.meta:
            raise ValueError(f"trigger entry tag={entry.tag} is not a fanout")
        return entry.op.meta["fanout_handles"]

    def handle_for(self, entry: TriggerEntry) -> PutHandle:
        """The PutHandle carried by a registered trigger entry."""
        if entry.op is None:
            raise ValueError(f"trigger entry tag={entry.tag} is an unarmed placeholder")
        return entry.op.meta["handle"]

    def _on_trigger_fire(self, entry: TriggerEntry) -> None:
        op = entry.op
        assert op is not None
        if self._active_overrides:
            # Section 3.4 dynamic communication: the firing write supplies
            # some operation fields.
            for fieldname, value in self._active_overrides.items():
                setattr(op, fieldname, value)
        if self.tracer.enabled:
            self.tracer.point(self.sim.now, self.node, "nic", "trigger-fire",
                              tag=entry.tag, op=op.op_id)
        if op.kind == "get":
            self.sim.call_later(self.nc.command_process_ns, self._issue_get, op)
        elif "fanout_handles" in op.meta:
            for handle in op.meta["fanout_handles"]:
                self._initiate(handle, extra_delay=0)
        else:
            handle: PutHandle = op.meta["handle"]
            self._initiate(handle, extra_delay=0)

    # ------------------------------------------------------------ data path
    def _initiate(self, handle: PutHandle, extra_delay: int,
                  staged: bool = False) -> None:
        """Start the wire transfer for a put/send after NIC processing.

        ``staged`` operations (pre-posted, doorbell-initiated) skip
        command decode and DMA setup -- both were done at post time.
        """
        delay = extra_delay
        if not staged:
            delay += self.nc.command_process_ns + self.nc.dma_setup_ns
        if self.probes:
            self._emit("initiate", handle)
        self.sim.call_later(delay, self._launch, handle)

    def _launch(self, handle: PutHandle) -> None:
        op = handle.op
        # DMA-read the payload.  This is the moment the paper's memory
        # model discussion bites: the GPU must have released the buffer at
        # system scope or this read records a hazard.
        buf, off = self.space.resolve(op.local_addr, max(op.nbytes, 1))
        if op.nbytes:
            self.mem.record_read(self.sim.now, Agent.NIC, buf,
                                 lo=off, hi=off + op.nbytes)
        payload = self.space.dma_read(op.local_addr, op.nbytes) if op.nbytes else b""
        if self.probes:
            self._emit("send-dma-read", handle)
        kind = MessageKind.SEND if op.kind == "send" else MessageKind.PUT
        msg = Message(src=self.node, dst=op.target, nbytes=op.nbytes, kind=kind,
                      payload=payload, remote_addr=op.remote_addr,
                      tag=op.wire_tag, meta=dict(op.meta))
        msg.meta.pop("handle", None)
        if self.tracer.enabled:
            self.tracer.begin(self.sim.now, self.node, "nic", "put", op=op.op_id)

        done = self._transmit(
            msg, on_first_tx=partial(self._schedule_local_complete, handle))
        self.stats["tx_ops"] += 1

        done.callbacks.append(partial(self._on_put_outcome, handle))

    def _schedule_local_complete(self, handle: PutHandle) -> None:
        # Local completion: send buffer is reusable once fully
        # serialized onto the wire; transmit() just reserved our
        # egress port, so its busy_until is exactly this message's
        # serialization end.  (Under the reliable transport this runs
        # at the *first* transmission -- possibly later than post
        # time if the go-back-N window was full.)
        local_time = self.fabric._egress[self.node].busy_until
        self.sim.call_later(
            max(0, local_time - self.sim.now) + self.nc.completion_write_ns,
            self._local_complete, handle)

    def _on_put_outcome(self, handle: PutHandle, ev: Event) -> None:
        if self.tracer.enabled:
            self.tracer.end(self.sim.now, self.node, "nic", "put",
                            op=handle.op.op_id)
        if handle.delivered.triggered:
            return
        if ev.ok:
            handle.delivered.succeed(ev.value)
            if self.probes:
                self._emit("delivered", handle)
        else:
            # Transport retry budget exhausted: structured failure on
            # the handle, never a silent hang.  A send refused outright
            # (peer already declared dead) also fails local completion
            # -- nothing was ever serialized.
            handle.delivered.fail(ev.value)
            if not handle.local.triggered:
                handle.local.fail(ev.value)

    def _local_complete(self, handle: PutHandle) -> None:
        if self.probes:
            self._emit("local-complete", handle)
        if handle.local_flag is not None:
            buf, off = handle.local_flag
            buf.view(dtype="uint32", count=1, offset=off)[0] = 1
            self.mem.record_write(self.sim.now, Agent.NIC, buf)
        if not handle.local.triggered:
            handle.local.succeed(self.sim.now)

    # -------------------------------------------------------------- receive
    def _handle_rx(self, delivered: DeliveredMessage) -> None:
        msg = delivered.message
        if delivered.corrupted:
            # CRC failure at the rx pipeline.  With the reliable transport
            # armed this is unreachable (its fabric filter NACKs and
            # consumes the message first); without it the payload is
            # simply lost, as on a real lossy fabric with no retry layer.
            self.stats["rx_corrupt"] += 1
            self.tracer.point(self.sim.now, self.node, "nic", "rx-corrupt",
                              msg_id=msg.msg_id, src=msg.src)
            return
        if msg.kind is MessageKind.PUT:
            self._rx_put(delivered)
        elif msg.kind is MessageKind.SEND:
            self._rx_send(delivered)
        elif msg.kind is MessageKind.GET_REQUEST:
            self._rx_get_request(delivered)
        elif msg.kind is MessageKind.GET_REPLY:
            self._rx_get_reply(delivered)
        # ACKs carry no payload handling in this model.

    def _rx_put(self, delivered: DeliveredMessage) -> None:
        msg = delivered.message
        self.stats["rx_puts"] += 1
        if msg.remote_addr is None:
            raise ValueError(f"put without remote address: {msg!r}")
        if msg.nbytes:
            self.space.dma_write(msg.remote_addr, msg.payload or b"\x00" * msg.nbytes)
            buf, _ = self.space.resolve(msg.remote_addr, msg.nbytes)
            self.mem.record_write(self.sim.now, Agent.NIC, buf)
        self._notify_rx(msg.tag, delivered)

    def _notify_rx(self, wire_tag: Optional[int], delivered: DeliveredMessage) -> None:
        if wire_tag is None:
            return
        flag = self._rx_flags.get(wire_tag)
        if flag is not None:
            self.sim.call_later(self.nc.completion_write_ns,
                                self._set_rx_flag, flag)
        for ev in self._rx_watchers.pop(wire_tag, []):
            ev.succeed(delivered)
        for trigger_tag in self._rx_chains.get(wire_tag, ()):
            # Internal chaining shares the trigger FIFO (ordering) but
            # skips the MMIO propagation an external write would pay.
            self.sim.call_later(0, self._fifo_push, (trigger_tag, None))

    def _set_rx_flag(self, flag: Tuple[Buffer, int]) -> None:
        buf, off = flag
        arr = buf.view(dtype="uint32", count=1, offset=off)
        arr[0] = arr[0] + 1
        self.mem.record_write(self.sim.now, Agent.NIC, buf)

    def _rx_send(self, delivered: DeliveredMessage) -> None:
        msg = delivered.message
        self.stats["rx_sends"] += 1
        tag = msg.tag if msg.tag is not None else -1
        queue = self._posted_recvs.get(tag)
        if queue:
            handle = queue.popleft()
            self.sim.call_later(self.config.cpu.recv_match_ns,
                                self._finish_recv, handle, delivered)
        else:
            self._unexpected.setdefault(tag, deque()).append(delivered)

    def _finish_recv(self, handle: RecvHandle, delivered: DeliveredMessage) -> None:
        msg = delivered.message
        if msg.nbytes > handle.nbytes:
            handle.complete.fail(
                ValueError(f"recv overflow: {msg.nbytes} > {handle.nbytes}")
            )
            return
        if msg.nbytes:
            self.space.dma_write(handle.local_addr, msg.payload or b"")
            buf, _ = self.space.resolve(handle.local_addr, msg.nbytes)
            self.mem.record_write(self.sim.now, Agent.NIC, buf)
        handle.complete.succeed(delivered)

    def _rx_get_request(self, delivered: DeliveredMessage) -> None:
        msg = delivered.message
        self.stats["rx_gets"] += 1
        self.sim.call_later(self.nc.command_process_ns + self.nc.dma_setup_ns,
                            self._send_get_reply, msg)

    def _send_get_reply(self, msg: Message) -> None:
        nbytes = msg.meta["nbytes"]
        payload = self.space.dma_read(msg.remote_addr, nbytes) if nbytes else b""
        buf, off = self.space.resolve(msg.remote_addr, max(nbytes, 1))
        self.mem.record_read(self.sim.now, Agent.NIC, buf,
                             lo=off, hi=off + max(nbytes, 1))
        reply = Message(src=self.node, dst=msg.src, nbytes=nbytes,
                        kind=MessageKind.GET_REPLY, payload=payload,
                        remote_addr=msg.meta["reply_addr"],
                        meta={"op_id": msg.meta["op_id"]})
        self._transmit(reply)

    def _rx_get_reply(self, delivered: DeliveredMessage) -> None:
        msg = delivered.message
        handle = self._pending_gets.pop(msg.meta["op_id"], None)
        if handle is None:
            raise RuntimeError(f"get reply for unknown op {msg.meta['op_id']}")
        if msg.nbytes:
            self.space.dma_write(msg.remote_addr, msg.payload or b"")
            buf, _ = self.space.resolve(msg.remote_addr, msg.nbytes)
            self.mem.record_write(self.sim.now, Agent.NIC, buf)
        self.sim.call_later(self.nc.completion_write_ns,
                            self._complete_get, handle, delivered)

    @staticmethod
    def _complete_get(handle: GetHandle, delivered: DeliveredMessage) -> None:
        handle.complete.succeed(delivered)
