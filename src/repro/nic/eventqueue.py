"""Portals-style completion event queues.

Sections 4.2.4-4.2.5 of the paper describe two notification mechanisms
for completion: lightweight flag words (what GPU kernels poll -- already
modeled in :mod:`repro.nic.device`) and "monitoring a network completion
queue".  This module provides the queue flavor: a bounded ring of
completion records the NIC appends to and the host (or a GPU polling
loop) drains.

Attach one with :meth:`EventQueue.attach`; afterwards the NIC deposits a
record for every local completion and every arrival at this node.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from repro.nic.device import Nic, PutHandle
from repro.sim import Event

__all__ = ["EventKind", "EventQueue", "EventQueueOverflow", "NicEvent"]


class EventKind(str, enum.Enum):
    SEND_COMPLETE = "send_complete"   # local completion: buffer reusable
    PUT_ARRIVED = "put_arrived"       # one-sided payload landed here
    RECV_MATCHED = "recv_matched"     # two-sided receive completed


@dataclass(frozen=True)
class NicEvent:
    """One completion record."""

    kind: EventKind
    time: int
    nbytes: int
    wire_tag: Optional[int] = None
    op_id: Optional[int] = None
    src: Optional[str] = None


class EventQueueOverflow(RuntimeError):
    """The ring filled before the consumer drained it (a real-RDMA error
    state: Portals returns PTL_EQ_DROPPED).

    Raised to the *consumer* (from :meth:`EventQueue.poll`, or failed
    into blocked :meth:`EventQueue.wait` events), never into the NIC
    delivery path: hardware drops the record and keeps running; the
    consumer is the party that must learn completions were lost.
    """

    def __init__(self, node: str, depth: int, dropped: int):
        self.node = node
        self.depth = depth
        self.dropped = dropped
        super().__init__(
            f"event queue on {node} overflowed at depth {depth} "
            f"({dropped} record(s) dropped)")


class EventQueue:
    """A bounded completion queue fed by one NIC."""

    def __init__(self, nic: Nic, depth: int = 1024):
        if depth <= 0:
            raise ValueError("event queue depth must be positive")
        self.nic = nic
        self.depth = depth
        self._ring: Deque[NicEvent] = deque()
        self._waiters: Deque[Event] = deque()
        self.dropped = 0
        #: Overflow happened and the consumer has not yet been told.
        self._dropped_pending = False
        self._attached = False

    # ------------------------------------------------------------- attach
    def attach(self) -> "EventQueue":
        """Start receiving completion records from the NIC."""
        if self._attached:
            raise RuntimeError("event queue already attached")
        self._attached = True
        self.nic.fabric.register_rx(self.nic.node, self._on_rx)
        return self

    def track_put(self, handle: PutHandle) -> None:
        """Deposit a SEND_COMPLETE record when this put's buffer frees."""
        handle.local.callbacks.append(
            lambda ev: self._push(NicEvent(
                EventKind.SEND_COMPLETE, self.nic.sim.now,
                nbytes=handle.op.nbytes, wire_tag=handle.op.wire_tag,
                op_id=handle.op.op_id)))

    def _on_rx(self, delivered) -> None:
        msg = delivered.message
        from repro.net.packet import MessageKind

        if getattr(delivered, "corrupted", False):
            # A mangled packet never generates a completion record; with a
            # reliable transport armed the clean retransmission will.
            return
        if msg.kind is MessageKind.PUT:
            self._push(NicEvent(EventKind.PUT_ARRIVED, self.nic.sim.now,
                                nbytes=msg.nbytes, wire_tag=msg.tag,
                                src=msg.src))
        elif msg.kind is MessageKind.SEND:
            self._push(NicEvent(EventKind.RECV_MATCHED, self.nic.sim.now,
                                nbytes=msg.nbytes, wire_tag=msg.tag,
                                src=msg.src))

    # -------------------------------------------------------------- queue
    def _push(self, record: NicEvent) -> None:
        if len(self._ring) >= self.depth:
            # Hardware semantics: the record is lost, the NIC keeps going.
            # Consumers learn via poll()/wait() raising or failing with
            # EventQueueOverflow -- never by an exception tearing through
            # the delivery path that produced the record.
            self.dropped += 1
            self._dropped_pending = True
            self._fail_waiters()
            return
        self._ring.append(record)
        while self._waiters and self._ring:
            self._waiters.popleft().succeed(self._ring.popleft())

    def _overflow_error(self) -> EventQueueOverflow:
        return EventQueueOverflow(self.nic.node, self.depth, self.dropped)

    def _fail_waiters(self) -> None:
        """Wake every blocked ``wait()`` with the overflow error (FIFO).

        A waiter blocked at overflow time can never be satisfied in
        order -- the record that would have woken it was dropped -- so
        leaving it parked would hang the consumer forever.
        """
        while self._waiters:
            self._waiters.popleft().fail(self._overflow_error())

    def __len__(self) -> int:
        return len(self._ring)

    def poll(self) -> Optional[NicEvent]:
        """Non-blocking get (``PtlEQGet``).

        Once the queued backlog is consumed after an overflow, raises
        :class:`EventQueueOverflow` exactly once (PTL_EQ_DROPPED) so the
        consumer knows the record stream has a gap; subsequent polls
        return to normal ``None`` / record behavior.
        """
        if self._ring:
            return self._ring.popleft()
        if self._dropped_pending:
            self._dropped_pending = False
            raise self._overflow_error()
        return None

    def wait(self) -> Event:
        """Blocking get (``PtlEQWait``): an event firing with the next
        record; usable from simulation processes via ``yield eq.wait()``.

        After an overflow, once the backlog is drained the next ``wait()``
        returns an already-failed event carrying
        :class:`EventQueueOverflow` (one notification, like ``poll``).
        """
        ev = Event(self.nic.sim, name=f"eqwait:{self.nic.node}")
        if self._ring:
            ev.succeed(self._ring.popleft())
        elif self._dropped_pending:
            self._dropped_pending = False
            ev.fail(self._overflow_error())
        else:
            self._waiters.append(ev)
        return ev

    def drain(self) -> list:
        """Empty the ring, returning everything queued."""
        out = list(self._ring)
        self._ring.clear()
        return out

    def counts(self) -> Dict[EventKind, int]:
        out: Dict[EventKind, int] = {}
        for r in self._ring:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out
