"""Trigger-list lookup organizations (paper Section 3.3).

The NIC must match every GPU tag write against the registered trigger
entries, potentially absorbing "triggers from thousands of GPU threads in
quick succession".  The paper discusses three implementations:

* **linked list** -- the logical organization (Portals 4 hardware lists);
  lookup cost grows linearly with list length;
* **associative** -- a small CAM; constant-time but bounds the number of
  simultaneously active entries (the paper's prototype uses 16);
* **hash** -- a hash table; near-constant time without the hard bound.

All three share one interface so the ablation benchmark can swap them via
``NicConfig.trigger_lookup``.  ``cost_ns`` returns the modeled latency of
the *last* lookup, which the NIC's trigger processor charges per FIFO pop.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.nic.triggered import TriggerEntry

__all__ = [
    "AssociativeLookup",
    "HashLookup",
    "LinkedListLookup",
    "TriggerListFull",
    "make_lookup",
]


class TriggerListFull(RuntimeError):
    """Raised when a bounded lookup structure cannot accept a new entry."""


class _LookupBase:
    """Shared bookkeeping for the three organizations."""

    #: per-step traversal / probe cost in ns
    step_ns: int = 5
    #: fixed overhead per lookup in ns
    base_ns: int = 10

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self._last_steps = 0

    def __len__(self) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def cost_ns(self) -> int:
        """Latency of the most recent find/insert, from the step count."""
        return self.base_ns + self.step_ns * self._last_steps

    def _check_capacity(self) -> None:
        if self.capacity is not None and len(self) >= self.capacity:
            raise TriggerListFull(
                f"{type(self).__name__} at capacity {self.capacity}"
            )


class LinkedListLookup(_LookupBase):
    """Logical linked list: O(n) search, unbounded."""

    def __init__(self, capacity: Optional[int] = None):
        super().__init__(capacity)
        self._entries: List[TriggerEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TriggerEntry]:
        return iter(self._entries)

    def find(self, tag: int) -> Optional[TriggerEntry]:
        for i, entry in enumerate(self._entries):
            if entry.tag == tag:
                self._last_steps = i + 1
                return entry
        self._last_steps = len(self._entries)
        return None

    def insert(self, entry: TriggerEntry) -> None:
        self._check_capacity()
        # Appending requires walking to the tail in a true hardware list.
        self._last_steps = len(self._entries)
        self._entries.append(entry)

    def remove(self, entry: TriggerEntry) -> None:
        self._entries.remove(entry)
        self._last_steps = 1


class AssociativeLookup(_LookupBase):
    """Small CAM: O(1) search, hard entry bound (prototype: 16)."""

    def __init__(self, capacity: Optional[int] = 16):
        if capacity is None:
            raise ValueError("associative lookup requires a capacity bound")
        super().__init__(capacity)
        self._by_tag: Dict[int, TriggerEntry] = {}

    def __len__(self) -> int:
        return len(self._by_tag)

    def __iter__(self) -> Iterator[TriggerEntry]:
        return iter(self._by_tag.values())

    def find(self, tag: int) -> Optional[TriggerEntry]:
        self._last_steps = 1
        return self._by_tag.get(tag)

    def insert(self, entry: TriggerEntry) -> None:
        self._check_capacity()
        if entry.tag in self._by_tag:
            raise ValueError(f"duplicate tag {entry.tag} in associative lookup")
        self._by_tag[entry.tag] = entry
        self._last_steps = 1

    def remove(self, entry: TriggerEntry) -> None:
        self._by_tag.pop(entry.tag, None)
        self._last_steps = 1


class HashLookup(_LookupBase):
    """Hash table with chaining: near-O(1), soft capacity."""

    def __init__(self, capacity: Optional[int] = None, n_buckets: int = 64):
        super().__init__(capacity)
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self.n_buckets = n_buckets
        self._buckets: List[List[TriggerEntry]] = [[] for _ in range(n_buckets)]
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[TriggerEntry]:
        for bucket in self._buckets:
            yield from bucket

    def _bucket(self, tag: int) -> List[TriggerEntry]:
        return self._buckets[hash(tag) % self.n_buckets]

    def find(self, tag: int) -> Optional[TriggerEntry]:
        bucket = self._bucket(tag)
        for i, entry in enumerate(bucket):
            if entry.tag == tag:
                self._last_steps = i + 1
                return entry
        self._last_steps = max(1, len(bucket))
        return None

    def insert(self, entry: TriggerEntry) -> None:
        self._check_capacity()
        bucket = self._bucket(entry.tag)
        bucket.append(entry)
        self._count += 1
        self._last_steps = len(bucket)

    def remove(self, entry: TriggerEntry) -> None:
        bucket = self._bucket(entry.tag)
        bucket.remove(entry)
        self._count -= 1
        self._last_steps = 1


class CachedLookup(_LookupBase):
    """The Section 3.3 'simplest implementation': the trigger list lives
    in main memory and the NIC caches frequently accessed entries.

    Wraps any other lookup; a find that hits the (LRU) cache costs the
    inner structure's hit time, a miss adds a host-memory fetch.
    """

    #: host-memory fetch penalty on a cache miss (one or two cache lines
    #: over the on-chip interconnect)
    miss_ns: int = 250

    def __init__(self, inner, cache_entries: int = 16):
        if cache_entries <= 0:
            raise ValueError("cache needs at least one entry")
        super().__init__(capacity=inner.capacity)
        self.inner = inner
        self.cache_entries = cache_entries
        self._lru: List[int] = []  # most recent last
        self._last_cost = 0
        self.stats = {"hits": 0, "misses": 0}

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[TriggerEntry]:
        return iter(self.inner)

    def _touch(self, tag: int) -> bool:
        """LRU update; returns True on hit."""
        hit = tag in self._lru
        if hit:
            self._lru.remove(tag)
        elif len(self._lru) >= self.cache_entries:
            self._lru.pop(0)
        self._lru.append(tag)
        return hit

    def find(self, tag: int) -> Optional[TriggerEntry]:
        entry = self.inner.find(tag)
        cost = self.inner.cost_ns()
        if entry is not None:
            if self._touch(tag):
                self.stats["hits"] += 1
            else:
                self.stats["misses"] += 1
                cost += self.miss_ns
        self._last_cost = cost
        return entry

    def insert(self, entry: TriggerEntry) -> None:
        self.inner.insert(entry)
        self._touch(entry.tag)
        self._last_cost = self.inner.cost_ns()

    def remove(self, entry: TriggerEntry) -> None:
        self.inner.remove(entry)
        if entry.tag in self._lru:
            self._lru.remove(entry.tag)
        self._last_cost = self.inner.cost_ns()

    def cost_ns(self) -> int:
        return self._last_cost


def make_lookup(kind: str, capacity: Optional[int] = 16):
    """Factory keyed by ``NicConfig.trigger_lookup``.

    ``"cached:<inner>"`` (e.g. ``"cached:hash"``) wraps the inner
    structure in a :class:`CachedLookup` with ``capacity`` cache entries
    -- the Section 3.3 main-memory + NIC-cache organization.
    """
    if kind.startswith("cached:"):
        inner = make_lookup(kind.split(":", 1)[1], capacity=None)
        return CachedLookup(inner, cache_entries=capacity or 16)
    if kind == "linked-list":
        return LinkedListLookup(capacity=None)
    if kind == "associative":
        return AssociativeLookup(capacity=capacity)
    if kind == "hash":
        return HashLookup(capacity=None)
    raise ValueError(f"unknown trigger lookup kind {kind!r} "
                     "(expected linked-list | associative | hash | cached:<kind>)")
