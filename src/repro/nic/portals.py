"""A thin Portals-4-flavored API over the NIC device.

The paper's prototype "implements the Portals 4 network programming
specification with custom GPU-TN functions implemented using an API
similar to existing Portals 4 triggered operations".  This module provides
that dialect for users who think in Portals terms:

* :class:`Counter` (``ptl_ct``-style counting events),
* :class:`MemoryDescriptor` (initiator-side MD),
* :func:`ptl_put` / :func:`ptl_get`,
* :func:`ptl_triggered_put` -- the classic CPU-progressed triggered put,
  where the trigger source is a *counter* (e.g. completion of earlier
  operations), and
* :func:`gputn_triggered_put` -- the paper's extension, where the trigger
  source is the GPU's MMIO tag write.

The classic triggered put is included because the paper positions GPU-TN
as a small delta over it (Section 6, Triggered Operations): sequences of
operations chained on counters work unchanged alongside GPU triggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.memory import Buffer
from repro.nic.device import Nic, PutHandle
from repro.nic.triggered import TriggerEntry
from repro.sim import Event

__all__ = [
    "Counter",
    "MemoryDescriptor",
    "gputn_triggered_put",
    "ptl_get",
    "ptl_put",
    "ptl_triggered_put",
]


class Counter:
    """A Portals counting event (``ptl_handle_ct_t``).

    Increments on operation completion; callbacks fire when the count
    crosses registered thresholds (used to chain triggered operations).
    """

    def __init__(self, nic: Nic, name: str = "ct"):
        self.nic = nic
        self.name = name
        self.count = 0
        self._watches: List[tuple[int, Callable[[], None]]] = []

    def increment(self, n: int = 1) -> None:
        if n <= 0:
            raise ValueError("counter increment must be positive")
        self.count += n
        ready = [cb for thresh, cb in self._watches if self.count >= thresh]
        self._watches = [(t, cb) for t, cb in self._watches if self.count < t]
        for cb in ready:
            cb()

    def on_threshold(self, threshold: int, callback: Callable[[], None]) -> None:
        if self.count >= threshold:
            callback()
        else:
            self._watches.append((threshold, callback))

    def wait(self, threshold: int) -> Event:
        """An event firing when the counter reaches ``threshold``."""
        ev = self.nic.sim.event(f"ct:{self.name}>={threshold}")
        self.on_threshold(threshold, lambda: ev.succeed(self.count))
        return ev


@dataclass
class MemoryDescriptor:
    """Initiator-side memory descriptor (``ptl_md_t``)."""

    buffer: Buffer
    offset: int = 0
    length: Optional[int] = None
    #: counter incremented at local completion (buffer reusable)
    ct: Optional[Counter] = None

    def __post_init__(self) -> None:
        if self.length is None:
            self.length = self.buffer.nbytes - self.offset
        if self.offset < 0 or self.offset + self.length > self.buffer.nbytes:
            raise ValueError("memory descriptor outside its buffer")
        if not self.buffer.registered:
            raise ValueError(
                f"buffer {self.buffer.name!r} must be registered before MD binding"
            )

    @property
    def addr(self) -> int:
        return self.buffer.addr(self.offset)


def _attach_ct(handle: PutHandle, md: MemoryDescriptor) -> PutHandle:
    if md.ct is not None:
        handle.local.callbacks.append(lambda _ev: md.ct.increment())
    return handle


def ptl_put(nic: Nic, md: MemoryDescriptor, target: str, remote_addr: int,
            wire_tag: Optional[int] = None) -> PutHandle:
    """Immediate one-sided put (``PtlPut``)."""
    handle = nic.post_put(md.addr, md.length, target, remote_addr, wire_tag=wire_tag)
    return _attach_ct(handle, md)


def ptl_get(nic: Nic, md: MemoryDescriptor, target: str, remote_addr: int):
    """One-sided get (``PtlGet``): fetch remote bytes into ``md``."""
    handle = nic.post_get(md.addr, md.length, target, remote_addr)
    if md.ct is not None:
        handle.complete.callbacks.append(lambda _ev: md.ct.increment())
    return handle


def ptl_triggered_put(nic: Nic, md: MemoryDescriptor, target: str, remote_addr: int,
                      trig_ct: Counter, threshold: int,
                      wire_tag: Optional[int] = None) -> PutHandle:
    """Classic Portals triggered put (``PtlTriggeredPut``).

    Fires when ``trig_ct`` reaches ``threshold`` -- the CPU-side chaining
    primitive GPU-TN generalizes.
    """
    handle = nic.post_put(md.addr, md.length, target, remote_addr,
                          wire_tag=wire_tag, deferred=True)
    trig_ct.on_threshold(threshold, lambda: nic.ring_doorbell(handle))
    return _attach_ct(handle, md)


def gputn_triggered_put(nic: Nic, md: MemoryDescriptor, target: str, remote_addr: int,
                        tag: int, threshold: int = 1,
                        wire_tag: Optional[int] = None,
                        local_flag=None) -> TriggerEntry:
    """The paper's GPU-TN triggered put (host side of Figure 6's TrigPut).

    Registers a trigger entry keyed by ``tag``; the GPU fires it by
    storing ``tag`` to ``nic.trigger_address`` from inside a kernel.
    """
    entry = nic.register_triggered_put(
        tag=tag, threshold=threshold, local_addr=md.addr, nbytes=md.length,
        target=target, remote_addr=remote_addr, wire_tag=wire_tag,
        local_flag=local_flag,
    )
    if md.ct is not None:
        nic.handle_for(entry).local.callbacks.append(lambda _ev: md.ct.increment())
    return entry
