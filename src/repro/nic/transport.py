"""NIC reliable transport: go-back-N windows, ACK/NACK, retransmission.

The fabric model is lossless, so the seed NIC never needed sequence
numbers, timers or retries.  Fault injection (:mod:`repro.faults`)
changes that: messages can be dropped, corrupted or delayed, and the
GPU-TN protocol must keep its exactly-once trigger/delivery semantics
anyway.  This module is the engine that makes it so:

* every *data* message (put / send / get request / get reply) leaving a
  reliability-enabled NIC is stamped with a per-destination **sequence
  number** and held in a bounded **go-back-N window** until cumulatively
  ACKed;
* the receiver accepts exactly the next expected sequence per source --
  duplicates (from retransmission) and gaps (from loss) are discarded
  before they reach the NIC's rx handlers, so payload landing, flag
  bumps and rx-chained trigger counts stay **exactly-once**;
* gaps and CRC failures elicit a **NACK** carrying the expected
  sequence; the sender answers NACKs and **retransmit timeouts**
  (exponential backoff) by resending the whole window in order;
* a retry budget bounds recovery: exhausting it declares the peer dead
  and fails every outstanding and future send to it with a structured
  :class:`TransportError` on the operation's handle -- the simulation
  drains instead of deadlocking.

Completion semantics are unchanged from the lossless model: a handle's
``delivered`` event still fires at the instant the payload is *accepted*
into target memory (the simulator's oracle view), not at ACK receipt;
ACKs exist purely to slide windows and cancel timers.  With zero faults
armed the transport adds only its ACK traffic -- data timing is
untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.config import ReliabilityConfig
from repro.net.fabric import DeliveredMessage
from repro.net.packet import Message, MessageKind
from repro.sim import Event
from repro.sim.rng import RandomStreams

__all__ = ["ReliableTransport", "SelectiveRepeatTransport", "TransportError",
           "make_transport"]


class TransportError(RuntimeError):
    """Retry budget exhausted: the transport gave up on a peer link.

    Structured so campaign reports and tests can assert on the exact
    failure point instead of string-matching.
    """

    def __init__(self, src: str, dst: str, seq: int, attempts: int):
        self.src = src
        self.dst = dst
        self.seq = seq
        self.attempts = attempts
        super().__init__(
            f"transport {src}->{dst} gave up on seq {seq} after "
            f"{attempts} retransmit rounds")

    def to_dict(self) -> Dict[str, object]:
        return {"src": self.src, "dst": self.dst, "seq": self.seq,
                "attempts": self.attempts}


@dataclass(slots=True)
class _Entry:
    """One unacknowledged data message in a peer's send window."""

    seq: int
    msg: Message
    event: Event
    on_first_tx: Optional[Callable[[], None]] = None
    sent: bool = False
    #: Selective-repeat only: SACKed out of order (held for the
    #: cumulative slide, excluded from retransmission).
    acked: bool = False


@dataclass(slots=True)
class _TxState:
    """Sender-side go-back-N state for one destination peer."""

    peer: str
    next_seq: int = 0
    window: Deque[_Entry] = field(default_factory=deque)
    pending: Deque[_Entry] = field(default_factory=deque)
    retries: int = 0
    timer_gen: int = 0
    timer_armed: bool = False
    dead: bool = False


@dataclass(slots=True)
class _SrTxState(_TxState):
    """Sender-side selective-repeat extras: AIMD congestion window."""

    #: Fractional congestion window (only consulted when pacing is on).
    cwnd: float = 1.0
    #: Cut-once-per-RTT watermark: no further multiplicative decrease
    #: until the window head passes this sequence.
    cut_watermark: int = -1
    #: Last head sequence fast-retransmitted on SACK evidence (one fast
    #: retransmit per hole; the timer covers repeated loss).
    last_fast_retx: int = -1


@dataclass(slots=True)
class _RxState:
    """Receiver-side state for one source peer."""

    expected: int = 0
    #: Last expected-value we NACKed (suppresses NACK storms: one NACK
    #: per distinct gap; the sender's timer covers lost NACKs).
    nacked_for: int = -1


@dataclass(slots=True)
class _SrRxState:
    """Receiver-side selective-repeat state: the reorder buffer."""

    expected: int = 0
    #: Out-of-order arrivals held until the gap below them fills,
    #: keyed by sequence number.
    buffer: Dict[int, DeliveredMessage] = field(default_factory=dict)


class ReliableTransport:
    """Per-NIC reliable-delivery engine (see module docstring).

    Constructed by :meth:`repro.nic.Nic.enable_reliability`; interposes
    on the fabric via an rx filter and announces itself in the fabric's
    transport registry so receivers can complete sender-side oracle
    delivery events.
    """

    def __init__(self, nic, config: ReliabilityConfig):
        self.nic = nic
        self.sim = nic.sim
        self.fabric = nic.fabric
        self.node: str = nic.node
        self.rc = config
        self._tx: Dict[str, _TxState] = {}
        self._rx: Dict[str, _RxState] = {}
        #: Validation probes: ``(kind, peer, seq, now)`` with kinds
        #: ``tx`` / ``accept`` / ``dup`` / ``gap`` / ``corrupt`` /
        #: ``retransmit`` / ``give-up`` -- the attachment point for
        #: :class:`repro.validate.monitors.ReliableDeliveryMonitor`.
        self.probes: List[Callable[[str, str, int, int], None]] = []
        self.stats = {
            "tx_data": 0, "retransmits": 0, "timeouts": 0,
            "acks_tx": 0, "acks_rx": 0, "nacks_tx": 0, "nacks_rx": 0,
            "rx_dups": 0, "rx_gaps": 0, "rx_corrupt": 0,
            "give_ups": 0, "errors": 0,
        }
        #: Retransmit-backoff jitter draws come from a dedicated seeded
        #: substream (``transport.backoff.<node>``), never a shared RNG:
        #: arming faults, queues or background traffic cannot perturb
        #: retransmit timing.  The default jitter of 0 never draws, so
        #: pre-jitter runs are bit-identical.
        self._backoff_rng = (
            RandomStreams(nic.config.seed).stream(f"transport.backoff.{nic.node}")
            if config.backoff_jitter_ns > 0 else None)
        self.fabric.register_rx_filter(self.node, self._on_rx)
        self.fabric.transports[self.node] = self

    # ------------------------------------------------------------- send side
    def send(self, msg: Message,
             on_first_tx: Optional[Callable[[], None]] = None) -> Event:
        """Sequence and (eventually) transmit ``msg``; returns the oracle
        delivery event.  It succeeds with the :class:`DeliveredMessage`
        when the payload is accepted at the target, or fails with
        :class:`TransportError` if the retry budget runs out.

        ``on_first_tx`` runs synchronously at the first real fabric
        transmission (window permitting, immediately) -- the NIC uses it
        to anchor local-completion timing to actual wire occupancy.
        """
        if msg.kind.is_control:
            raise ValueError(f"control message {msg!r} must bypass the transport")
        st = self._tx_state(msg.dst)
        ev = self.sim.event(f"rt:{self.node}->{msg.dst}")
        if st.dead:
            self.stats["errors"] += 1
            ev.fail(TransportError(self.node, msg.dst, st.next_seq, st.retries))
            return ev
        entry = _Entry(seq=st.next_seq, msg=msg, event=ev,
                       on_first_tx=on_first_tx)
        st.next_seq += 1
        msg.seq = entry.seq
        if len(st.window) < self._send_limit(st):
            st.window.append(entry)
            self._tx_entry(st, entry)
        else:
            st.pending.append(entry)
        return ev

    def _send_limit(self, st: _TxState) -> int:
        """Admission limit on in-flight messages (overridden by pacing)."""
        return self.rc.window

    def _tx_state(self, peer: str) -> _TxState:
        st = self._tx.get(peer)
        if st is None:
            self._tx[peer] = st = _TxState(peer)
        return st

    def _tx_entry(self, st: _TxState, entry: _Entry) -> None:
        self.fabric.transmit(entry.msg)
        self.stats["tx_data"] += 1
        if not entry.sent:
            entry.sent = True
            self._emit("tx", st.peer, entry.seq)
            if entry.on_first_tx is not None:
                entry.on_first_tx()
        if not st.timer_armed:
            self._arm_timer(st)

    # -------------------------------------------------------------- timers
    def _rtt_floor_ns(self, st: _TxState) -> int:
        """Closed-form uncontended RTT for the window head: data one way,
        cumulative ACK back.  The configured timeout was tuned on the
        paper's single-switch star; on multi-hop topologies (or with
        payloads whose serialization dwarfs 20 us) an unfloored timer
        fires before an ACK could possibly return and every "timeout" is
        spurious -- go-back-N then retransmits the whole healthy window,
        and the dup-suppressed copies re-trip the timer forever."""
        head = st.window[0].msg
        net = self.fabric.net
        path = self.fabric.topology.path_latency_ns
        return (net.serialization_ns(head.nbytes) + path(self.node, st.peer)
                + net.serialization_ns(self.rc.ack_bytes)
                + path(st.peer, self.node))

    def _arm_timer(self, st: _TxState) -> None:
        st.timer_gen += 1
        st.timer_armed = True
        # RTO >= 2x the path RTT (classic Jacobson floor).  On the star
        # with Table 2 latencies the floor is well under the configured
        # 20 us, so single-switch timing is untouched.
        delay = max(self.rc.timeout_after_retries(st.retries),
                    2 * self._rtt_floor_ns(st))
        if self._backoff_rng is not None:
            delay += int(self._backoff_rng.integers(
                0, self.rc.backoff_jitter_ns + 1))
        self.sim.call_later(delay, self._on_timer, st, st.timer_gen)

    def _disarm_timer(self, st: _TxState) -> None:
        st.timer_gen += 1
        st.timer_armed = False

    def _on_timer(self, st: _TxState, gen: int) -> None:
        if gen != st.timer_gen or st.dead or not st.window:
            return
        st.timer_armed = False
        self.stats["timeouts"] += 1
        self._go_back_n(st, cause="timeout")

    def _go_back_n(self, st: _TxState, cause: str) -> None:
        st.retries += 1
        if st.retries > self.rc.max_retries:
            self._give_up(st)
            return
        base = st.window[0].seq
        self.nic.tracer.point(self.sim.now, self.node, "nic", "retransmit",
                              peer=st.peer, base_seq=base, cause=cause,
                              round=st.retries, in_flight=len(st.window))
        self._emit("retransmit", st.peer, base)
        self.stats["retransmits"] += len(st.window)
        for entry in st.window:
            self.fabric.transmit(entry.msg)
        self._arm_timer(st)

    def _give_up(self, st: _TxState) -> None:
        st.dead = True
        self._disarm_timer(st)
        self.stats["give_ups"] += 1
        entries = list(st.window) + list(st.pending)
        st.window.clear()
        st.pending.clear()
        base = entries[0].seq if entries else st.next_seq
        self.nic.tracer.point(self.sim.now, self.node, "nic", "transport-dead",
                              peer=st.peer, base_seq=base, attempts=st.retries)
        self._emit("give-up", st.peer, base)
        for entry in entries:
            self.stats["errors"] += 1
            if not entry.event.triggered:
                entry.event.fail(TransportError(self.node, st.peer,
                                                entry.seq, st.retries))

    # ----------------------------------------------------------- ack intake
    def _on_ack(self, peer: str, ackseq: int) -> None:
        st = self._tx.get(peer)
        self.stats["acks_rx"] += 1
        if st is None or st.dead:
            return
        progressed = False
        while st.window and st.window[0].seq <= ackseq:
            st.window.popleft()
            progressed = True
        if not progressed:
            return
        st.retries = 0
        while st.pending and len(st.window) < self._send_limit(st):
            entry = st.pending.popleft()
            st.window.append(entry)
            self._tx_entry(st, entry)
        if st.window:
            self._arm_timer(st)
        else:
            self._disarm_timer(st)

    def _on_nack(self, peer: str, wanted: int) -> None:
        st = self._tx.get(peer)
        self.stats["nacks_rx"] += 1
        if st is None or st.dead or not st.window:
            return
        # Cumulative semantics: a NACK for `wanted` also acknowledges
        # everything below it.
        while st.window and st.window[0].seq < wanted:
            st.window.popleft()
        if not st.window:
            self._disarm_timer(st)
            return
        self._go_back_n(st, cause="nack")

    def on_peer_accept(self, peer: str, seq: int,
                       delivered: DeliveredMessage) -> None:
        """Receiver-side notification that our ``seq`` to ``peer`` was
        accepted into target memory: complete the oracle delivery event.
        (Window slide still waits for the wire ACK.)"""
        st = self._tx.get(peer)
        if st is None:
            return
        for entry in st.window:
            if entry.seq == seq:
                if not entry.event.triggered:
                    entry.event.succeed(delivered)
                return

    # ----------------------------------------------------------- recv side
    def _on_rx(self, delivered: DeliveredMessage) -> bool:
        """Fabric rx filter: True lets the NIC's handlers see the message."""
        msg = delivered.message
        if msg.kind is MessageKind.ACK and msg.seq is not None:
            if not delivered.corrupted:
                self._on_ack(msg.src, msg.seq)
            return False
        if msg.kind is MessageKind.NACK:
            if not delivered.corrupted:
                self._on_nack(msg.src, msg.seq)
            return False
        if msg.seq is None:
            # Unsequenced data: the peer runs without reliability; pass
            # through untouched (mixed-mode clusters).
            return True
        rx = self._rx.setdefault(msg.src, _RxState())
        if delivered.corrupted:
            self.stats["rx_corrupt"] += 1
            self._emit("corrupt", msg.src, msg.seq)
            self._maybe_nack(msg.src, rx)
            return False
        if msg.seq == rx.expected:
            rx.expected += 1
            self._emit("accept", msg.src, msg.seq)
            self._send_ack(msg.src, msg.seq)
            sender = self.fabric.transports.get(msg.src)
            if sender is not None:
                sender.on_peer_accept(self.node, msg.seq, delivered)
            return True
        if msg.seq < rx.expected:
            # Retransmitted duplicate: drop before any handler can see it
            # (exactly-once), and re-ACK so the sender resynchronizes.
            self.stats["rx_dups"] += 1
            self._emit("dup", msg.src, msg.seq)
            self._send_ack(msg.src, rx.expected - 1)
            return False
        # Gap: something before this was lost; go-back-N discards the
        # out-of-order arrival entirely.
        self.stats["rx_gaps"] += 1
        self._emit("gap", msg.src, msg.seq)
        self._maybe_nack(msg.src, rx)
        return False

    def _send_ack(self, peer: str, ackseq: int) -> None:
        self.stats["acks_tx"] += 1
        self.fabric.transmit(Message(
            src=self.node, dst=peer, nbytes=self.rc.ack_bytes,
            kind=MessageKind.ACK, seq=ackseq))

    def _maybe_nack(self, peer: str, rx: _RxState) -> None:
        if rx.nacked_for == rx.expected:
            return  # already reported this gap; the sender's timer backs us up
        rx.nacked_for = rx.expected
        self.stats["nacks_tx"] += 1
        self.nic.tracer.point(self.sim.now, self.node, "nic", "nack",
                              peer=peer, wanted=rx.expected)
        self.fabric.transmit(Message(
            src=self.node, dst=peer, nbytes=self.rc.ack_bytes,
            kind=MessageKind.NACK, seq=rx.expected))

    # ------------------------------------------------------------- helpers
    def _emit(self, kind: str, peer: str, seq: int) -> None:
        for probe in self.probes:
            probe(kind, peer, seq, self.sim.now)

    def flows(self) -> Dict[str, Dict[str, int]]:
        """Introspection for monitors/tests: per-peer sender state."""
        return {
            peer: {"next_seq": st.next_seq,
                   "in_flight": len(st.window) + len(st.pending),
                   "dead": int(st.dead)}
            for peer, st in sorted(self._tx.items())
        }


class SelectiveRepeatTransport(ReliableTransport):
    """Selective-repeat ARQ with SACK and optional AIMD pacing.

    Same lifecycle, probes and exactly-once guarantees as the go-back-N
    engine, but loss recovery retransmits *only* what is missing:

    * the receiver keeps a **reorder buffer** -- out-of-order arrivals
      are held (never discarded) and delivered to the NIC's handlers in
      sequence order the instant the gap below them fills, so acceptance
      stays exactly-once and exactly-in-order
      (:class:`~repro.validate.monitors.ReliableDeliveryMonitor` holds);
    * every ACK is a **SACK**: cumulative highest-in-order sequence plus
      the sorted list of buffered out-of-order sequences in
      ``Message.meta["sack"]``.  SACKed window entries are excluded from
      retransmission; SACK evidence above an unSACKed window head
      triggers one **fast retransmit** of the head per hole;
    * retransmit timeouts resend only the unSACKed window entries;
    * with ``ReliabilityConfig.pacing`` on, an **AIMD congestion
      window** (floor/ceiling from config) gates admission: +1 MSS per
      window of clean cumulative progress, halved (at most once per
      in-flight window) on an **ECN echo** -- receivers copy the
      :class:`~repro.net.fabric.DeliveredMessage` congestion bit set by
      RED+ECN switch queues into ``meta["ecn"]`` on the ACK -- or on a
      retransmit timeout.

    Selected via ``ReliabilityConfig(mode="selective-repeat")``; see
    :func:`make_transport`.
    """

    def __init__(self, nic, config: ReliabilityConfig):
        super().__init__(nic, config)
        self.stats.update({"sacked": 0, "fast_retransmits": 0,
                           "rx_buffered": 0, "cwnd_cuts": 0})

    # ------------------------------------------------------------- send side
    def _tx_state(self, peer: str) -> _SrTxState:
        st = self._tx.get(peer)
        if st is None:
            self._tx[peer] = st = _SrTxState(
                peer, cwnd=float(self.rc.effective_cwnd_ceiling))
        return st

    def _send_limit(self, st: _TxState) -> int:
        if not self.rc.pacing:
            return self.rc.window
        return max(self.rc.cwnd_floor, min(self.rc.window, int(st.cwnd)))

    def _cwnd_cut(self, st: _SrTxState, cause: str) -> None:
        """Multiplicative decrease, at most once per in-flight window."""
        if not self.rc.pacing:
            return
        if st.window and st.window[0].seq < st.cut_watermark:
            return  # still reacting to the previous congestion signal
        st.cut_watermark = st.next_seq
        st.cwnd = max(float(self.rc.cwnd_floor), st.cwnd / 2.0)
        self.stats["cwnd_cuts"] += 1
        self.nic.tracer.point(self.sim.now, self.node, "nic", "cwnd-cut",
                              peer=st.peer, cause=cause, cwnd=int(st.cwnd))

    # -------------------------------------------------------------- timers
    def _on_timer(self, st: _SrTxState, gen: int) -> None:
        if gen != st.timer_gen or st.dead or not st.window:
            return
        st.timer_armed = False
        self.stats["timeouts"] += 1
        st.retries += 1
        if st.retries > self.rc.max_retries:
            self._give_up(st)
            return
        self._cwnd_cut(st, cause="timeout")
        # Selective repeat: resend only the unSACKed entries.  If every
        # entry is SACKed the cumulative ACK itself was lost -- resend
        # the head; the receiver dup-detects and re-ACKs.
        targets = [e for e in st.window if not e.acked] or [st.window[0]]
        base = st.window[0].seq
        self.nic.tracer.point(self.sim.now, self.node, "nic", "retransmit",
                              peer=st.peer, base_seq=base, cause="timeout",
                              round=st.retries, in_flight=len(targets))
        self._emit("retransmit", st.peer, base)
        self.stats["retransmits"] += len(targets)
        for entry in targets:
            self.fabric.transmit(entry.msg)
        self._arm_timer(st)

    # ----------------------------------------------------------- ack intake
    def _on_sack(self, peer: str, ackseq: int,
                 sack: Optional[List[int]], ecn: bool) -> None:
        st = self._tx.get(peer)
        self.stats["acks_rx"] += 1
        if st is None or st.dead:
            return
        newly_acked = 0
        while st.window and st.window[0].seq <= ackseq:
            st.window.popleft()
            newly_acked += 1
        if sack:
            sackset = set(sack)
            for entry in st.window:
                if not entry.acked and entry.seq in sackset:
                    entry.acked = True
                    self.stats["sacked"] += 1
        if ecn:
            self._cwnd_cut(st, cause="ecn")
        elif newly_acked and self.rc.pacing:
            # Additive increase: ~ +1 message per window of clean progress.
            st.cwnd = min(float(self.rc.effective_cwnd_ceiling),
                          st.cwnd + newly_acked / max(st.cwnd, 1.0))
        if newly_acked:
            st.retries = 0
        # SACK evidence above an unSACKed head means the head (at least)
        # is missing at the receiver: fast-retransmit it, once per hole.
        if (sack and st.window and not st.window[0].acked
                and max(sack) > st.window[0].seq):
            head = st.window[0]
            if st.last_fast_retx != head.seq:
                st.last_fast_retx = head.seq
                self.stats["fast_retransmits"] += 1
                self._emit("retransmit", peer, head.seq)
                self.nic.tracer.point(self.sim.now, self.node, "nic",
                                      "fast-retransmit", peer=peer,
                                      seq=head.seq)
                self.fabric.transmit(head.msg)
        while st.pending and len(st.window) < self._send_limit(st):
            entry = st.pending.popleft()
            st.window.append(entry)
            self._tx_entry(st, entry)
        if not st.window:
            self._disarm_timer(st)
        elif newly_acked:
            self._arm_timer(st)

    # ----------------------------------------------------------- recv side
    def _on_rx(self, delivered: DeliveredMessage) -> bool:
        msg = delivered.message
        if msg.kind is MessageKind.ACK and msg.seq is not None:
            if not delivered.corrupted:
                meta = msg.meta
                self._on_sack(msg.src, msg.seq, meta.get("sack"),
                              bool(meta.get("ecn")))
            return False
        if msg.kind is MessageKind.NACK:
            # Mixed-mode defense (a go-back-N receiver peer): honor the
            # cumulative semantics via the base engine.
            if not delivered.corrupted:
                self._on_nack(msg.src, msg.seq)
            return False
        if msg.seq is None:
            return True
        rx = self._rx.setdefault(msg.src, _SrRxState())
        if delivered.corrupted:
            self.stats["rx_corrupt"] += 1
            self._emit("corrupt", msg.src, msg.seq)
            self._sr_ack(msg.src, rx, ecn=False)
            return False
        if msg.seq < rx.expected or msg.seq in rx.buffer:
            # Retransmitted duplicate: drop before any handler sees it
            # (exactly-once), re-SACK so the sender resynchronizes.
            self.stats["rx_dups"] += 1
            self._emit("dup", msg.src, msg.seq)
            self._sr_ack(msg.src, rx, ecn=delivered.ecn)
            return False
        if msg.seq == rx.expected:
            if not rx.buffer:
                # Common in-order case: identical flow to go-back-N.
                rx.expected += 1
                self._emit("accept", msg.src, msg.seq)
                self._sr_ack(msg.src, rx, ecn=delivered.ecn)
                sender = self.fabric.transports.get(msg.src)
                if sender is not None:
                    sender.on_peer_accept(self.node, msg.seq, delivered)
                return True
            # Gap filled with buffered successors waiting: the whole run
            # must reach the NIC's handlers in sequence order.  The
            # filter phase runs *before* the fabric dispatches handlers
            # for the current message, so we consume the delivery and
            # dispatch the in-order chain ourselves.
            chain = [delivered]
            ecn_seen = delivered.ecn
            rx.expected += 1
            while rx.expected in rx.buffer:
                nxt = rx.buffer.pop(rx.expected)
                chain.append(nxt)
                ecn_seen = ecn_seen or nxt.ecn
                rx.expected += 1
            handlers = self._rx_handler_list()
            sender = self.fabric.transports.get(msg.src)
            for d in chain:
                self._emit("accept", msg.src, d.message.seq)
                for handler in handlers:
                    handler(d)
                if sender is not None:
                    sender.on_peer_accept(self.node, d.message.seq, d)
            self._sr_ack(msg.src, rx, ecn=ecn_seen)
            return False
        # Out of order above a gap: hold it (selective repeat's whole
        # point) and SACK so the sender repairs just the hole.
        self.stats["rx_buffered"] += 1
        self._emit("buffer", msg.src, msg.seq)
        rx.buffer[msg.seq] = delivered
        self._sr_ack(msg.src, rx, ecn=delivered.ecn)
        return False

    def _rx_handler_list(self) -> List[Callable[[DeliveredMessage], None]]:
        return list(self.fabric._rx_handlers[self.node])

    def _sr_ack(self, peer: str, rx: _SrRxState, ecn: bool) -> None:
        self.stats["acks_tx"] += 1
        meta: Dict[str, object] = {}
        if rx.buffer:
            meta["sack"] = sorted(rx.buffer)
        if ecn:
            meta["ecn"] = True
        self.fabric.transmit(Message(
            src=self.node, dst=peer, nbytes=self.rc.ack_bytes,
            kind=MessageKind.ACK, seq=rx.expected - 1, meta=meta))


def make_transport(nic, config: ReliabilityConfig) -> ReliableTransport:
    """Construct the ARQ engine :class:`ReliabilityConfig.mode` selects."""
    if config.mode == "selective-repeat":
        return SelectiveRepeatTransport(nic, config)
    return ReliableTransport(nic, config)
