"""NIC reliable transport: go-back-N windows, ACK/NACK, retransmission.

The fabric model is lossless, so the seed NIC never needed sequence
numbers, timers or retries.  Fault injection (:mod:`repro.faults`)
changes that: messages can be dropped, corrupted or delayed, and the
GPU-TN protocol must keep its exactly-once trigger/delivery semantics
anyway.  This module is the engine that makes it so:

* every *data* message (put / send / get request / get reply) leaving a
  reliability-enabled NIC is stamped with a per-destination **sequence
  number** and held in a bounded **go-back-N window** until cumulatively
  ACKed;
* the receiver accepts exactly the next expected sequence per source --
  duplicates (from retransmission) and gaps (from loss) are discarded
  before they reach the NIC's rx handlers, so payload landing, flag
  bumps and rx-chained trigger counts stay **exactly-once**;
* gaps and CRC failures elicit a **NACK** carrying the expected
  sequence; the sender answers NACKs and **retransmit timeouts**
  (exponential backoff) by resending the whole window in order;
* a retry budget bounds recovery: exhausting it declares the peer dead
  and fails every outstanding and future send to it with a structured
  :class:`TransportError` on the operation's handle -- the simulation
  drains instead of deadlocking.

Completion semantics are unchanged from the lossless model: a handle's
``delivered`` event still fires at the instant the payload is *accepted*
into target memory (the simulator's oracle view), not at ACK receipt;
ACKs exist purely to slide windows and cancel timers.  With zero faults
armed the transport adds only its ACK traffic -- data timing is
untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.config import ReliabilityConfig
from repro.net.fabric import DeliveredMessage
from repro.net.packet import Message, MessageKind
from repro.sim import Event

__all__ = ["ReliableTransport", "TransportError"]


class TransportError(RuntimeError):
    """Retry budget exhausted: the transport gave up on a peer link.

    Structured so campaign reports and tests can assert on the exact
    failure point instead of string-matching.
    """

    def __init__(self, src: str, dst: str, seq: int, attempts: int):
        self.src = src
        self.dst = dst
        self.seq = seq
        self.attempts = attempts
        super().__init__(
            f"transport {src}->{dst} gave up on seq {seq} after "
            f"{attempts} retransmit rounds")

    def to_dict(self) -> Dict[str, object]:
        return {"src": self.src, "dst": self.dst, "seq": self.seq,
                "attempts": self.attempts}


@dataclass(slots=True)
class _Entry:
    """One unacknowledged data message in a peer's send window."""

    seq: int
    msg: Message
    event: Event
    on_first_tx: Optional[Callable[[], None]] = None
    sent: bool = False


@dataclass(slots=True)
class _TxState:
    """Sender-side go-back-N state for one destination peer."""

    peer: str
    next_seq: int = 0
    window: Deque[_Entry] = field(default_factory=deque)
    pending: Deque[_Entry] = field(default_factory=deque)
    retries: int = 0
    timer_gen: int = 0
    timer_armed: bool = False
    dead: bool = False


@dataclass(slots=True)
class _RxState:
    """Receiver-side state for one source peer."""

    expected: int = 0
    #: Last expected-value we NACKed (suppresses NACK storms: one NACK
    #: per distinct gap; the sender's timer covers lost NACKs).
    nacked_for: int = -1


class ReliableTransport:
    """Per-NIC reliable-delivery engine (see module docstring).

    Constructed by :meth:`repro.nic.Nic.enable_reliability`; interposes
    on the fabric via an rx filter and announces itself in the fabric's
    transport registry so receivers can complete sender-side oracle
    delivery events.
    """

    def __init__(self, nic, config: ReliabilityConfig):
        self.nic = nic
        self.sim = nic.sim
        self.fabric = nic.fabric
        self.node: str = nic.node
        self.rc = config
        self._tx: Dict[str, _TxState] = {}
        self._rx: Dict[str, _RxState] = {}
        #: Validation probes: ``(kind, peer, seq, now)`` with kinds
        #: ``tx`` / ``accept`` / ``dup`` / ``gap`` / ``corrupt`` /
        #: ``retransmit`` / ``give-up`` -- the attachment point for
        #: :class:`repro.validate.monitors.ReliableDeliveryMonitor`.
        self.probes: List[Callable[[str, str, int, int], None]] = []
        self.stats = {
            "tx_data": 0, "retransmits": 0, "timeouts": 0,
            "acks_tx": 0, "acks_rx": 0, "nacks_tx": 0, "nacks_rx": 0,
            "rx_dups": 0, "rx_gaps": 0, "rx_corrupt": 0,
            "give_ups": 0, "errors": 0,
        }
        self.fabric.register_rx_filter(self.node, self._on_rx)
        self.fabric.transports[self.node] = self

    # ------------------------------------------------------------- send side
    def send(self, msg: Message,
             on_first_tx: Optional[Callable[[], None]] = None) -> Event:
        """Sequence and (eventually) transmit ``msg``; returns the oracle
        delivery event.  It succeeds with the :class:`DeliveredMessage`
        when the payload is accepted at the target, or fails with
        :class:`TransportError` if the retry budget runs out.

        ``on_first_tx`` runs synchronously at the first real fabric
        transmission (window permitting, immediately) -- the NIC uses it
        to anchor local-completion timing to actual wire occupancy.
        """
        if msg.kind.is_control:
            raise ValueError(f"control message {msg!r} must bypass the transport")
        st = self._tx_state(msg.dst)
        ev = self.sim.event(f"rt:{self.node}->{msg.dst}")
        if st.dead:
            self.stats["errors"] += 1
            ev.fail(TransportError(self.node, msg.dst, st.next_seq, st.retries))
            return ev
        entry = _Entry(seq=st.next_seq, msg=msg, event=ev,
                       on_first_tx=on_first_tx)
        st.next_seq += 1
        msg.seq = entry.seq
        if len(st.window) < self.rc.window:
            st.window.append(entry)
            self._tx_entry(st, entry)
        else:
            st.pending.append(entry)
        return ev

    def _tx_state(self, peer: str) -> _TxState:
        st = self._tx.get(peer)
        if st is None:
            self._tx[peer] = st = _TxState(peer)
        return st

    def _tx_entry(self, st: _TxState, entry: _Entry) -> None:
        self.fabric.transmit(entry.msg)
        self.stats["tx_data"] += 1
        if not entry.sent:
            entry.sent = True
            self._emit("tx", st.peer, entry.seq)
            if entry.on_first_tx is not None:
                entry.on_first_tx()
        if not st.timer_armed:
            self._arm_timer(st)

    # -------------------------------------------------------------- timers
    def _rtt_floor_ns(self, st: _TxState) -> int:
        """Closed-form uncontended RTT for the window head: data one way,
        cumulative ACK back.  The configured timeout was tuned on the
        paper's single-switch star; on multi-hop topologies (or with
        payloads whose serialization dwarfs 20 us) an unfloored timer
        fires before an ACK could possibly return and every "timeout" is
        spurious -- go-back-N then retransmits the whole healthy window,
        and the dup-suppressed copies re-trip the timer forever."""
        head = st.window[0].msg
        net = self.fabric.net
        path = self.fabric.topology.path_latency_ns
        return (net.serialization_ns(head.nbytes) + path(self.node, st.peer)
                + net.serialization_ns(self.rc.ack_bytes)
                + path(st.peer, self.node))

    def _arm_timer(self, st: _TxState) -> None:
        st.timer_gen += 1
        st.timer_armed = True
        # RTO >= 2x the path RTT (classic Jacobson floor).  On the star
        # with Table 2 latencies the floor is well under the configured
        # 20 us, so single-switch timing is untouched.
        delay = max(self.rc.timeout_after_retries(st.retries),
                    2 * self._rtt_floor_ns(st))
        self.sim.call_later(delay, self._on_timer, st, st.timer_gen)

    def _disarm_timer(self, st: _TxState) -> None:
        st.timer_gen += 1
        st.timer_armed = False

    def _on_timer(self, st: _TxState, gen: int) -> None:
        if gen != st.timer_gen or st.dead or not st.window:
            return
        st.timer_armed = False
        self.stats["timeouts"] += 1
        self._go_back_n(st, cause="timeout")

    def _go_back_n(self, st: _TxState, cause: str) -> None:
        st.retries += 1
        if st.retries > self.rc.max_retries:
            self._give_up(st)
            return
        base = st.window[0].seq
        self.nic.tracer.point(self.sim.now, self.node, "nic", "retransmit",
                              peer=st.peer, base_seq=base, cause=cause,
                              round=st.retries, in_flight=len(st.window))
        self._emit("retransmit", st.peer, base)
        self.stats["retransmits"] += len(st.window)
        for entry in st.window:
            self.fabric.transmit(entry.msg)
        self._arm_timer(st)

    def _give_up(self, st: _TxState) -> None:
        st.dead = True
        self._disarm_timer(st)
        self.stats["give_ups"] += 1
        entries = list(st.window) + list(st.pending)
        st.window.clear()
        st.pending.clear()
        base = entries[0].seq if entries else st.next_seq
        self.nic.tracer.point(self.sim.now, self.node, "nic", "transport-dead",
                              peer=st.peer, base_seq=base, attempts=st.retries)
        self._emit("give-up", st.peer, base)
        for entry in entries:
            self.stats["errors"] += 1
            if not entry.event.triggered:
                entry.event.fail(TransportError(self.node, st.peer,
                                                entry.seq, st.retries))

    # ----------------------------------------------------------- ack intake
    def _on_ack(self, peer: str, ackseq: int) -> None:
        st = self._tx.get(peer)
        self.stats["acks_rx"] += 1
        if st is None or st.dead:
            return
        progressed = False
        while st.window and st.window[0].seq <= ackseq:
            st.window.popleft()
            progressed = True
        if not progressed:
            return
        st.retries = 0
        while st.pending and len(st.window) < self.rc.window:
            entry = st.pending.popleft()
            st.window.append(entry)
            self._tx_entry(st, entry)
        if st.window:
            self._arm_timer(st)
        else:
            self._disarm_timer(st)

    def _on_nack(self, peer: str, wanted: int) -> None:
        st = self._tx.get(peer)
        self.stats["nacks_rx"] += 1
        if st is None or st.dead or not st.window:
            return
        # Cumulative semantics: a NACK for `wanted` also acknowledges
        # everything below it.
        while st.window and st.window[0].seq < wanted:
            st.window.popleft()
        if not st.window:
            self._disarm_timer(st)
            return
        self._go_back_n(st, cause="nack")

    def on_peer_accept(self, peer: str, seq: int,
                       delivered: DeliveredMessage) -> None:
        """Receiver-side notification that our ``seq`` to ``peer`` was
        accepted into target memory: complete the oracle delivery event.
        (Window slide still waits for the wire ACK.)"""
        st = self._tx.get(peer)
        if st is None:
            return
        for entry in st.window:
            if entry.seq == seq:
                if not entry.event.triggered:
                    entry.event.succeed(delivered)
                return

    # ----------------------------------------------------------- recv side
    def _on_rx(self, delivered: DeliveredMessage) -> bool:
        """Fabric rx filter: True lets the NIC's handlers see the message."""
        msg = delivered.message
        if msg.kind is MessageKind.ACK and msg.seq is not None:
            if not delivered.corrupted:
                self._on_ack(msg.src, msg.seq)
            return False
        if msg.kind is MessageKind.NACK:
            if not delivered.corrupted:
                self._on_nack(msg.src, msg.seq)
            return False
        if msg.seq is None:
            # Unsequenced data: the peer runs without reliability; pass
            # through untouched (mixed-mode clusters).
            return True
        rx = self._rx.setdefault(msg.src, _RxState())
        if delivered.corrupted:
            self.stats["rx_corrupt"] += 1
            self._emit("corrupt", msg.src, msg.seq)
            self._maybe_nack(msg.src, rx)
            return False
        if msg.seq == rx.expected:
            rx.expected += 1
            self._emit("accept", msg.src, msg.seq)
            self._send_ack(msg.src, msg.seq)
            sender = self.fabric.transports.get(msg.src)
            if sender is not None:
                sender.on_peer_accept(self.node, msg.seq, delivered)
            return True
        if msg.seq < rx.expected:
            # Retransmitted duplicate: drop before any handler can see it
            # (exactly-once), and re-ACK so the sender resynchronizes.
            self.stats["rx_dups"] += 1
            self._emit("dup", msg.src, msg.seq)
            self._send_ack(msg.src, rx.expected - 1)
            return False
        # Gap: something before this was lost; go-back-N discards the
        # out-of-order arrival entirely.
        self.stats["rx_gaps"] += 1
        self._emit("gap", msg.src, msg.seq)
        self._maybe_nack(msg.src, rx)
        return False

    def _send_ack(self, peer: str, ackseq: int) -> None:
        self.stats["acks_tx"] += 1
        self.fabric.transmit(Message(
            src=self.node, dst=peer, nbytes=self.rc.ack_bytes,
            kind=MessageKind.ACK, seq=ackseq))

    def _maybe_nack(self, peer: str, rx: _RxState) -> None:
        if rx.nacked_for == rx.expected:
            return  # already reported this gap; the sender's timer backs us up
        rx.nacked_for = rx.expected
        self.stats["nacks_tx"] += 1
        self.nic.tracer.point(self.sim.now, self.node, "nic", "nack",
                              peer=peer, wanted=rx.expected)
        self.fabric.transmit(Message(
            src=self.node, dst=peer, nbytes=self.rc.ack_bytes,
            kind=MessageKind.NACK, seq=rx.expected))

    # ------------------------------------------------------------- helpers
    def _emit(self, kind: str, peer: str, seq: int) -> None:
        for probe in self.probes:
            probe(kind, peer, seq, self.sim.now)

    def flows(self) -> Dict[str, Dict[str, int]]:
        """Introspection for monitors/tests: per-peer sender state."""
        return {
            peer: {"next_seq": st.next_seq,
                   "in_flight": len(st.window) + len(st.pending),
                   "dead": int(st.dead)}
            for peer, st in sorted(self._tx.items())
        }
