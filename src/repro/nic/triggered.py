"""Triggered-operation semantics (paper Sections 3.1-3.2).

A :class:`TriggerEntry` is the NIC-resident record the paper describes:

* **Network Operation** -- full description of the deferred operation;
* **Tag** -- unique identifier written by the GPU;
* **Counter** -- number of matching tag writes collected so far;
* **Threshold** -- writes required before the operation fires.

:class:`TriggerList` owns the entries (through one of the
:mod:`~repro.nic.lookup` structures) and implements both directions of the
**relaxed synchronization model** (Section 3.2):

* a GPU tag write with no matching entry allocates a *placeholder*
  (counter only, no operation/threshold) instead of being dropped;
* a CPU registration that finds a placeholder adopts its counter and, if
  the counter already meets the threshold, fires immediately.

Each entry fires **exactly once**; this invariant is property-tested
against arbitrary interleavings of registration and trigger writes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["NetworkOp", "TriggerEntry", "TriggerList"]

_op_ids = itertools.count(1)


@dataclass(slots=True)
class NetworkOp:
    """The deferred network operation held in a trigger entry.

    Mirrors the paper's field list: "a pointer to the memory resident send
    buffer, length, target id, etc.".
    """

    kind: str                 # "put" | "get" | "send"
    local_addr: int
    nbytes: int
    target: str
    remote_addr: Optional[int] = None
    #: delivered to the target NIC to locate the matching completion flag
    wire_tag: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    op_id: int = field(default_factory=lambda: next(_op_ids))

    def __post_init__(self) -> None:
        if self.kind not in ("put", "get", "send"):
            raise ValueError(f"unsupported network op kind {self.kind!r}")
        if self.nbytes < 0:
            raise ValueError("negative operation size")


@dataclass(slots=True)
class TriggerEntry:
    """One row of the NIC trigger list."""

    tag: int
    op: Optional[NetworkOp] = None
    threshold: Optional[int] = None
    counter: int = 0
    fired: bool = False
    freed: bool = False

    @property
    def armed(self) -> bool:
        """True once the CPU has supplied the operation and threshold."""
        return self.op is not None and self.threshold is not None

    @property
    def is_placeholder(self) -> bool:
        return not self.armed

    @property
    def ready(self) -> bool:
        return (self.armed and not self.fired
                and self.counter >= self.threshold)  # type: ignore[operator]


class TriggerList:
    """The NIC's list of registered/placeholder trigger entries."""

    def __init__(self, lookup, on_fire: Callable[[TriggerEntry], None]):
        """``lookup`` is a :mod:`repro.nic.lookup` structure; ``on_fire``
        is invoked exactly once per entry when it becomes ready."""
        self.lookup = lookup
        self.on_fire = on_fire
        #: Fired-but-not-yet-freed entries, oldest first.  ``free`` purges
        #: its entry (lazily compacted), so persistent-kernel runs that
        #: register/fire/free in a loop keep this bounded by the number of
        #: entries still awaiting their free.
        self.fired_log: List[TriggerEntry] = []
        self._freed_in_log = 0
        #: Validation/metrics observers: called with ``(kind, entry)`` for
        #: kinds ``"register"``, ``"trigger"``, ``"fire"`` and ``"free"``
        #: -- the attachment point for :mod:`repro.validate` exactly-once
        #: monitors and the :mod:`repro.metrics` instrumentation.
        self.observers: List[Callable[[str, "TriggerEntry"], None]] = []
        self.stats = {"registered": 0, "triggers": 0, "placeholders": 0,
                      "fired": 0, "freed": 0}

    def _notify(self, kind: str, entry: "TriggerEntry") -> None:
        for observer in self.observers:
            observer(kind, entry)

    def __len__(self) -> int:
        return len(self.lookup)

    # ----------------------------------------------------------------- CPU
    def register(self, op: NetworkOp, tag: int, threshold: int) -> TriggerEntry:
        """CPU-side registration of a triggered operation (paper step 1).

        Adopts an existing placeholder's counter if the GPU got here first
        (relaxed synchronization), firing immediately when already met.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        entry = self.lookup.find(tag)
        if entry is not None:
            if entry.armed and not entry.fired:
                raise ValueError(f"tag {tag} already registered and pending")
            if entry.fired:
                raise ValueError(f"tag {tag} already fired; free it before reuse")
            # Placeholder allocated by an early GPU trigger: arm it.
            entry.op = op
            entry.threshold = threshold
        else:
            entry = TriggerEntry(tag=tag, op=op, threshold=threshold)
            self.lookup.insert(entry)
        self.stats["registered"] += 1
        self._notify("register", entry)
        if entry.ready:
            self._fire(entry)
        return entry

    # ----------------------------------------------------------------- GPU
    def trigger(self, tag: int) -> TriggerEntry:
        """A tag write popped from the trigger-address FIFO (paper step 3).

        Unknown tags allocate a placeholder entry (Section 3.2) rather
        than erroring.
        """
        entry = self.lookup.find(tag)
        if entry is None:
            entry = TriggerEntry(tag=tag)
            self.lookup.insert(entry)
            self.stats["placeholders"] += 1
        entry.counter += 1
        self.stats["triggers"] += 1
        self._notify("trigger", entry)
        if entry.ready:
            self._fire(entry)
        return entry

    # ------------------------------------------------------------- internal
    def _fire(self, entry: TriggerEntry) -> None:
        assert not entry.fired, "double fire must be impossible"
        entry.fired = True
        self.fired_log.append(entry)
        self.stats["fired"] += 1
        self._notify("fire", entry)
        self.on_fire(entry)

    def free(self, entry: TriggerEntry) -> None:
        """Remove a *consumed* entry, releasing its lookup slot.

        Freeing an entry that has not fired would silently drop a
        registered network operation (or a placeholder's accumulated
        trigger counts), so it raises instead.
        """
        if not entry.fired:
            state = "armed" if entry.armed else "placeholder"
            raise ValueError(
                f"cannot free {state} entry tag={entry.tag}: it has not "
                "fired (freeing would drop a pending operation)")
        self.lookup.remove(entry)
        entry.freed = True
        self._freed_in_log += 1
        self.stats["freed"] += 1
        # Amortized-O(1) purge: compact once half the log is freed, so the
        # log never holds more than ~2x the live fired entries.
        if self._freed_in_log * 2 >= len(self.fired_log):
            self.fired_log = [e for e in self.fired_log if not e.freed]
            self._freed_in_log = 0
        self._notify("free", entry)

    # --------------------------------------------------------------- query
    def entry(self, tag: int) -> Optional[TriggerEntry]:
        return self.lookup.find(tag)

    def pending(self) -> List[TriggerEntry]:
        return [e for e in self.lookup if not e.fired]
