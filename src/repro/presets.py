"""Alternative system presets.

The paper's evaluation platform is a coherent APU (Table 2), but it
notes (§5.1, §5.2) that GPU-TN "can still be applied in a more
traditional discrete GPU architecture", and that on such a system "a
more traditional discrete GPU setup could see much larger performance
improvement from GDS, since it would avoid a costly critical path
control flow switch over the IO bus".

:func:`discrete_gpu_config` models that system: CPU<->GPU interactions
cross PCIe, so

* kernel dispatch and completion detection pay bus latency,
* the CPU's post-kernel send path additionally stages data over the bus
  (HDN gets slower -- the "costly control flow switch" the paper means),
* GPU->NIC MMIO (doorbells and triggers) pays PCIe posted-write latency
  instead of on-die fabric latency.

A test asserts the paper's §5.2 prediction holds under this preset: the
GDS-over-HDN improvement is larger than on the APU.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import CpuConfig, GpuConfig, NicConfig, SystemConfig, default_config

__all__ = ["discrete_gpu_config"]

#: One-way PCIe posted-write latency (gen3-era, switch + root complex).
PCIE_POSTED_WRITE_NS = 700
#: Extra CPU-side cost to stage/track a transfer across the bus.
PCIE_CONTROL_SWITCH_NS = 1200


def discrete_gpu_config(base: SystemConfig | None = None) -> SystemConfig:
    """The Table 2 system re-plumbed as a discrete (PCIe) GPU node."""
    base = base or default_config()
    cpu = replace(
        base.cpu,
        # Kernel dispatch crosses the bus; completion detection needs a
        # bus round trip even when spinning on a host-visible flag.
        kernel_dispatch_sw_ns=base.cpu.kernel_dispatch_sw_ns
        + PCIE_CONTROL_SWITCH_NS,
        completion_poll_ns=base.cpu.completion_poll_ns + PCIE_POSTED_WRITE_NS,
        # The HDN send path moves control (and, without GPUDirect, data)
        # across the bus before the NIC can be posted.
        packet_build_ns=base.cpu.packet_build_ns + PCIE_CONTROL_SWITCH_NS,
    )
    gpu = replace(
        base.gpu,
        # System-scope operations traverse PCIe instead of the on-die
        # fabric.
        atomic_system_store_ns=base.gpu.atomic_system_store_ns
        + PCIE_POSTED_WRITE_NS // 2,
        fence_system_ns=base.gpu.fence_system_ns + PCIE_POSTED_WRITE_NS // 2,
    )
    nic = replace(
        base.nic,
        doorbell_mmio_ns=base.nic.doorbell_mmio_ns + PCIE_POSTED_WRITE_NS,
    )
    return base.with_(cpu=cpu, gpu=gpu, nic=nic)
