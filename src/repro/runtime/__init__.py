"""Unified experiment runtime.

Every paper exhibit is a *parameter sweep over simulations*.  This package
factors the shared lifecycle out of the application modules:

* :class:`~repro.runtime.experiment.Experiment` -- the template for one
  simulated run: config overlay -> :class:`~repro.cluster.Cluster`
  construction -> flow spawning -> run -> typed
  :class:`~repro.runtime.record.RunRecord`;
* :class:`~repro.runtime.observers.Observers` -- the declarative bundle of
  everything that watches or perturbs one run (metrics registry,
  instrument callables, fault plan, transport reliability), armed on the
  cluster in dependency order by ``Experiment.execute(observers=...)``;
* :class:`~repro.runtime.sweep.Sweep` -- declarative parameter grids fanned
  out over a ``multiprocessing`` pool with deterministic result ordering
  (parallel output is bit-identical to serial);
* :class:`~repro.runtime.cache.ResultCache` -- an on-disk result cache keyed
  by (code version, config hash, sweep point);
* :mod:`~repro.runtime.traceexport` -- Chrome trace-event JSON export from
  :class:`~repro.sim.trace.Tracer` (loadable in Perfetto / chrome://tracing).
"""

from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.experiment import Execution, Experiment
from repro.runtime.observers import Observers
from repro.runtime.record import RunRecord, config_fingerprint
from repro.runtime.sweep import Sweep, run_sweep
from repro.runtime.traceexport import chrome_trace, export_chrome_trace

__all__ = [
    "Execution",
    "Experiment",
    "Observers",
    "ResultCache",
    "RunRecord",
    "Sweep",
    "chrome_trace",
    "config_fingerprint",
    "default_cache_dir",
    "export_chrome_trace",
    "run_sweep",
]
