"""On-disk result cache.

Keys are ``(code version, experiment name, config hash, sweep point)`` --
exactly the inputs that determine a simulated result -- so re-rendering a
figure after an unrelated edit is free while a config or parameter change
misses cleanly.  Records are stored as canonical JSON, one file per key,
fanned into 256 two-hex-digit shards.  Writes are atomic (temp file +
rename) so concurrent sweep workers never observe torn entries -- the
property the service layer leans on: parallel sweep workers write
through to the cache from their own processes (and may be SIGKILLed
mid-``put``), while the submitting process probes it concurrently.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.runtime.record import RunRecord, make_cache_key
from repro.version import __version__

__all__ = ["ResultCache", "default_cache_dir"]

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default directory name, created under the current working directory.
CACHE_DIR_NAME = ".repro-cache"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path.cwd() / CACHE_DIR_NAME


class ResultCache:
    """Content-addressed store of :class:`RunRecord` JSON files."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: Misses that were then satisfied by resuming a checkpoint
        #: rather than recomputing from t=0 (tallied by the sweep runner;
        #: always ``<= misses`` -- a restored point is still a cache miss).
        self.restored = 0

    # ------------------------------------------------------------------ paths
    def path_for_key(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ----------------------------------------------------------------- lookup
    def get(self, experiment: str, params: Mapping[str, Any],
            config_fp: str, code_version: str = __version__
            ) -> Optional[RunRecord]:
        """Return the cached record for a sweep point, or None on miss.

        Corrupt or unreadable entries count as misses (and are left for
        the next :meth:`put` to overwrite).
        """
        key = make_cache_key(experiment, params, config_fp, code_version)
        path = self.path_for_key(key)
        try:
            text = path.read_text()
            record = RunRecord.from_json(text)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, record: RunRecord) -> Path:
        """Store a record atomically; returns the entry path."""
        path = self.path_for_key(record.cache_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(record.to_json())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def stats(self) -> dict:
        """This object's lookup tally, as reported in sweep/campaign
        summaries and ``--json`` outputs: ``{"hits", "misses",
        "restored"}``.  ``restored`` splits the misses: that many were
        resumed from a checkpoint instead of recomputed from t=0."""
        return {"hits": self.hits, "misses": self.misses,
                "restored": self.restored}

    # ------------------------------------------------------------- housekeeping
    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Also sweeps up orphaned ``*.tmp`` files -- the leftovers of
        :meth:`put` calls killed between ``mkstemp`` and ``rename``
        (e.g. a sweep worker dying mid-write).  Orphans do not count
        toward the return value; they were never entries.
        """
        n = 0
        if not self.root.is_dir():
            return n
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                entry.unlink()
                n += 1
            for orphan in sorted(shard.glob("*.tmp")):
                try:
                    orphan.unlink()
                except OSError:  # pragma: no cover - racing writer
                    pass
        return n

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ResultCache {self.root} entries={len(self)} "
                f"hits={self.hits} misses={self.misses}>")
