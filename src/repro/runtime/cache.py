"""On-disk result cache (a facade over pluggable storage backends).

Keys are ``(code version, experiment name, config hash, sweep point)`` --
exactly the inputs that determine a simulated result -- so re-rendering a
figure after an unrelated edit is free while a config or parameter change
misses cleanly.  Storage lives behind the
:class:`~repro.service.backends.CacheBackend` protocol: the default
:class:`~repro.service.backends.LocalDirBackend` stores records as
canonical JSON, one file per key, fanned into 256 two-hex-digit shards,
with atomic writes (temp file + rename) so concurrent sweep workers never
observe torn entries; remote workers swap in a
:class:`~repro.service.backends.RemoteCacheBackend` that proxies the same
``get``/``put`` traffic through their job connection.

:class:`ResultCache` itself owns only the hit/miss/restored tally, so the
``stats()`` schema campaign summaries report is identical whichever
backend moves the bytes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.runtime.record import RunRecord
from repro.version import __version__

__all__ = ["ResultCache", "default_cache_dir"]

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default directory name, created under the current working directory.
CACHE_DIR_NAME = ".repro-cache"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path.cwd() / CACHE_DIR_NAME


class ResultCache:
    """Content-addressed store of :class:`RunRecord` entries.

    ``ResultCache(root=...)`` keeps its historical meaning -- a local
    sharded directory -- while ``ResultCache(backend=...)`` mounts any
    :class:`~repro.service.backends.CacheBackend`.  The facade counts
    hits, misses and checkpoint restores; the backend only moves records.
    """

    def __init__(self, root: Union[str, Path, None] = None, *,
                 backend: Any = None):
        # Imported lazily: repro.service is a client of the runtime, so
        # an eager import here would be circular.
        from repro.service.backends import LocalDirBackend

        if backend is not None and root is not None:
            raise ValueError("pass root= or backend=, not both")
        if backend is None:
            backend = LocalDirBackend(root if root is not None
                                      else default_cache_dir())
        self.backend = backend
        #: Storage directory of a local-dir backend (``None`` for
        #: backends with no filesystem root, e.g. remote proxies).
        self.root: Optional[Path] = getattr(backend, "root", None)
        self.hits = 0
        self.misses = 0
        #: Misses that were then satisfied by resuming a checkpoint
        #: rather than recomputing from t=0 (tallied by the sweep runner;
        #: always ``<= misses`` -- a restored point is still a cache miss).
        self.restored = 0

    # ------------------------------------------------------------------ paths
    def path_for_key(self, key: str) -> Path:
        return self.backend.path_for_key(key)

    # ----------------------------------------------------------------- lookup
    def get(self, experiment: str, params: Mapping[str, Any],
            config_fp: str, code_version: str = __version__
            ) -> Optional[RunRecord]:
        """Return the cached record for a sweep point, or None on miss.

        Corrupt or unreadable entries count as misses (and are left for
        the next :meth:`put` to overwrite).
        """
        record = self.backend.get(experiment, params, config_fp, code_version)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, record: RunRecord) -> Any:
        """Store a record; returns the backend's handle (entry path for
        the local-dir backend)."""
        return self.backend.put(record)

    def stats(self) -> dict:
        """This object's lookup tally, as reported in sweep/campaign
        summaries and ``--json`` outputs: ``{"hits", "misses",
        "restored"}``.  ``restored`` splits the misses: that many were
        resumed from a checkpoint instead of recomputed from t=0."""
        return {"hits": self.hits, "misses": self.misses,
                "restored": self.restored}

    # ------------------------------------------------------------- housekeeping
    def clear(self) -> int:
        """Delete every entry; returns the number removed (local-dir
        backends; see :meth:`LocalDirBackend.clear`)."""
        return self.backend.clear()

    def __len__(self) -> int:
        return len(self.backend)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.root if self.root is not None else self.backend
        return (f"<ResultCache {where} "
                f"hits={self.hits} misses={self.misses}>")
