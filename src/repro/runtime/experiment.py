"""The Experiment template: one simulated run, end to end.

Every paper exhibit used to hand-roll the same five steps: overlay a
config, build a :class:`~repro.cluster.Cluster`, spawn per-node flows,
``cluster.run()``, then scrape the tracer and process values into an
ad-hoc result object.  :class:`Experiment` captures that lifecycle once;
concrete experiments implement only the hooks that differ.

Experiments must be picklable: :mod:`repro.service` ships each sweep
worker the experiment + config working set exactly once (pool
initializer) and journals it with stored jobs, so experiments hold no
cluster or simulator state -- everything transient lives in the per-run
context dict threaded through the hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cluster import Cluster
from repro.config import SystemConfig, default_config
from repro.runtime.observers import Observers
from repro.runtime.record import RunRecord, config_fingerprint

__all__ = ["Execution", "Experiment"]


@dataclass
class Execution:
    """One finished run: the portable record plus in-process artifacts.

    ``raw`` is the experiment's legacy result object (e.g.
    :class:`~repro.apps.jacobi.JacobiResult`) and ``cluster`` the live
    cluster -- both stay in-process; only ``record`` crosses process and
    cache boundaries.  ``resumed_from_ns`` is the simulation time of the
    checkpoint this run restored from, or ``None`` for a from-scratch
    run (checkpointing disabled, or no usable snapshot found).
    """

    record: RunRecord
    raw: Any
    cluster: Cluster
    resumed_from_ns: Optional[int] = None


class Experiment:
    """Template for one simulated experiment.

    Subclasses set :attr:`name` and :attr:`defaults` and implement
    :meth:`build_cluster`, :meth:`setup` and :meth:`finish`; the optional
    hooks :meth:`configure`, :meth:`trace_default` and :meth:`drive` cover
    config overlays, tracing policy and non-standard run loops.
    """

    #: Stable identifier; part of every cache key.
    name: str = "experiment"
    #: Default parameter values, merged under the caller's sweep point.
    defaults: Dict[str, Any] = {}

    # ------------------------------------------------------------------ hooks
    def configure(self, params: Dict[str, Any],
                  config: SystemConfig) -> SystemConfig:
        """Overlay per-point settings onto the base config (default: none)."""
        return config

    def trace_default(self, params: Dict[str, Any]) -> bool:
        """Whether runs trace when the caller does not say (default: off --
        tracing every span of a large sweep costs memory and time)."""
        return False

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        raise NotImplementedError

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        """Allocate buffers and spawn flows; returns the run context.

        The context's ``"procs"`` list (if present) is error-checked after
        the run in order, so put the process whose failure should win first.
        """
        raise NotImplementedError

    def drive(self, cluster: Cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        """Advance the simulation to completion (default: drain the heap)."""
        cluster.run()

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]) -> Any:
        """Return ``(metrics, raw)``: JSON-safe scalars for the record plus
        the experiment's in-process result object."""
        raise NotImplementedError

    # -------------------------------------------------- checkpointing hooks
    def checkpoint_prefix(self, params: Dict[str, Any]
                          ) -> Optional[tuple]:
        """Declare a shared parameter prefix for incremental sweeps.

        Return ``(prefix_params, divergence_ns)`` -- the subset of
        ``params`` that fully determines the simulation strictly before
        sim-time ``divergence_ns`` -- or ``None`` (the default: every
        parameter matters from t=0, no sharing).  Checkpoints taken
        before the divergence horizon are stored under the prefix
        identity and reused by sibling points that share it; on such a
        resume, :meth:`apply_tail_params` overlays this point's tail.
        """
        return None

    def apply_tail_params(self, world: Dict[str, Any],
                          params: Dict[str, Any]) -> None:
        """Overlay tail (non-prefix) parameters onto a world restored
        from a *shared prefix* checkpoint.  Must only touch state the
        pre-divergence simulation never read (default: nothing)."""

    # --------------------------------------------------------------- template
    def resolve_params(self, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        merged = dict(self.defaults)
        merged.update(params or {})
        return merged

    def execute(self, params: Optional[Dict[str, Any]] = None,
                config: Optional[SystemConfig] = None,
                trace: Optional[bool] = None, *,
                observers: Optional[Any] = None,
                checkpoint: Optional[Any] = None) -> Execution:
        """Run the full lifecycle once; returns record + raw + cluster.

        ``observers`` bundles everything that watches or perturbs the run
        -- metrics registry, instrument callables, fault plan, transport
        reliability -- into one :class:`~repro.runtime.observers.Observers`
        (or any of its :meth:`~repro.runtime.observers.Observers.coerce`
        shorthands: a registry, a callable, or an iterable of callables).
        It is armed on the freshly built cluster before :meth:`setup`, in
        dependency order (reliability, faults, metrics, instruments).
        ``None`` -- the default -- arms nothing and runs the exact
        pre-observability code path, so records stay byte-identical.

        ``checkpoint`` -- a :class:`repro.checkpoint.CheckpointConfig`
        -- arms periodic sim-time snapshots and resume-from-latest; see
        :meth:`_execute_checkpointed`.  ``None`` (the default) runs the
        exact pre-checkpoint code path.
        """
        obs = Observers.coerce(observers)
        p = self.resolve_params(params)
        cfg = self.configure(p, config or default_config())
        do_trace = self.trace_default(p) if trace is None else trace
        if checkpoint is not None:
            return self._execute_checkpointed(p, cfg, do_trace, obs, checkpoint)
        cluster = self.build_cluster(p, cfg, do_trace)
        registry = obs.arm(cluster) if obs is not None else None
        ctx = self.setup(cluster, p)
        self.drive(cluster, ctx, p)
        for proc in ctx.get("procs", ()):
            if not proc.ok:
                raise proc.value
        metrics_out, raw = self.finish(cluster, ctx, p)
        counters = getattr(cluster, "transport_counters", None)
        record = RunRecord(
            experiment=self.name,
            params=p,
            config_fingerprint=config_fingerprint(cfg),
            metrics=metrics_out,
            hazards=cluster.total_hazards(),
            spans=_span_rows(cluster.tracer) if do_trace else (),
            transport=counters() if counters is not None else {},
            telemetry=registry.dump() if registry is not None else {},
        )
        return Execution(record=record, raw=raw, cluster=cluster)

    def _execute_checkpointed(self, p: Dict[str, Any], cfg: SystemConfig,
                              do_trace: bool, obs: Optional[Any],
                              ck: Any) -> Execution:
        """The checkpoint-armed run loop.

        Drives the simulation in grid-aligned chunks of ``ck.interval_ns``
        sim-time, snapshotting the whole world (cluster + run context +
        observer registry) after each chunk while events remain.  On
        entry, resumes from the newest usable per-point checkpoint --
        falling back to the experiment's shared prefix pool, then to a
        from-scratch build.  Grid alignment plus whole-world pickling is
        what makes a resumed run's RunRecord byte-identical to an
        uninterrupted one.
        """
        from repro import checkpoint as ckpt

        if type(self).drive is not Experiment.drive:
            raise ckpt.CheckpointError(
                f"experiment {self.name!r} overrides drive(); periodic "
                "checkpointing requires the default drain-the-heap drive")
        cfg_fp = config_fingerprint(cfg)
        own_fp = ckpt.point_fingerprint(self.name, p, cfg_fp)
        prefix_fp: Optional[str] = None
        divergence_ns: Optional[int] = None
        if ck.shared_prefix:
            prefix = self.checkpoint_prefix(p)
            if prefix is not None:
                prefix_params, divergence_ns = prefix
                prefix_fp = ckpt.point_fingerprint(
                    self.name + "#prefix", prefix_params, cfg_fp)

        world: Optional[Dict[str, Any]] = None
        resumed_from: Optional[int] = None
        if ck.resume:
            world, resumed_from = self._load_checkpointed_world(
                ckpt, ck, own_fp, prefix_fp, divergence_ns, cfg_fp, p)
        if world is None:
            cluster = self.build_cluster(p, cfg, do_trace)
            registry = obs.arm(cluster) if obs is not None else None
            ctx = self.setup(cluster, p)
            world = {"cluster": cluster, "ctx": ctx, "registry": registry}
        else:
            cluster = world["cluster"]
            ctx = world["ctx"]
            registry = world["registry"]

        sim = cluster.sim
        interval = ck.interval_ns
        extra = {"interval_ns": interval}
        while True:
            nxt = sim.peek()
            if nxt is None:
                break
            horizon = ((nxt + interval - 1) // interval) * interval
            sim.run(until=horizon)
            if sim.peek() is None:
                break  # drained inside this chunk; nothing left to protect
            if sim.now == 0:
                continue  # t=0 is not on the grid; resume = from-scratch
            if prefix_fp is not None and sim.now < divergence_ns:
                ckpt.save_checkpoint(
                    ck.directory, world, experiment=self.name,
                    point_fp=prefix_fp, config_fp=cfg_fp,
                    sim_now_ns=sim.now, extra=extra, skip_existing=True)
            else:
                ckpt.save_checkpoint(
                    ck.directory, world, experiment=self.name,
                    point_fp=own_fp, config_fp=cfg_fp,
                    sim_now_ns=sim.now, extra=extra)
                ckpt.prune_checkpoints(ck.directory, own_fp, ck.keep)

        for proc in ctx.get("procs", ()):
            if not proc.ok:
                raise proc.value
        metrics_out, raw = self.finish(cluster, ctx, p)
        counters = getattr(cluster, "transport_counters", None)
        record = RunRecord(
            experiment=self.name,
            params=p,
            config_fingerprint=cfg_fp,
            metrics=metrics_out,
            hazards=cluster.total_hazards(),
            spans=_span_rows(cluster.tracer) if do_trace else (),
            transport=counters() if counters is not None else {},
            telemetry=registry.dump() if registry is not None else {},
        )
        # The point is done: its private snapshots have served their
        # purpose (shared prefix snapshots stay for sibling points).
        ckpt.prune_checkpoints(ck.directory, own_fp, 0)
        return Execution(record=record, raw=raw, cluster=cluster,
                         resumed_from_ns=resumed_from)

    def _load_checkpointed_world(self, ckpt, ck, own_fp, prefix_fp,
                                 divergence_ns, cfg_fp, p):
        """Newest usable world: own checkpoints first, then the shared
        prefix pool (with tail params overlaid).  Unusable snapshots --
        foreign version, bad digest, different interval -- are skipped;
        the caller falls back to a from-scratch build."""
        candidates = []
        own = ckpt.latest_checkpoint(ck.directory, own_fp)
        if own is not None:
            candidates.append((own, False))
        if prefix_fp is not None:
            shared = ckpt.latest_checkpoint(ck.directory, prefix_fp,
                                            below_ns=divergence_ns)
            if shared is not None:
                candidates.append((shared, True))
        for (sim_ns, path), is_prefix in candidates:
            try:
                world, header = ckpt.load_checkpoint(
                    path, expect_config_fp=cfg_fp)
                if header.get("extra", {}).get("interval_ns") != ck.interval_ns:
                    raise ckpt.CheckpointError(
                        f"{path}: snapshot grid interval "
                        f"{header.get('extra', {}).get('interval_ns')!r} != "
                        f"configured {ck.interval_ns} (grids must match for "
                        "byte-identical resume)")
            except ckpt.CheckpointError:
                continue
            if is_prefix:
                self.apply_tail_params(world, p)
            return world, sim_ns
        return None, None

    def run(self, params: Optional[Dict[str, Any]] = None,
            config: Optional[SystemConfig] = None,
            trace: Optional[bool] = None, *,
            observers: Optional[Any] = None) -> RunRecord:
        """Run once and return only the portable :class:`RunRecord`."""
        return self.execute(params, config, trace, observers=observers).record


def _span_rows(tracer) -> tuple:
    return tuple(sorted(
        (s.node, s.actor, s.phase, s.start, s.end)
        for s in tracer.spans if s.end is not None
    ))
