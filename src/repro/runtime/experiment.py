"""The Experiment template: one simulated run, end to end.

Every paper exhibit used to hand-roll the same five steps: overlay a
config, build a :class:`~repro.cluster.Cluster`, spawn per-node flows,
``cluster.run()``, then scrape the tracer and process values into an
ad-hoc result object.  :class:`Experiment` captures that lifecycle once;
concrete experiments implement only the hooks that differ.

Experiments must be picklable: :mod:`repro.service` ships each sweep
worker the experiment + config working set exactly once (pool
initializer) and journals it with stored jobs, so experiments hold no
cluster or simulator state -- everything transient lives in the per-run
context dict threaded through the hooks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cluster import Cluster
from repro.config import SystemConfig, default_config
from repro.runtime.observers import Observers
from repro.runtime.record import RunRecord, config_fingerprint

__all__ = ["Execution", "Experiment"]


@dataclass
class Execution:
    """One finished run: the portable record plus in-process artifacts.

    ``raw`` is the experiment's legacy result object (e.g.
    :class:`~repro.apps.jacobi.JacobiResult`) and ``cluster`` the live
    cluster -- both stay in-process; only ``record`` crosses process and
    cache boundaries.
    """

    record: RunRecord
    raw: Any
    cluster: Cluster


class Experiment:
    """Template for one simulated experiment.

    Subclasses set :attr:`name` and :attr:`defaults` and implement
    :meth:`build_cluster`, :meth:`setup` and :meth:`finish`; the optional
    hooks :meth:`configure`, :meth:`trace_default` and :meth:`drive` cover
    config overlays, tracing policy and non-standard run loops.
    """

    #: Stable identifier; part of every cache key.
    name: str = "experiment"
    #: Default parameter values, merged under the caller's sweep point.
    defaults: Dict[str, Any] = {}

    # ------------------------------------------------------------------ hooks
    def configure(self, params: Dict[str, Any],
                  config: SystemConfig) -> SystemConfig:
        """Overlay per-point settings onto the base config (default: none)."""
        return config

    def trace_default(self, params: Dict[str, Any]) -> bool:
        """Whether runs trace when the caller does not say (default: off --
        tracing every span of a large sweep costs memory and time)."""
        return False

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        raise NotImplementedError

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        """Allocate buffers and spawn flows; returns the run context.

        The context's ``"procs"`` list (if present) is error-checked after
        the run in order, so put the process whose failure should win first.
        """
        raise NotImplementedError

    def drive(self, cluster: Cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        """Advance the simulation to completion (default: drain the heap)."""
        cluster.run()

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]) -> Any:
        """Return ``(metrics, raw)``: JSON-safe scalars for the record plus
        the experiment's in-process result object."""
        raise NotImplementedError

    # --------------------------------------------------------------- template
    def resolve_params(self, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        merged = dict(self.defaults)
        merged.update(params or {})
        return merged

    def execute(self, params: Optional[Dict[str, Any]] = None,
                config: Optional[SystemConfig] = None,
                trace: Optional[bool] = None,
                instrument: Optional[Any] = None,
                metrics: Optional[Any] = None, *,
                observers: Optional[Any] = None) -> Execution:
        """Run the full lifecycle once; returns record + raw + cluster.

        ``observers`` bundles everything that watches or perturbs the run
        -- metrics registry, instrument callables, fault plan, transport
        reliability -- into one :class:`~repro.runtime.observers.Observers`
        (or any of its :meth:`~repro.runtime.observers.Observers.coerce`
        shorthands: a registry, a callable, or an iterable of callables).
        It is armed on the freshly built cluster before :meth:`setup`, in
        dependency order (reliability, faults, metrics, instruments).
        ``None`` -- the default -- arms nothing and runs the exact
        pre-observability code path, so records stay byte-identical.

        ``instrument=`` and ``metrics=`` are deprecated spellings of
        ``observers=Observers(instruments=(fn,))`` and
        ``observers=Observers(metrics=registry)``; they emit
        :class:`DeprecationWarning` and will be removed.
        """
        obs = Observers.coerce(observers)
        if instrument is not None:
            warnings.warn(
                "Experiment.execute(instrument=...) is deprecated; pass "
                "observers=Observers(instruments=(fn,)) instead",
                DeprecationWarning, stacklevel=2)
        if metrics is not None:
            warnings.warn(
                "Experiment.execute(metrics=...) is deprecated; pass "
                "observers=Observers(metrics=registry) instead",
                DeprecationWarning, stacklevel=2)
        if instrument is not None or metrics is not None:
            obs = (obs or Observers()).merged_with(instrument=instrument,
                                                   metrics=metrics)

        p = self.resolve_params(params)
        cfg = self.configure(p, config or default_config())
        do_trace = self.trace_default(p) if trace is None else trace
        cluster = self.build_cluster(p, cfg, do_trace)
        registry = obs.arm(cluster) if obs is not None else None
        ctx = self.setup(cluster, p)
        self.drive(cluster, ctx, p)
        for proc in ctx.get("procs", ()):
            if not proc.ok:
                raise proc.value
        metrics_out, raw = self.finish(cluster, ctx, p)
        counters = getattr(cluster, "transport_counters", None)
        record = RunRecord(
            experiment=self.name,
            params=p,
            config_fingerprint=config_fingerprint(cfg),
            metrics=metrics_out,
            hazards=cluster.total_hazards(),
            spans=_span_rows(cluster.tracer) if do_trace else (),
            transport=counters() if counters is not None else {},
            telemetry=registry.dump() if registry is not None else {},
        )
        return Execution(record=record, raw=raw, cluster=cluster)

    def run(self, params: Optional[Dict[str, Any]] = None,
            config: Optional[SystemConfig] = None,
            trace: Optional[bool] = None,
            metrics: Optional[Any] = None, *,
            observers: Optional[Any] = None) -> RunRecord:
        """Run once and return only the portable :class:`RunRecord`."""
        if metrics is not None:
            warnings.warn(
                "Experiment.run(metrics=...) is deprecated; pass "
                "observers=Observers(metrics=registry) instead",
                DeprecationWarning, stacklevel=2)
            observers = ((Observers.coerce(observers) or Observers())
                         .merged_with(metrics=metrics))
        return self.execute(params, config, trace, observers=observers).record


def _span_rows(tracer) -> tuple:
    return tuple(sorted(
        (s.node, s.actor, s.phase, s.start, s.end)
        for s in tracer.spans if s.end is not None
    ))
