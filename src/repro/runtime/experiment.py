"""The Experiment template: one simulated run, end to end.

Every paper exhibit used to hand-roll the same five steps: overlay a
config, build a :class:`~repro.cluster.Cluster`, spawn per-node flows,
``cluster.run()``, then scrape the tracer and process values into an
ad-hoc result object.  :class:`Experiment` captures that lifecycle once;
concrete experiments implement only the hooks that differ.

Experiments must be picklable (they are shipped to ``multiprocessing``
workers by :class:`~repro.runtime.sweep.Sweep`), so they hold no cluster
or simulator state -- everything transient lives in the per-run context
dict threaded through the hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cluster import Cluster
from repro.config import SystemConfig, default_config
from repro.runtime.record import RunRecord, config_fingerprint

__all__ = ["Execution", "Experiment"]


@dataclass
class Execution:
    """One finished run: the portable record plus in-process artifacts.

    ``raw`` is the experiment's legacy result object (e.g.
    :class:`~repro.apps.jacobi.JacobiResult`) and ``cluster`` the live
    cluster -- both stay in-process; only ``record`` crosses process and
    cache boundaries.
    """

    record: RunRecord
    raw: Any
    cluster: Cluster


class Experiment:
    """Template for one simulated experiment.

    Subclasses set :attr:`name` and :attr:`defaults` and implement
    :meth:`build_cluster`, :meth:`setup` and :meth:`finish`; the optional
    hooks :meth:`configure`, :meth:`trace_default` and :meth:`drive` cover
    config overlays, tracing policy and non-standard run loops.
    """

    #: Stable identifier; part of every cache key.
    name: str = "experiment"
    #: Default parameter values, merged under the caller's sweep point.
    defaults: Dict[str, Any] = {}

    # ------------------------------------------------------------------ hooks
    def configure(self, params: Dict[str, Any],
                  config: SystemConfig) -> SystemConfig:
        """Overlay per-point settings onto the base config (default: none)."""
        return config

    def trace_default(self, params: Dict[str, Any]) -> bool:
        """Whether runs trace when the caller does not say (default: off --
        tracing every span of a large sweep costs memory and time)."""
        return False

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool) -> Cluster:
        raise NotImplementedError

    def setup(self, cluster: Cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        """Allocate buffers and spawn flows; returns the run context.

        The context's ``"procs"`` list (if present) is error-checked after
        the run in order, so put the process whose failure should win first.
        """
        raise NotImplementedError

    def drive(self, cluster: Cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        """Advance the simulation to completion (default: drain the heap)."""
        cluster.run()

    def finish(self, cluster: Cluster, ctx: Dict[str, Any],
               params: Dict[str, Any]) -> Any:
        """Return ``(metrics, raw)``: JSON-safe scalars for the record plus
        the experiment's in-process result object."""
        raise NotImplementedError

    # --------------------------------------------------------------- template
    def resolve_params(self, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        merged = dict(self.defaults)
        merged.update(params or {})
        return merged

    def execute(self, params: Optional[Dict[str, Any]] = None,
                config: Optional[SystemConfig] = None,
                trace: Optional[bool] = None,
                instrument: Optional[Any] = None,
                metrics: Optional[Any] = None) -> Execution:
        """Run the full lifecycle once; returns record + raw + cluster.

        ``instrument`` is an optional callable invoked with the freshly
        built cluster before :meth:`setup` -- the hook
        :mod:`repro.validate` uses to arm invariant monitors and seed
        schedule fuzzing without the experiment knowing about either.

        ``metrics`` is an optional :class:`~repro.metrics.MetricsRegistry`
        armed on the cluster the same way (probe/observer hooks); its dump
        lands in the record's ``telemetry`` section.  ``None`` -- the
        default -- runs the exact pre-metrics code path, so records stay
        byte-identical when disabled.
        """
        p = self.resolve_params(params)
        cfg = self.configure(p, config or default_config())
        do_trace = self.trace_default(p) if trace is None else trace
        cluster = self.build_cluster(p, cfg, do_trace)
        if metrics is not None:
            from repro.metrics import attach_metrics

            attach_metrics(cluster, metrics)
        if instrument is not None:
            instrument(cluster)
        ctx = self.setup(cluster, p)
        self.drive(cluster, ctx, p)
        for proc in ctx.get("procs", ()):
            if not proc.ok:
                raise proc.value
        metrics_out, raw = self.finish(cluster, ctx, p)
        counters = getattr(cluster, "transport_counters", None)
        record = RunRecord(
            experiment=self.name,
            params=p,
            config_fingerprint=config_fingerprint(cfg),
            metrics=metrics_out,
            hazards=cluster.total_hazards(),
            spans=_span_rows(cluster.tracer) if do_trace else (),
            transport=counters() if counters is not None else {},
            telemetry=metrics.dump() if metrics is not None else {},
        )
        return Execution(record=record, raw=raw, cluster=cluster)

    def run(self, params: Optional[Dict[str, Any]] = None,
            config: Optional[SystemConfig] = None,
            trace: Optional[bool] = None,
            metrics: Optional[Any] = None) -> RunRecord:
        """Run once and return only the portable :class:`RunRecord`."""
        return self.execute(params, config, trace, metrics=metrics).record


def _span_rows(tracer) -> tuple:
    return tuple(sorted(
        (s.node, s.actor, s.phase, s.start, s.end)
        for s in tracer.spans if s.end is not None
    ))
