"""The Observers bundle: everything that watches or perturbs one run.

:class:`~repro.runtime.experiment.Experiment` used to grow one keyword
argument per observability subsystem (``instrument=`` for validation
monitors, ``metrics=`` for the registry, with fault plans and reliability
armed by hand inside experiment subclasses).  :class:`Observers` folds
them into one declarative, immutable bundle with a single arming order:

1. **reliability** -- the go-back-N transport must exist on every NIC
   before any traffic flows (sequence numbers start at the first send);
2. **faults** -- the fabric interposer, installed before monitors so the
   monitors see faulted traffic;
3. **metrics** -- :func:`repro.metrics.attach_metrics`, after reliability
   so transport counters get instrumented;
4. **instruments** -- arbitrary ``callable(cluster)`` hooks (invariant
   monitors, schedule fuzzing), last, so they observe the fully armed
   cluster.

``Observers()`` -- the empty bundle -- arms nothing and is behaviorally
identical to not passing one at all: golden fixtures stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

__all__ = ["Observers"]


@dataclass(frozen=True)
class Observers:
    """What should watch (or perturb) one experiment run.

    Fields
    ------
    metrics:
        ``True`` to collect into a fresh
        :class:`~repro.metrics.MetricsRegistry`, or a pre-built registry
        to collect into (its dump lands in the record's ``telemetry``).
    instruments:
        Callables invoked with the freshly built cluster before
        :meth:`~repro.runtime.experiment.Experiment.setup` -- the hook
        :mod:`repro.validate` uses to arm invariant monitors and seed
        schedule fuzzing.
    faults:
        A :class:`~repro.config.FaultConfig` to build a seeded
        :class:`~repro.faults.FaultPlan` from (seeded by
        :attr:`fault_seed`), or a pre-built plan to install as-is.
    fault_seed:
        Root seed for the plan built from a ``FaultConfig`` (ignored for
        pre-built plans, which carry their own streams).
    reliability:
        ``True`` to arm the reliable transport with default
        :class:`~repro.config.ReliabilityConfig`, or a config instance.
    """

    metrics: Any = None
    instruments: Tuple[Callable[[Any], None], ...] = ()
    faults: Any = None
    fault_seed: Optional[int] = None
    reliability: Any = None

    def __post_init__(self) -> None:
        # Normalize any iterable of hooks to a tuple (frozen dataclass:
        # go through object.__setattr__).
        if not isinstance(self.instruments, tuple):
            object.__setattr__(self, "instruments", tuple(self.instruments))
        for hook in self.instruments:
            if not callable(hook):
                raise TypeError(f"instrument hook {hook!r} is not callable")

    # ------------------------------------------------------------- coercion
    @classmethod
    def coerce(cls, value: Any) -> Optional["Observers"]:
        """Build an :class:`Observers` from the shorthands ``execute``
        accepts: ``None``, an ``Observers``, a ``MetricsRegistry``, one
        ``callable(cluster)``, or an iterable of callables."""
        if value is None or isinstance(value, cls):
            return value
        from repro.metrics import MetricsRegistry

        if isinstance(value, MetricsRegistry):
            return cls(metrics=value)
        if callable(value):
            return cls(instruments=(value,))
        try:
            hooks = tuple(value)
        except TypeError:
            raise TypeError(
                f"cannot interpret {value!r} as observers: expected None, "
                "Observers, MetricsRegistry, callable, or iterable of "
                "callables") from None
        return cls(instruments=hooks)

    # --------------------------------------------------------------- arming
    def arm(self, cluster) -> Optional[Any]:
        """Arm everything on ``cluster`` in dependency order; returns the
        live :class:`~repro.metrics.MetricsRegistry` (or ``None``)."""
        if self.reliability is not None and self.reliability is not False:
            cluster.enable_reliability(
                None if self.reliability is True else self.reliability)

        if self.faults is not None:
            from repro.faults import FaultPlan

            if isinstance(self.faults, FaultPlan):
                self.faults.attach(cluster.fabric)
            else:
                cluster.attach_faults(self.faults, rng=self.fault_seed)

        registry = None
        if self.metrics is not None and self.metrics is not False:
            from repro.metrics import MetricsRegistry, attach_metrics

            registry = (MetricsRegistry() if self.metrics is True
                        else self.metrics)
            attach_metrics(cluster, registry)

        for hook in self.instruments:
            hook(cluster)
        return registry
