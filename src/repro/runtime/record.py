"""Typed results of one simulated experiment run.

A :class:`RunRecord` is the unit of everything downstream: sweeps return
lists of them, the on-disk cache stores them, and reports assemble their
figures from their ``metrics``.  Records therefore restrict themselves to
JSON-safe scalars so that (a) a record round-trips the cache bit-exactly
and (b) serial and parallel sweeps can be compared byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.version import __version__

__all__ = ["RunRecord", "canonical_json", "config_fingerprint", "json_safe"]

#: One closed tracer span: (node, actor, phase, start_ns, end_ns).
SpanRow = Tuple[str, str, str, int, int]

_SCALARS = (str, int, float, bool, type(None))


def json_safe(value: Any) -> Any:
    """Coerce ``value`` into the JSON-stable subset records may carry.

    Scalars pass through; numpy scalars are unwrapped; sequences become
    lists; mappings keep string keys.  Anything else raises so experiments
    fail loudly instead of caching unpicklable or unstable objects.
    """
    if isinstance(value, bool):  # before int: bool is an int subclass
        return value
    if isinstance(value, _SCALARS):
        return value
    if hasattr(value, "item") and not isinstance(value, (list, tuple, dict)):
        return json_safe(value.item())  # numpy scalar
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): json_safe(v) for k, v in value.items()}
    raise TypeError(f"value {value!r} of type {type(value).__name__} is not "
                    "JSON-safe; experiments must emit scalar metrics")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: Any) -> str:
    """Stable digest of a :class:`~repro.config.SystemConfig` (or any
    dataclass tree of scalars)."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    else:
        payload = config
    digest = hashlib.sha256(canonical_json(json_safe(payload)).encode())
    return digest.hexdigest()[:16]


@dataclass
class RunRecord:
    """The typed result of one experiment run at one sweep point."""

    experiment: str
    params: Dict[str, Any]
    config_fingerprint: str
    metrics: Dict[str, Any]
    hazards: int = 0
    #: Figure-8-style span decomposition (closed tracer spans), present
    #: only when the run traced.
    spans: Tuple[SpanRow, ...] = ()
    #: Reliability/fault counters (retransmits, timeouts, drops, ...),
    #: populated only when a run armed the reliable transport or a fault
    #: plan.  Empty for plain runs -- and omitted from the JSON form, so
    #: pre-reliability golden fixtures stay byte-identical.
    transport: Dict[str, int] = field(default_factory=dict)
    #: Structured observability dump (:meth:`repro.metrics.MetricsRegistry.
    #: dump`): counters/gauges/histograms/series, populated only when a
    #: run attached a metrics registry.  Empty for plain runs -- and
    #: omitted from the JSON form, so pre-metrics golden fixtures stay
    #: byte-identical.
    telemetry: Dict[str, Any] = field(default_factory=dict)
    code_version: str = field(default=__version__)

    def __post_init__(self) -> None:
        self.params = {str(k): json_safe(v) for k, v in self.params.items()}
        self.metrics = {str(k): json_safe(v) for k, v in self.metrics.items()}
        self.transport = {str(k): int(v) for k, v in self.transport.items()}
        self.telemetry = {str(k): json_safe(v)
                          for k, v in self.telemetry.items()}
        self.spans = tuple(
            (str(n), str(a), str(p), int(s), int(e))
            for n, a, p, s, e in self.spans
        )

    # ------------------------------------------------------------ identity
    def cache_key(self) -> str:
        """Digest identifying this record's sweep point (not its outcome):
        (code version, experiment, config hash, params)."""
        return make_cache_key(self.experiment, self.params,
                              self.config_fingerprint, self.code_version)

    def fingerprint(self) -> str:
        """Digest of the record's full content (outcome included)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -------------------------------------------------------- serialization
    def to_json(self) -> str:
        doc = {
            "experiment": self.experiment,
            "params": self.params,
            "config_fingerprint": self.config_fingerprint,
            "metrics": self.metrics,
            "hazards": self.hazards,
            "spans": [list(s) for s in self.spans],
            "code_version": self.code_version,
        }
        if self.transport:
            doc["transport"] = self.transport
        if self.telemetry:
            doc["telemetry"] = self.telemetry
        return canonical_json(doc)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        doc = json.loads(text)
        return cls(
            experiment=doc["experiment"],
            params=doc["params"],
            config_fingerprint=doc["config_fingerprint"],
            metrics=doc["metrics"],
            hazards=doc["hazards"],
            spans=tuple(tuple(s) for s in doc["spans"]),
            transport=doc.get("transport", {}),
            telemetry=doc.get("telemetry", {}),
            code_version=doc["code_version"],
        )


def make_cache_key(experiment: str, params: Mapping[str, Any],
                   config_fp: str, code_version: str = __version__) -> str:
    digest = hashlib.sha256(canonical_json({
        "experiment": experiment,
        "params": json_safe(dict(params)),
        "config": config_fp,
        "version": code_version,
    }).encode())
    return digest.hexdigest()
