"""Declarative parameter sweeps with process-parallel execution.

A :class:`Sweep` names an :class:`~repro.runtime.experiment.Experiment`
and either a parameter ``grid`` (cartesian product, first key varies
slowest) or an explicit ``points`` list.  :meth:`Sweep.run` executes every
point and returns records **in point order** regardless of ``jobs``: the
simulator is deterministic pure Python, each point runs in isolation, and
``Pool.map`` preserves input order -- so parallel output is bit-identical
to serial.  Points already present in the optional
:class:`~repro.runtime.cache.ResultCache` are not re-run.
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SystemConfig, default_config
from repro.runtime.cache import ResultCache
from repro.runtime.experiment import Experiment
from repro.runtime.record import RunRecord, config_fingerprint

__all__ = ["Sweep", "run_sweep"]


def _run_point(task: Tuple[Experiment, Dict[str, Any], SystemConfig]) -> RunRecord:
    """Module-level worker so tasks pickle under any start method."""
    experiment, params, config = task
    return experiment.run(params, config)


@dataclass
class Sweep:
    """One experiment swept over a parameter grid (or explicit points)."""

    experiment: Experiment
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: Parameters shared by every point (overridden by grid/point values).
    base: Mapping[str, Any] = field(default_factory=dict)
    #: Explicit sweep points; when given, ``grid`` is ignored.
    points: Optional[Sequence[Mapping[str, Any]]] = None

    def sweep_points(self) -> List[Dict[str, Any]]:
        """The fully-resolved point list, in deterministic order."""
        if self.points is not None:
            return [{**self.base, **dict(p)} for p in self.points]
        keys = list(self.grid)
        out = []
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            point = dict(self.base)
            point.update(zip(keys, combo))
            out.append(point)
        return out

    def run(self, config: Optional[SystemConfig] = None, jobs: int = 1,
            cache: Optional[ResultCache] = None) -> List[RunRecord]:
        """Execute the sweep; returns one record per point, in point order."""
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        config = config or default_config()
        cfg_fp = config_fingerprint(config)
        points = self.sweep_points()
        records: List[Optional[RunRecord]] = [None] * len(points)

        pending: List[int] = []
        for i, point in enumerate(points):
            hit = cache.get(self.experiment.name,
                            self.experiment.resolve_params(point),
                            cfg_fp) if cache is not None else None
            if hit is not None:
                records[i] = hit
            else:
                pending.append(i)

        if pending:
            tasks = [(self.experiment, points[i], config) for i in pending]
            if jobs > 1 and len(pending) > 1:
                with multiprocessing.Pool(min(jobs, len(pending))) as pool:
                    fresh = pool.map(_run_point, tasks)
            else:
                fresh = [_run_point(t) for t in tasks]
            for i, record in zip(pending, fresh):
                records[i] = record
                if cache is not None:
                    cache.put(record)

        return records  # type: ignore[return-value]


def run_sweep(experiment: Experiment,
              grid: Mapping[str, Sequence[Any]],
              base: Optional[Mapping[str, Any]] = None,
              config: Optional[SystemConfig] = None,
              jobs: int = 1,
              cache: Optional[ResultCache] = None) -> List[RunRecord]:
    """One-shot convenience: build a :class:`Sweep` and run it."""
    return Sweep(experiment, grid=grid, base=base or {}).run(
        config=config, jobs=jobs, cache=cache)
