"""Declarative parameter sweeps, executed by the service layer.

A :class:`Sweep` names an :class:`~repro.runtime.experiment.Experiment`
and either a parameter ``grid`` (cartesian product, first key varies
slowest) or an explicit ``points`` list.  :meth:`Sweep.run` is a thin
synchronous client of :mod:`repro.service`: it wraps the sweep in an
ephemeral :class:`~repro.service.job.Job` and blocks until every point
resolves.  Records come back **in point order** regardless of ``jobs``:
the simulator is deterministic pure Python and each point runs in
isolation, so parallel output is bit-identical to serial.  Points
already present in the optional
:class:`~repro.runtime.cache.ResultCache` are not re-run (cache probes
happen in the calling process, on the caller's cache object; fresh
records are written through from whichever process ran them).

For resumable, journaled campaigns -- progress streaming, SIGINT/SIGTERM
preemption, kill -> resume -- use :class:`repro.service.Job` directly
(``Job.from_sweep(sweep, store=...)``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, cast

from repro.config import SystemConfig
from repro.runtime.cache import ResultCache
from repro.runtime.experiment import Experiment
from repro.runtime.record import RunRecord

__all__ = ["Sweep", "run_sweep"]


@dataclass
class Sweep:
    """One experiment swept over a parameter grid (or explicit points)."""

    experiment: Experiment
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: Parameters shared by every point (overridden by grid/point values).
    base: Mapping[str, Any] = field(default_factory=dict)
    #: Explicit sweep points; when given, ``grid`` is ignored.
    points: Optional[Sequence[Mapping[str, Any]]] = None

    def sweep_points(self) -> List[Dict[str, Any]]:
        """The fully-resolved point list, in deterministic order."""
        if self.points is not None:
            return [{**self.base, **dict(p)} for p in self.points]
        keys = list(self.grid)
        out = []
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            point = dict(self.base)
            point.update(zip(keys, combo))
            out.append(point)
        return out

    def run(self, config: Optional[SystemConfig] = None, jobs: int = 1,
            cache: Optional[ResultCache] = None) -> List[RunRecord]:
        """Execute the sweep; returns one record per point, in point order."""
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        # Imported here: repro.service is a client of the runtime, so the
        # module-level dependency points the other way.
        from repro.service.job import Job
        records = Job.from_sweep(self, config=config, cache=cache).run(jobs=jobs)
        return cast(List[RunRecord], records)


def run_sweep(experiment: Experiment,
              grid: Mapping[str, Sequence[Any]],
              base: Optional[Mapping[str, Any]] = None,
              config: Optional[SystemConfig] = None,
              jobs: int = 1,
              cache: Optional[ResultCache] = None) -> List[RunRecord]:
    """One-shot convenience: build a :class:`Sweep` and run it."""
    return Sweep(experiment, grid=grid, base=base or {}).run(
        config=config, jobs=jobs, cache=cache)
