"""Chrome trace-event export for :class:`~repro.sim.trace.Tracer`.

Emits the JSON Object Format of the Trace Event spec (the format Perfetto
and chrome://tracing load): one process per simulated node, one thread per
on-node actor (cpu / gpu / nic), ``B``/``E`` duration events per closed
tracer span and ``i`` instant events per tracer point.  Timestamps are
microseconds (the spec's unit); the simulator's integer nanoseconds divide
exactly into fractional us so no precision is lost.

Events are sorted by timestamp with B/E tie-breaking chosen so that each
thread's events form a properly nested stack wherever the underlying
spans nest: at equal time, ends fire before begins, inner ends before
outer ends, and outer begins before inner begins.

When given a :class:`~repro.metrics.MetricsRegistry`, every
:class:`~repro.metrics.TimeSeries` additionally becomes a Perfetto
counter track (``"ph": "C"``): series tagged with a node render inside
that node's process next to its spans; unattributed series land in a
synthetic ``metrics`` process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.sim.trace import Tracer

__all__ = ["chrome_trace", "export_chrome_trace"]

_SCALARS = (str, int, float, bool, type(None))


def _arg_safe(detail: Dict[str, Any]) -> Dict[str, Any]:
    return {k: (v if isinstance(v, _SCALARS) else repr(v))
            for k, v in detail.items()}


def chrome_trace(tracer: Tracer,
                 metrics: Optional[Any] = None) -> Dict[str, Any]:
    """Render a tracer's spans and points as a Chrome trace-event dict.

    ``metrics`` (a :class:`~repro.metrics.MetricsRegistry`) adds one
    counter track per time series.
    """
    series = metrics.series_list() if metrics is not None else []
    nodes = sorted({s.node for s in tracer.spans}
                   | {e.node for e in tracer.events}
                   | {ts.node for ts in series if ts.node is not None})
    pid_of = {node: i + 1 for i, node in enumerate(nodes)}
    # Node-less series (cluster-wide aggregates) get a synthetic process.
    metrics_pid = len(nodes) + 1
    need_metrics_pid = any(ts.node is None for ts in series)
    actors = sorted({(s.node, s.actor) for s in tracer.spans}
                    | {(e.node, e.actor) for e in tracer.events})
    tid_of = {pair: i + 1 for i, pair in enumerate(actors)}

    meta: List[Dict[str, Any]] = []
    for node in nodes:
        meta.append({"name": "process_name", "ph": "M", "pid": pid_of[node],
                     "tid": 0, "args": {"name": node}})
    for (node, actor), tid in tid_of.items():
        meta.append({"name": "thread_name", "ph": "M", "pid": pid_of[node],
                     "tid": tid, "args": {"name": actor}})
    if need_metrics_pid:
        meta.append({"name": "process_name", "ph": "M", "pid": metrics_pid,
                     "tid": 0, "args": {"name": "metrics"}})

    # (ts_ns, kind_rank, nesting_rank, insertion) -> event payload.  Kind
    # ranks at equal time: ends (0) close running spans first, zero-width
    # pairs (4, 5) stay adjacent and ordered, begins (10) open the next
    # span, instants (20) last.
    keyed: List[tuple] = []
    for i, span in enumerate(tracer.spans):
        if span.end is None:
            continue  # still open: nothing well-formed to emit
        pid, tid = pid_of[span.node], tid_of[(span.node, span.actor)]
        zero = span.end == span.start
        keyed.append((
            (span.start, 4 if zero else 10, -span.end, i),
            {"name": span.phase, "ph": "B", "ts": span.start / 1000.0,
             "pid": pid, "tid": tid, "args": _arg_safe(span.detail)},
        ))
        keyed.append((
            (span.end, 5 if zero else 0, -span.start, i),
            {"name": span.phase, "ph": "E", "ts": span.end / 1000.0,
             "pid": pid, "tid": tid},
        ))
    for i, event in enumerate(tracer.events):
        pid, tid = pid_of[event.node], tid_of[(event.node, event.actor)]
        keyed.append((
            (event.time, 20, 0, i),
            {"name": event.phase, "ph": "i", "ts": event.time / 1000.0,
             "pid": pid, "tid": tid, "s": "t",
             "args": _arg_safe(event.detail)},
        ))
    for i, ts in enumerate(series):
        pid = pid_of[ts.node] if ts.node is not None else metrics_pid
        for t, value in ts.samples:
            keyed.append((
                (t, 30, 0, i),
                {"name": ts.name, "ph": "C", "ts": t / 1000.0,
                 "pid": pid, "args": {"value": value}},
            ))
    keyed.sort(key=lambda kv: kv[0])

    return {
        "traceEvents": meta + [payload for _, payload in keyed],
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.runtime.traceexport"},
    }


def export_chrome_trace(tracer: Tracer, path: Union[str, Path],
                        metrics: Optional[Any] = None) -> Path:
    """Write the tracer's timeline as Perfetto-loadable JSON; returns path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, metrics=metrics)))
    return path
