"""Sweep-as-a-service: the job/queue/worker execution layer.

The experiment runtime's answer to GICC-style host proxy/queue runtimes,
one level up: a persistent service shape for *campaigns*.  Submit a
sweep -> get a content-addressed job id -> stream per-point completions
-> kill it any time -> resume from the journal, re-running only the
points that never finished.

* :class:`~repro.service.spec.JobSpec` -- what a job is (runner, points,
  config fingerprint); its digest is the job id;
* :class:`~repro.service.store.JobStore` -- on-disk spec + status + an
  append-only completion journal (crash-safe: fsync'd lines, torn tail
  tolerated);
* :class:`~repro.service.queue.WorkQueue` -- one bounded-window
  dispatcher over forked local workers *and* TCP-connected remote
  workers, with point-granularity priorities
  (:class:`~repro.service.queue.PriorityGate`) and exactly-once reissue
  of a dead worker's in-flight points;
* :mod:`repro.service.remote` -- the framed remote-worker protocol
  (DESIGN.md §13): :class:`~repro.service.remote.RemoteDispatcher` on
  the submitting side, :func:`~repro.service.remote.serve_worker` behind
  ``python -m repro worker serve`` on any machine that wants to help;
* :mod:`repro.service.backends` -- the pluggable
  :class:`~repro.service.backends.CacheBackend` storage seam behind
  :class:`~repro.runtime.cache.ResultCache` (local sharded directory by
  default, proxied over the job connection for remote workers);
* :class:`~repro.service.job.Job` -- the client handle: ``run`` /
  ``stream`` / ``cancel`` / ``listen``, cooperative SIGINT/SIGTERM
  preemption (:class:`~repro.service.job.JobPreempted`), journal +
  cache + execute resolution in point order.

``Sweep.run``, the validate/faults campaign drivers and ``repro bench``
are all thin clients of this layer; records stay byte-identical to the
pre-service serial paths -- and to local-only runs when remote workers
join.
"""

from repro.service.backends import (CacheBackend, LocalDirBackend,
                                    RemoteCacheBackend, as_result_cache)
from repro.service.job import Job, JobPreempted, PointDone
from repro.service.queue import GATE, PriorityGate, WorkQueue
from repro.service.remote import (HandshakeRejected, RemoteDispatcher,
                                  serve_worker)
from repro.service.runners import (BenchRunner, SweepRunner, get_runner,
                                   register_runner)
from repro.service.spec import JobSpec
from repro.service.store import JobStore, SubmitThrottled, default_jobs_dir

__all__ = [
    "BenchRunner",
    "CacheBackend",
    "GATE",
    "HandshakeRejected",
    "Job",
    "JobPreempted",
    "JobSpec",
    "JobStore",
    "LocalDirBackend",
    "PointDone",
    "PriorityGate",
    "RemoteCacheBackend",
    "RemoteDispatcher",
    "SubmitThrottled",
    "SweepRunner",
    "WorkQueue",
    "as_result_cache",
    "default_jobs_dir",
    "get_runner",
    "register_runner",
    "serve_worker",
]
