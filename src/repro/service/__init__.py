"""Sweep-as-a-service: the job/queue/worker execution layer.

The experiment runtime's answer to GICC-style host proxy/queue runtimes,
one level up: a persistent service shape for *campaigns*.  Submit a
sweep -> get a content-addressed job id -> stream per-point completions
-> kill it any time -> resume from the journal, re-running only the
points that never finished.

* :class:`~repro.service.spec.JobSpec` -- what a job is (runner, points,
  config fingerprint); its digest is the job id;
* :class:`~repro.service.store.JobStore` -- on-disk spec + status + an
  append-only completion journal (crash-safe: fsync'd lines, torn tail
  tolerated);
* :class:`~repro.service.queue.WorkQueue` -- shards ``(index, point)``
  tasks over a process pool with a bounded dispatch window; the worker
  working set ships once per worker via the pool initializer;
* :class:`~repro.service.job.Job` -- the client handle: ``run`` /
  ``stream`` / ``cancel``, cooperative SIGINT/SIGTERM preemption
  (:class:`~repro.service.job.JobPreempted`), journal + cache + execute
  resolution in point order.

``Sweep.run``, the validate/faults campaign drivers and ``repro bench``
are all thin clients of this layer; records stay byte-identical to the
pre-service serial paths.
"""

from repro.service.job import Job, JobPreempted, PointDone
from repro.service.queue import WorkQueue
from repro.service.runners import BenchRunner, SweepRunner, get_runner
from repro.service.spec import JobSpec
from repro.service.store import JobStore, default_jobs_dir

__all__ = [
    "BenchRunner",
    "Job",
    "JobPreempted",
    "JobSpec",
    "JobStore",
    "PointDone",
    "SweepRunner",
    "WorkQueue",
    "default_jobs_dir",
    "get_runner",
]
