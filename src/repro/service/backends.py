"""Pluggable result-cache storage: the seam behind ``ResultCache``.

:class:`~repro.runtime.cache.ResultCache` used to *be* the on-disk
store.  With remote workers (:mod:`repro.service.remote`) the storage
engine has to be swappable -- a worker on another machine shares the
submitting process's cache through its job connection, not through a
filesystem -- so the storage guts are extracted here behind the three-
method :class:`CacheBackend` protocol:

* :class:`LocalDirBackend` -- the default, extracted verbatim from the
  pre-redesign ``ResultCache``: canonical-JSON record files fanned into
  256 two-hex-digit shards, atomic temp-file + rename writes;
* :class:`RemoteCacheBackend` -- the worker-side proxy: ``get``/``put``
  become framed requests on the job connection, served from the
  dispatcher's own backend.

Backends only move records; they never count.  The hit/miss/restored
tally -- the ``stats()`` schema campaign summaries report -- lives on
the :class:`~repro.runtime.cache.ResultCache` facade, so swapping the
storage engine can never change a campaign summary or a golden fixture.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.runtime.record import RunRecord, make_cache_key
from repro.version import __version__

__all__ = [
    "CacheBackend",
    "LocalDirBackend",
    "RemoteCacheBackend",
    "as_result_cache",
]


class CacheBackend:
    """What a result-cache storage engine must provide.

    ``get`` returns the record for a key or ``None`` (corrupt or
    unreadable entries are misses, never errors); ``put`` stores one
    record; ``stats`` reports backend-level tallies (storage or
    transport counters -- *not* the facade's hit/miss schema).
    """

    def get(self, experiment: str, params: Mapping[str, Any],
            config_fp: str, code_version: str = __version__
            ) -> Optional[RunRecord]:
        raise NotImplementedError

    def put(self, record: RunRecord) -> Any:
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError


class LocalDirBackend(CacheBackend):
    """The default on-disk store (one JSON file per key, 256 shards).

    Writes are atomic (temp file + rename) so concurrent sweep workers
    never observe torn entries -- the property the service layer leans
    on: parallel workers write through from their own processes (and may
    be SIGKILLed mid-``put``) while the submitting process probes
    concurrently.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------------ paths
    def path_for_key(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ----------------------------------------------------------------- lookup
    def get(self, experiment: str, params: Mapping[str, Any],
            config_fp: str, code_version: str = __version__
            ) -> Optional[RunRecord]:
        key = make_cache_key(experiment, params, config_fp, code_version)
        try:
            return RunRecord.from_json(self.path_for_key(key).read_text())
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, record: RunRecord) -> Path:
        """Store a record atomically; returns the entry path."""
        path = self.path_for_key(record.cache_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(record.to_json())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def stats(self) -> dict:
        return {"backend": "local-dir", "entries": len(self)}

    # ------------------------------------------------------------- housekeeping
    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Also sweeps up orphaned ``*.tmp`` files -- the leftovers of
        :meth:`put` calls killed between ``mkstemp`` and ``rename``
        (e.g. a sweep worker dying mid-write).  Orphans do not count
        toward the return value; they were never entries.
        """
        n = 0
        if not self.root.is_dir():
            return n
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                entry.unlink()
                n += 1
            for orphan in sorted(shard.glob("*.tmp")):
                try:
                    orphan.unlink()
                except OSError:  # pragma: no cover - racing writer
                    pass
        return n

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalDirBackend {self.root} entries={len(self)}>"


class RemoteCacheBackend(CacheBackend):
    """Worker-side proxy: cache traffic rides the job connection.

    ``channel`` is anything with ``cache_get(experiment, params,
    config_fp, code_version)`` and ``cache_put(record)`` -- in
    production the worker's :class:`repro.service.remote._WorkerChannel`.
    The dispatcher answers from its own backend, so every machine in a
    job shares one content-addressed store without a shared filesystem.
    """

    def __init__(self, channel: Any):
        self.channel = channel
        self.gets = 0
        self.puts = 0

    def get(self, experiment: str, params: Mapping[str, Any],
            config_fp: str, code_version: str = __version__
            ) -> Optional[RunRecord]:
        self.gets += 1
        return self.channel.cache_get(experiment, dict(params), config_fp,
                                      code_version)

    def put(self, record: RunRecord) -> None:
        self.puts += 1
        self.channel.cache_put(record)

    def stats(self) -> dict:
        return {"backend": "remote", "gets": self.gets, "puts": self.puts}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteCacheBackend gets={self.gets} puts={self.puts}>"


def as_result_cache(cache: Any) -> Any:
    """Coerce a campaign ``cache`` argument to a counting facade.

    ``None`` and :class:`~repro.runtime.cache.ResultCache` pass through;
    a bare :class:`CacheBackend` is wrapped in a fresh facade (its own
    hit/miss tally); anything else is treated as a root path.
    """
    from repro.runtime.cache import ResultCache

    if cache is None or isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, CacheBackend):
        return ResultCache(backend=cache)
    return ResultCache(cache)
