"""Jobs: submit a campaign, stream its progress, resume after a kill.

A :class:`Job` binds a :class:`~repro.service.spec.JobSpec` to an
optional :class:`~repro.service.store.JobStore` and runs it through the
:class:`~repro.service.queue.WorkQueue`:

* **ephemeral** (``store=None``) -- what ``Sweep.run`` uses: no disk
  state beyond the result cache, no signal handling, byte-identical to
  the pre-service synchronous sweep;
* **stored** -- the job directory journals every completed point, and
  SIGINT/SIGTERM trigger *cooperative preemption*: dispatch stops,
  in-flight points finish and are journaled, the job is marked
  ``preempted`` and :class:`JobPreempted` is raised with the resume
  handle.  Re-running the same job (``Job.load`` or resubmitting the
  identical spec) replays the journal and executes only the holes.

Point resolution order (per point, cheapest source wins):
journal -> result cache (parent-side get, counted on the caller's cache
object) -> execution.  Records always come back **in point order**,
whatever order workers finish in.
"""

from __future__ import annotations

import queue as _queue
import signal
import threading
import time
from dataclasses import dataclass, replace
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple, Union)

from repro.checkpoint import CheckpointConfig
from repro.config import SystemConfig, default_config
from repro.runtime.cache import ResultCache
from repro.runtime.record import RunRecord, config_fingerprint
from repro.service.queue import WorkQueue
from repro.service.runners import SweepRunner, SweepState, get_runner
from repro.service.spec import JobSpec
from repro.service.store import JobStore, _maybe_store

__all__ = ["Job", "JobPreempted", "PointDone"]


@dataclass(frozen=True)
class PointDone:
    """Streamed once per resolved point, as soon as it resolves."""

    job_id: str
    index: int
    total: int
    #: Points resolved so far, this one included.
    done: int
    #: Where the record came from: ``"run"`` (computed from t=0),
    #: ``"restored"`` (computed, resumed from a checkpoint), ``"cache"``
    #: or ``"journal"``.
    source: str
    record: RunRecord


class JobPreempted(RuntimeError):
    """Raised when SIGINT/SIGTERM preempted a stored job; the journal
    holds everything completed, so the job resumes from where it stopped."""

    def __init__(self, job_id: str, done: int, total: int):
        super().__init__(
            f"job {job_id} preempted after {done}/{total} points; "
            f"resume with Job.load(store, {job_id!r}).run() or "
            f"`python -m repro jobs resume {job_id}`")
        self.job_id = job_id
        self.done = done
        self.total = total


Progress = Callable[[PointDone], None]


class Job:
    """One submitted campaign: spec + optional store + run state."""

    def __init__(self, spec: JobSpec, store: Union[JobStore, str, None] = None,
                 *, state: Any = None, priority: int = 0):
        self.spec = spec
        self.store = _maybe_store(store)
        self.id = spec.job_id()
        self._runner = get_runner(spec.runner)
        self._state = (state if state is not None
                       else self._runner.init(self._materialize_payload()))
        self._cancelled = False
        #: Point-granularity preemption rank: while a job with a
        #: strictly higher priority executes in this process, this job
        #: stops dispatching new points until it finishes.
        self.priority = priority
        self._remote: Any = None
        self._cancel_checked_at = 0.0
        #: Source tally of the last run:
        #: {"journal": n, "cache": n, "restored": n, "run": n}.
        self.stats: Dict[str, int] = {}
        #: Dispatch tally of the last run (parallel/remote executions):
        #: {"local": n, "remote": n, "reissued": n}.
        self.queue_stats: Dict[str, int] = {}
        if self.store is not None:
            self._materialize_payload()
            self.store.submit(self.spec)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_sweep(cls, sweep: Any, config: Optional[SystemConfig] = None,
                   cache: Optional[ResultCache] = None,
                   store: Union[JobStore, str, None] = None,
                   checkpoint: Union["CheckpointConfig", int, None] = None,
                   priority: int = 0) -> "Job":
        """Wrap a :class:`~repro.runtime.sweep.Sweep` as a job.

        The caller's ``cache`` object is used directly for parent-side
        gets (its hit/miss counters keep working) and for inline puts;
        parallel workers reconstruct a cache on the same root and
        write through from their side.

        ``checkpoint`` arms periodic per-point checkpointing: pass a
        full :class:`~repro.checkpoint.CheckpointConfig`, or just an
        ``int`` interval in sim-ns -- the shorthand requires a stored
        job and puts the snapshots in the job's own checkpoint
        directory, where a resumed submission finds them again.
        """
        config = config or default_config()
        store = _maybe_store(store)
        spec = JobSpec(
            runner=SweepRunner.name,
            experiment=sweep.experiment.name,
            points=tuple(sweep.sweep_points()),
            config_fingerprint=config_fingerprint(config),
            cache_root=(str(cache.root) if cache is not None
                        and cache.root is not None else None),
        )
        if isinstance(checkpoint, int):
            if store is None:
                raise ValueError(
                    "checkpoint=<interval_ns> needs a stored job (pass "
                    "store=...), or pass a full CheckpointConfig with an "
                    "explicit directory")
            checkpoint = CheckpointConfig(
                directory=str(store.checkpoint_dir(spec.job_id())),
                interval_ns=checkpoint)
        state = SweepState(experiment=sweep.experiment, config=config,
                           config_fp=spec.config_fingerprint, cache=cache,
                           checkpoint=checkpoint)
        return cls(spec, store=store, state=state, priority=priority)

    @classmethod
    def from_bench(cls, workloads: Sequence[str], repeat: int,
                   store: Union[JobStore, str, None] = None) -> "Job":
        """Wrap a :mod:`repro.bench` run (one point per workload)."""
        spec = JobSpec(
            runner="bench",
            experiment="bench",
            points=tuple({"workload": w, "repeat": repeat} for w in workloads),
            config_fingerprint="bench",
            payload=b"",
        )
        return cls(spec, store=store)

    @classmethod
    def load(cls, store: Union[JobStore, str, None], job_id: str) -> "Job":
        """Rehydrate a stored job (e.g. to resume after a kill)."""
        store = _maybe_store(store) or JobStore()
        return cls(store.load(job_id), store=store)

    # ------------------------------------------------------------------ control
    def cancel(self) -> None:
        """Cooperatively stop: no new points dispatch, in-flight finish.

        Callable from a progress callback (fail-fast campaigns) or
        another thread.  The job's records list keeps ``None`` holes for
        the points that never ran.
        """
        self._cancelled = True

    def listen(self, address: Union[int, str, Tuple[str, int]] = 0
               ) -> Tuple[str, int]:
        """Open this job to remote workers; returns ``(host, port)``.

        ``address`` is a port (``0`` = ephemeral), ``"host:port"``, or a
        ``(host, port)`` tuple.  Workers join with ``python -m repro
        worker serve --connect HOST:PORT``; they are mixed with the
        local pool by the next :meth:`run`'s dispatcher and share this
        job's result cache through the connection.  The dispatcher is
        closed when the run finishes.
        """
        from repro.service.remote import RemoteDispatcher, _parse_hostport
        if self._remote is not None:
            return self._remote.address
        host, port = _parse_hostport(address, default_host="0.0.0.0")
        cache = getattr(self._state, "cache", None)
        self._remote = RemoteDispatcher(
            host, port, job_id=self.id, runner_name=self.spec.runner,
            payload=self._materialize_payload(),
            cache_backend=cache.backend if cache is not None else None)
        return self._remote.address

    def _cancel_poll(self, interval_s: float = 0.5) -> bool:
        """Throttled probe of the store's ``cancel.requested`` marker
        (the ``repro jobs cancel`` path); sticky once seen."""
        if self._cancelled or self.store is None:
            return self._cancelled
        now = time.monotonic()
        if now - self._cancel_checked_at < interval_s:
            return False
        self._cancel_checked_at = now
        if self.store.cancel_requested(self.id):
            self._cancelled = True
        return self._cancelled

    # --------------------------------------------------------------------- run
    def run(self, jobs: int = 1, progress: Optional[Progress] = None,
            *, window: Optional[int] = None) -> List[Optional[RunRecord]]:
        """Execute the job; returns records in point order.

        ``jobs`` local workers (``0`` = remote-only, needs a prior
        :meth:`listen`) plus any remote workers that join; ``window``
        caps in-flight points across all of them.  Every entry is a
        :class:`RunRecord` unless the job was cancelled mid-run (the
        unreached points stay ``None``).  Raises :class:`JobPreempted`
        if a stored job caught SIGINT/SIGTERM.
        """
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if jobs == 0 and self._remote is None:
            raise ValueError("jobs=0 is remote-only; call listen() first "
                             "so workers can join")
        self._cancelled = False
        self._cancel_checked_at = 0.0
        if self.store is not None:
            # A deliberate (re)run overrides any stale cancel marker.
            self.store.clear_cancel(self.id)
        points = self.spec.points
        total = len(points)
        records: List[Optional[RunRecord]] = [None] * total
        self.stats = {"journal": 0, "cache": 0, "restored": 0, "run": 0}
        done = 0

        def emit(index: int, record: RunRecord, source: str) -> None:
            nonlocal done
            records[index] = record
            done += 1
            self.stats[source] += 1
            if source in ("run", "restored") and self.store is not None:
                self.store.append_point(self.id, index, record)
            if progress is not None:
                progress(PointDone(job_id=self.id, index=index, total=total,
                                   done=done, source=source, record=record))

        # 1. Journal replay (stored jobs only): completed points are free.
        if self.store is not None:
            for index, record in sorted(self.store.completed(self.id).items()):
                if 0 <= index < total and records[index] is None:
                    emit(index, record, "journal")

        # 2. Result cache, probed in the submitting process.
        pending: List[int] = []
        for index, point in enumerate(points):
            if records[index] is not None:
                continue
            hit = self._runner.lookup(self._state, point)
            if hit is not None:
                emit(index, hit, "cache")
            else:
                pending.append(index)

        # 3. Execute the holes.
        preempted = threading.Event()
        restore = self._install_signal_handlers(preempted)
        if self.store is not None:
            self.store.set_meta(self.id, status="running", total=total,
                                done=done, experiment=self.spec.experiment)
        try:
            wq = WorkQueue(
                runner=self._runner, state=self._state,
                runner_name=self.spec.runner,
                payload=(self._materialize_payload()
                         if (jobs > 1 and len(pending) > 1)
                         or self._remote is not None else None),
                jobs=jobs, remote=self._remote, window=window,
                priority=self.priority)
            wq.execute(
                pending, points,
                on_done=emit,
                should_stop=lambda: (self._cancelled or preempted.is_set()
                                     or self._cancel_poll()))
            self.queue_stats = dict(wq.stats)
        except BaseException:
            self._set_status("failed", done, total)
            raise
        finally:
            restore()
            if self._remote is not None:
                self._remote.close(final=True)
                self._remote = None
        if preempted.is_set():
            self._set_status("preempted", done, total)
            raise JobPreempted(self.id, done, total)
        if self._cancelled:
            self._set_status("cancelled", done, total)
            return records
        self._set_status("done", done, total)
        if self.store is not None:
            # Every point is journaled: snapshots have nothing left to
            # protect (prefix pools included).
            self.store.clear_checkpoints(self.id)
        return records

    def stream(self, jobs: int = 1) -> Iterator[PointDone]:
        """Iterator flavour of :meth:`run`: yields :class:`PointDone`
        events as points resolve (the run happens in a helper thread, so
        signal-based preemption is disabled; use :meth:`cancel`)."""
        events: _queue.Queue = _queue.Queue()
        outcome: Dict[str, Any] = {}

        def work() -> None:
            try:
                outcome["records"] = self.run(jobs=jobs, progress=events.put)
            except BaseException as exc:  # re-raised in the consumer
                outcome["error"] = exc
            finally:
                events.put(None)

        worker = threading.Thread(target=work, daemon=True)
        worker.start()
        while True:
            event = events.get()
            if event is None:
                break
            yield event
        worker.join()
        if "error" in outcome:
            raise outcome["error"]

    # ---------------------------------------------------------------- internals
    def records(self) -> List[Optional[RunRecord]]:
        """Journaled records (stored jobs), in point order, ``None`` holes."""
        out: List[Optional[RunRecord]] = [None] * len(self.spec.points)
        if self.store is not None:
            for index, record in self.store.completed(self.id).items():
                if 0 <= index < len(out):
                    out[index] = record
        return out

    def status(self) -> Dict[str, Any]:
        """Stored status plus live journal counts."""
        meta = dict(self.store.meta(self.id)) if self.store is not None else {}
        meta.setdefault("status", "ephemeral")
        meta["job_id"] = self.id
        meta["total"] = len(self.spec.points)
        meta["experiment"] = self.spec.experiment
        if self.store is not None:
            meta["journaled"] = len(self.store.completed(self.id))
            meta["checkpoints"] = len(self.store.checkpoints(self.id))
            if self.store.cancel_requested(self.id):
                meta["cancel_requested"] = True
        return meta

    def _set_status(self, status: str, done: int, total: int) -> None:
        if self.store is not None:
            self.store.set_meta(self.id, status=status, done=done, total=total,
                                sources=dict(self.stats),
                                dispatch=dict(self.queue_stats))

    def _materialize_payload(self) -> bytes:
        if self.spec.payload is None:
            payload = self._runner.payload_from_state(self._state)
            self.spec = replace(self.spec, payload=payload)
        return self.spec.payload

    def _install_signal_handlers(self, preempted: threading.Event
                                 ) -> Callable[[], None]:
        """Arm cooperative preemption on SIGINT/SIGTERM for stored jobs.

        Ephemeral jobs keep default delivery (KeyboardInterrupt /
        termination), preserving pre-service ``Sweep.run`` behaviour.
        The handler restores the previous disposition as it fires, so a
        second signal interrupts hard.
        """
        if (self.store is None
                or threading.current_thread() is not threading.main_thread()):
            return lambda: None
        previous: Dict[int, Any] = {}

        def on_signal(signum: int, frame: Any) -> None:
            preempted.set()
            for sig, old in previous.items():
                signal.signal(sig, old)

        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, on_signal)

        def restore() -> None:
            for sig, old in previous.items():
                if signal.getsignal(sig) is on_signal:
                    signal.signal(sig, old)
        return restore
