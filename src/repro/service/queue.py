"""The work queue: shard pending points across local and remote workers.

:class:`WorkQueue` owns only *execution*; journaling, caching, progress
and preemption policy live in :class:`~repro.service.job.Job`, which
drives it through two callbacks:

* ``on_done(index, record, source)`` -- invoked in the submitting
  process for every finished point, in completion order; ``source`` is
  the runner's verdict on how the point resolved (``"run"`` from
  scratch, ``"restored"`` from a checkpoint);
* ``should_stop()`` -- polled between dispatches; once true, no new
  point is handed to a worker.  In-flight points still finish (and are
  reported through ``on_done``), which is what makes cancellation and
  preemption *cooperative*: nothing is lost, the job is simply cut short
  at a journaled boundary.

Execution is a single bounded-window dispatcher over a heterogeneous
worker set: per-point task endpoints that are either forked local
processes (:class:`_LocalWorker`) or TCP-connected remote workers
(:class:`~repro.service.remote.RemoteEndpoint`, adopted live from a
:class:`~repro.service.remote.RemoteDispatcher` as they connect).  The
window -- at most ``window`` points outstanding across all endpoints --
is what gives ``should_stop`` its bite *and* what bounds submission
memory: a cancel request stops the queue within one window, not after
the whole grid, and a million-point campaign never materializes more
than a window of in-flight work.

Fault model: endpoints die (a local worker SIGKILLed, a remote
connection dropped).  The dispatcher buries the endpoint, requeues its
in-flight point at the *front* of the todo deque, and reissues it to
the next free endpoint -- at most :data:`MAX_POINT_ATTEMPTS` times, so
a poison point that kills every worker it touches fails the job instead
of looping forever.  A completion that raced the death notice (record
already on the wire when the worker died) is deduplicated by index:
each point is reported through ``on_done`` exactly once.

Priorities preempt at point granularity through the process-wide
:data:`GATE`: while any strictly-higher-priority job is executing in
this process, lower-priority queues stop refilling their window (their
in-flight points still finish) until the gate clears.

Determinism: each point is an isolated, deterministic simulation, so
records are byte-identical regardless of worker count, worker locality,
completion order, or how many times a death forced a reissue; the Job
reassembles them by index into point order.
"""

from __future__ import annotations

import itertools
import multiprocessing
import queue as _queue
import threading
import time
from typing import Any, Callable, Dict, Optional, Sequence

from collections import deque

from repro.runtime.record import RunRecord
from repro.service.runners import _worker_main

__all__ = ["WorkQueue", "PriorityGate", "GATE", "MAX_POINT_ATTEMPTS"]

OnDone = Callable[[int, RunRecord, str], None]
ShouldStop = Callable[[], bool]

#: A point is reissued after an endpoint death at most this many times
#: before the job fails with a poison-point error.
MAX_POINT_ATTEMPTS = 3


# ------------------------------------------------------------------ priorities
class PriorityGate:
    """Process-wide point-granularity preemption between concurrent jobs.

    Every executing :class:`WorkQueue` registers its job's priority and
    holds a token; a queue may dispatch a new point only while
    :meth:`clear` says no *strictly higher* priority is active.  The
    gate never stops in-flight points -- preemption is cooperative, at
    point boundaries -- and same-priority jobs share the machine freely.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active: Dict[int, int] = {}
        self._next = itertools.count(1)

    def register(self, priority: int) -> int:
        with self._lock:
            token = next(self._next)
            self._active[token] = priority
        return token

    def unregister(self, token: int) -> None:
        with self._lock:
            self._active.pop(token, None)

    def clear(self, token: int) -> bool:
        """True iff no *other* active job outranks this token's job."""
        with self._lock:
            mine = self._active.get(token)
            if mine is None:
                return True
            return all(prio <= mine for tok, prio in self._active.items()
                       if tok != token)


#: The process-wide gate every WorkQueue registers with.
GATE = PriorityGate()


# ------------------------------------------------------------- local endpoint
class _LocalWorker:
    """A forked worker process behind the endpoint interface.

    Same contract as :class:`repro.service.remote.RemoteEndpoint`:
    ``capacity`` concurrent tasks (always 1), ``send_task``, ``alive``,
    ``shutdown``.  Results land on the shared ``results`` queue in the
    unified item shape (see :func:`~repro.service.runners._worker_main`).
    """

    kind = "local"
    capacity = 1

    def __init__(self, wid: int, runner_name: str, payload: bytes,
                 results: multiprocessing.Queue):
        self.wid = wid
        self._tasks: multiprocessing.SimpleQueue = multiprocessing.SimpleQueue()
        self._proc = multiprocessing.Process(
            target=_worker_main,
            args=(wid, runner_name, payload, self._tasks, results),
            daemon=True)
        self._proc.start()
        self._sent_sentinel = False

    def alive(self) -> bool:
        return self._proc.is_alive()

    def send_task(self, index: int, point: Dict[str, Any]) -> None:
        self._tasks.put((index, point))

    def shutdown(self, final: bool = True) -> None:
        if not self._sent_sentinel:
            self._sent_sentinel = True
            try:
                self._tasks.put(None)
            except (OSError, ValueError):  # pragma: no cover - dead pipe
                pass
        self._proc.join(timeout=1.0)
        if self._proc.is_alive():  # pragma: no cover - wedged worker
            self._proc.terminate()
            self._proc.join(timeout=1.0)


# ------------------------------------------------------------------ the queue
class WorkQueue:
    """Executes ``(index, point)`` tasks for one job's runner.

    ``jobs`` local workers (``0`` = none: remote-only) are mixed with
    whatever remote endpoints the optional ``remote`` dispatcher has
    accepted, behind one bounded window of ``window`` in-flight points
    (default ``max(4, 2 * jobs)``).  ``stats`` tallies, per execution,
    how many points each worker kind completed and how many were
    reissued after an endpoint death.
    """

    def __init__(self, runner: Any, state: Any, runner_name: str,
                 payload: Optional[bytes], jobs: int, *,
                 remote: Any = None, window: Optional[int] = None,
                 priority: int = 0):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if jobs == 0 and remote is None:
            raise ValueError("jobs=0 needs a remote dispatcher to supply "
                             "workers")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.runner = runner
        self.state = state
        self.runner_name = runner_name
        self.payload = payload
        self.jobs = jobs
        self.remote = remote
        self.window = window
        self.priority = priority
        self.stats: Dict[str, int] = {"local": 0, "remote": 0, "reissued": 0}

    # ------------------------------------------------------------------ entry
    def execute(self, pending: Sequence[int],
                points: Sequence[Dict[str, Any]],
                on_done: OnDone, should_stop: ShouldStop) -> None:
        """Run every pending point (unless stopped); see module doc."""
        if not pending:
            return
        token = GATE.register(self.priority)
        try:
            if self.remote is None and (self.jobs == 1 or len(pending) == 1):
                self._execute_inline(pending, points, on_done, should_stop,
                                     token)
            else:
                self._execute_dispatch(pending, points, on_done, should_stop,
                                       token)
        finally:
            GATE.unregister(token)

    # ----------------------------------------------------------------- inline
    def _execute_inline(self, pending: Sequence[int],
                        points: Sequence[Dict[str, Any]],
                        on_done: OnDone, should_stop: ShouldStop,
                        token: int) -> None:
        """Serial path: runs in-process against the parent's own state,
        so e.g. cache puts land on the caller's ResultCache object and
        bench timings pay no fork overhead."""
        for index in pending:
            while not GATE.clear(token):
                if should_stop():
                    return
                time.sleep(0.02)
            if should_stop():
                return
            record, source = self.runner.run(self.state, index, points[index])
            self.stats["local"] += 1
            on_done(index, record, source)

    # --------------------------------------------------------------- dispatch
    def _execute_dispatch(self, pending: Sequence[int],
                          points: Sequence[Dict[str, Any]],
                          on_done: OnDone, should_stop: ShouldStop,
                          token: int) -> None:
        if self.payload is None:
            raise ValueError("dispatch execution needs a materialized payload")
        window = self.window if self.window is not None \
            else max(4, 2 * max(self.jobs, 1))

        results: _queue.Queue = _queue.Queue()
        todo: deque = deque(pending)
        emitted: set = set()           # indices already reported via on_done
        attempts: Dict[int, int] = {}  # index -> dispatch count
        inflight: Dict[int, int] = {}  # wid -> index
        endpoints: Dict[int, Any] = {}  # wid -> endpoint
        free: deque = deque()          # wids with spare capacity
        alloc_wid = itertools.count()
        error: Optional[BaseException] = None

        # Local workers report on an mp.Queue; a drainer thread funnels
        # their items into the same thread-safe queue remote endpoint
        # readers use, so the main loop has a single source of truth.
        mp_results: multiprocessing.Queue = multiprocessing.Queue()
        stop_drain = threading.Event()

        def _drain() -> None:
            while not stop_drain.is_set():
                try:
                    results.put(mp_results.get(timeout=0.2))
                except _queue.Empty:
                    continue

        drainer = threading.Thread(target=_drain, daemon=True,
                                   name="workqueue-drain")
        drainer.start()

        for _ in range(min(self.jobs, len(pending))):
            wid = next(alloc_wid)
            endpoints[wid] = _LocalWorker(wid, self.runner_name, self.payload,
                                          mp_results)
            free.append(wid)

        def bury(wid: int) -> None:
            """Remove a dead endpoint; requeue its in-flight point."""
            nonlocal error
            endpoints.pop(wid, None)
            try:
                free.remove(wid)
            except ValueError:
                pass
            index = inflight.pop(wid, None)
            if index is None or index in emitted:
                return
            attempts[index] = attempts.get(index, 0) + 1
            if attempts[index] >= MAX_POINT_ATTEMPTS:
                if error is None:
                    error = RuntimeError(
                        f"point {index} killed {MAX_POINT_ATTEMPTS} workers; "
                        f"giving up (poison point)")
                return
            todo.appendleft(index)
            self.stats["reissued"] += 1

        try:
            while True:
                # Adopt remote workers that connected since last pass.
                if self.remote is not None:
                    for ep in self.remote.take_endpoints(
                            results, lambda: next(alloc_wid)):
                        endpoints[ep.wid] = ep
                        free.append(ep.wid)

                stopping = error is not None or should_stop()

                # Refill the dispatch window (unless stopping/preempted).
                while (todo and free and not stopping
                       and len(inflight) < window and GATE.clear(token)):
                    wid = free.popleft()
                    ep = endpoints.get(wid)
                    if ep is None or not ep.alive():
                        bury(wid)
                        continue
                    index = todo.popleft()
                    if index in emitted:
                        free.appendleft(wid)
                        continue
                    try:
                        ep.send_task(index, points[index])
                    except (OSError, ValueError, ConnectionError):
                        todo.appendleft(index)
                        bury(wid)
                        continue
                    inflight[wid] = index

                if not inflight and (stopping or not todo):
                    break
                if not inflight and not endpoints and self.remote is None:
                    raise RuntimeError(
                        "all workers died before the job finished")

                # The timeout keeps this loop responsive to should_stop()
                # flipped by a signal handler, to remote workers joining,
                # and to silent endpoint deaths (liveness poll below).
                try:
                    kind, wid, item = results.get(timeout=0.2)
                except _queue.Empty:
                    for wid in [w for w, ep in endpoints.items()
                                if not ep.alive()]:
                        bury(wid)
                    continue

                if kind == "done":
                    index, record, source = item
                    if inflight.get(wid) == index:
                        del inflight[wid]
                        if wid in endpoints and wid not in free:
                            free.append(wid)
                    if index in emitted:
                        continue  # death-race duplicate: deterministic, skip
                    emitted.add(index)
                    ep = endpoints.get(wid)
                    self.stats[ep.kind if ep is not None else "local"] += 1
                    on_done(index, record, source)
                elif kind == "err":
                    index, exc = item
                    if index is None:
                        # Init failure: the payload is broken for every
                        # worker -- fail fast.
                        if error is None:
                            error = exc
                        bury(wid)
                        continue
                    if inflight.get(wid) == index:
                        del inflight[wid]
                        if wid in endpoints and wid not in free:
                            free.append(wid)
                    if error is None:
                        error = exc
                elif kind == "dead":
                    bury(wid)
        finally:
            stop_drain.set()
            # Local workers are ours to reap; remote endpoints belong to
            # the dispatcher (the Job closes it -- possibly with
            # final=False on preemption so workers reconnect on resume).
            for ep in list(endpoints.values()):
                if ep.kind == "local":
                    ep.shutdown()
            drainer.join(timeout=2.0)
            mp_results.cancel_join_thread()
            mp_results.close()

        if error is not None:
            raise error
