"""The work queue: shard pending points across worker processes.

:class:`WorkQueue` owns only *execution*; journaling, caching, progress
and preemption policy live in :class:`~repro.service.job.Job`, which
drives it through two callbacks:

* ``on_done(index, record, source)`` -- invoked in the submitting
  process for every finished point, in completion order; ``source`` is
  the runner's verdict on how the point resolved (``"run"`` from
  scratch, ``"restored"`` from a checkpoint);
* ``should_stop()`` -- polled between dispatches; once true, no new
  point is handed to a worker.  In-flight points still finish (and are
  reported through ``on_done``), which is what makes cancellation and
  preemption *cooperative*: nothing is lost, the job is simply cut short
  at a journaled boundary.

Parallel execution uses a bounded dispatch window (``2 * jobs`` tasks
outstanding) of ``apply_async`` calls rather than one big ``Pool.map``:
the window is what gives ``should_stop`` its bite -- a cancel request
stops the queue within one window, not after the whole grid.  The
worker's working set (experiment + config + cache root) ships once per
worker via the pool initializer; each task is just ``(index, point)``.

Determinism: each point is an isolated, deterministic simulation, so
records are byte-identical regardless of worker count or completion
order; the Job reassembles them by index into point order.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.runtime.record import RunRecord
from repro.service.runners import _worker_init, _worker_run

__all__ = ["WorkQueue"]

OnDone = Callable[[int, RunRecord, str], None]
ShouldStop = Callable[[], bool]


class WorkQueue:
    """Executes ``(index, point)`` tasks for one job's runner."""

    def __init__(self, runner: Any, state: Any, runner_name: str,
                 payload: Optional[bytes], jobs: int):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.runner = runner
        self.state = state
        self.runner_name = runner_name
        self.payload = payload
        self.jobs = jobs

    # ------------------------------------------------------------------ entry
    def execute(self, pending: Sequence[int],
                points: Sequence[Dict[str, Any]],
                on_done: OnDone, should_stop: ShouldStop) -> None:
        """Run every pending point (unless stopped); see module doc."""
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            self._execute_inline(pending, points, on_done, should_stop)
        else:
            self._execute_pool(pending, points, on_done, should_stop)

    # ----------------------------------------------------------------- inline
    def _execute_inline(self, pending: Sequence[int],
                        points: Sequence[Dict[str, Any]],
                        on_done: OnDone, should_stop: ShouldStop) -> None:
        """Serial path: runs in-process against the parent's own state,
        so e.g. cache puts land on the caller's ResultCache object and
        bench timings pay no fork overhead."""
        for index in pending:
            if should_stop():
                return
            record, source = self.runner.run(self.state, index, points[index])
            on_done(index, record, source)

    # ------------------------------------------------------------------- pool
    def _execute_pool(self, pending: Sequence[int],
                      points: Sequence[Dict[str, Any]],
                      on_done: OnDone, should_stop: ShouldStop) -> None:
        if self.payload is None:
            raise ValueError("parallel execution needs a materialized payload")
        window = max(4, 2 * self.jobs)
        results: _queue.Queue = _queue.Queue()
        it = iter(pending)
        exhausted = False
        inflight = 0
        error: Optional[BaseException] = None
        with multiprocessing.Pool(
                min(self.jobs, len(pending)),
                initializer=_worker_init,
                initargs=(self.runner_name, self.payload)) as pool:
            while True:
                # Refill the dispatch window (unless stopping or failing).
                while (not exhausted and error is None and inflight < window
                       and not should_stop()):
                    try:
                        index = next(it)
                    except StopIteration:
                        exhausted = True
                        break
                    pool.apply_async(
                        _worker_run, ((index, points[index]),),
                        callback=lambda res: results.put(("ok", res)),
                        error_callback=lambda exc: results.put(("err", exc)))
                    inflight += 1
                if inflight == 0:
                    break
                # The timeout keeps this loop responsive to should_stop()
                # flipped by a signal handler while no completions arrive.
                try:
                    kind, payload = results.get(timeout=0.2)
                except _queue.Empty:
                    continue
                inflight -= 1
                if kind == "err":
                    # Remember the first failure, stop dispatching, and
                    # keep draining so journaled completions are not lost.
                    if error is None:
                        error = payload
                    continue
                index, record, source = payload
                on_done(index, record, source)
        if error is not None:
            raise error
