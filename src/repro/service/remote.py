"""Remote workers: the framed TCP protocol of DESIGN.md §13.

Any machine can join a running job: the submitting process arms a
:class:`RemoteDispatcher` (``Job.listen``), a joining machine runs
``python -m repro worker serve --connect HOST:PORT``, and from then on
the worker receives exactly the ``(index, point)`` task shape the local
pool uses -- the :class:`~repro.service.queue.WorkQueue` cannot tell the
difference, which is what keeps records byte-identical to a local-only
run.

Framing: every message is one ``pickle`` payload behind a 4-byte
big-endian length prefix (:func:`send_frame` / :func:`recv_frame`).  EOF
at a frame boundary is a clean close (``recv_frame`` returns ``None``);
EOF mid-frame raises :class:`ConnectionError` -- a torn frame is never
delivered.

Handshake (worker connects)::

    worker  -> {"type": "hello", "protocol", "code_version"}
    dispatcher
            -> {"type": "reject", "reason", "job_id"}       # stale worker
            -> {"type": "welcome", "job_id", "runner", "payload",
                "proxy_cache", "code_version"}
    worker  -> {"type": "ready"}

The welcome carries the job's spec fingerprint (the content-addressed
job id) and the dispatcher's code version; a worker built from different
code is rejected *deterministically* -- before it can run a single
point -- because records from mismatched code would not be comparable.

Task loop (dispatcher holds at most one task in flight per worker)::

    dispatcher -> ("task", index, point)
    worker     -> ("cache_get", experiment, params, fp, ver)   # mid-task
    dispatcher -> ("cache_result", record_or_None)
    worker     -> ("cache_put", record)                        # no reply
    worker     -> ("done", index, record, source)
               |  ("task_error", index, exc)
    dispatcher -> ("stop", final)                              # job over

Failure matrix: a **version/protocol mismatch** is rejected at the
handshake (the worker exits with a reason); a **worker death** surfaces
on the dispatcher as EOF -> a ``("dead", wid, None)`` result -> the
queue reissues the in-flight point to another worker; a **dispatcher
death** surfaces on the worker as EOF/refused-connection -> it retries
for ``--retry`` seconds, then exits; a ``("stop", True)`` means the job
completed and the worker exits cleanly.
"""

from __future__ import annotations

import pickle
import queue as _queue
import socket
import threading
import time
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.version import __version__

__all__ = [
    "HandshakeRejected",
    "RemoteDispatcher",
    "RemoteEndpoint",
    "recv_frame",
    "send_frame",
    "serve_worker",
]

#: Wire-protocol revision; bumped on any frame-shape change.
PROTOCOL_VERSION = 1
#: Hard cap on one frame (a record or a pickled working set).
MAX_FRAME = 256 * 1024 * 1024
#: Handshake must complete within this many seconds.
HANDSHAKE_TIMEOUT_S = 10.0


class HandshakeRejected(ConnectionError):
    """The dispatcher turned this worker away (code/protocol skew)."""


# ----------------------------------------------------------------- framing
def send_frame(sock: socket.socket, obj: Any) -> None:
    """Send one length-prefixed pickled message."""
    blob = pickle.dumps(obj)
    if len(blob) > MAX_FRAME:
        raise ValueError(f"frame of {len(blob)} bytes exceeds {MAX_FRAME}")
    sock.sendall(len(blob).to_bytes(4, "big") + blob)


def recv_frame(sock: socket.socket) -> Any:
    """Receive one message; ``None`` on a clean close.

    The protocol never sends a bare ``None``, so the sentinel is
    unambiguous.  EOF inside a frame raises :class:`ConnectionError`.
    """
    header = _recv_exact(sock, 4, eof_ok=True)
    if header is None:
        return None
    size = int.from_bytes(header, "big")
    if size > MAX_FRAME:
        raise ConnectionError(f"peer announced a {size}-byte frame "
                              f"(cap: {MAX_FRAME})")
    return pickle.loads(_recv_exact(sock, size, eof_ok=False))


def _recv_exact(sock: socket.socket, n: int,
                eof_ok: bool) -> Optional[bytes]:
    chunks: List[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise ConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _parse_hostport(address: Union[str, Tuple[str, int], int],
                    default_host: str) -> Tuple[str, int]:
    if isinstance(address, int):
        return default_host, address
    if isinstance(address, tuple):
        return address[0] or default_host, int(address[1])
    host, _, port = str(address).rpartition(":")
    return host or default_host, int(port)


# -------------------------------------------------------------- dispatcher
class RemoteDispatcher:
    """Accepts remote workers for one job; one endpoint per worker.

    The accept thread performs the handshake and parks handshaken
    connections; :meth:`take_endpoints` (called by the queue's dispatch
    loop) adopts them, so a worker can join -- or rejoin -- at any
    moment of the run.
    """

    def __init__(self, host: str = "0.0.0.0", port: int = 0, *,
                 job_id: str, runner_name: str, payload: bytes,
                 cache_backend: Any = None):
        self.job_id = job_id
        self.runner_name = runner_name
        self.payload = payload
        self.cache_backend = cache_backend
        self._sock = socket.create_server((host, port))
        self.address: Tuple[str, int] = self._sock.getsockname()[:2]
        self._ready: _queue.SimpleQueue = _queue.SimpleQueue()
        self._endpoints: List["RemoteEndpoint"] = []
        self._closed = False
        self._accepter = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"repro-accept-{job_id}")
        self._accepter.start()

    # ------------------------------------------------------------- accepting
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            try:
                conn.settimeout(HANDSHAKE_TIMEOUT_S)
                if self._handshake(conn):
                    conn.settimeout(None)
                    self._ready.put(conn)
                else:
                    conn.close()
            except (OSError, ConnectionError, EOFError,
                    pickle.PickleError):
                # A half-open or garbage client must not take the
                # listener down; keep accepting.
                try:
                    conn.close()
                except OSError:
                    pass

    def _handshake(self, conn: socket.socket) -> bool:
        hello = recv_frame(conn)
        if not isinstance(hello, dict) or hello.get("type") != "hello":
            return False
        reason = None
        if hello.get("protocol") != PROTOCOL_VERSION:
            reason = (f"protocol {hello.get('protocol')!r} != "
                      f"{PROTOCOL_VERSION}")
        elif hello.get("code_version") != __version__:
            reason = (f"code version {hello.get('code_version')!r} != "
                      f"{__version__!r}: records would not be comparable")
        if reason is not None:
            send_frame(conn, {"type": "reject", "reason": reason,
                              "job_id": self.job_id})
            return False
        send_frame(conn, {"type": "welcome", "job_id": self.job_id,
                          "runner": self.runner_name,
                          "payload": self.payload,
                          "proxy_cache": self.cache_backend is not None,
                          "code_version": __version__})
        ready = recv_frame(conn)
        return isinstance(ready, dict) and ready.get("type") == "ready"

    # -------------------------------------------------------------- adoption
    def take_endpoints(self, results: "_queue.Queue",
                       alloc_wid: Callable[[], int]
                       ) -> List["RemoteEndpoint"]:
        """Adopt every worker that handshook since the last call."""
        out: List[RemoteEndpoint] = []
        while True:
            try:
                conn = self._ready.get_nowait()
            except _queue.Empty:
                return out
            ep = RemoteEndpoint(alloc_wid(), conn, results,
                                self.cache_backend)
            self._endpoints.append(ep)
            out.append(ep)

    def close(self, final: bool = True) -> None:
        """Stop accepting and release every worker.

        ``final=True`` tells workers the job is over (they exit);
        ``final=False`` lets them reconnect-retry (e.g. a resume is
        coming).
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        for ep in self._endpoints:
            ep.shutdown(final=final)


class RemoteEndpoint:
    """Dispatcher-side handle of one connected worker (capacity 1).

    A reader thread turns the worker's frames into the queue's unified
    result shape -- ``("done", wid, (index, record, source))``,
    ``("err", wid, (index, exc))`` -- serves its cache proxy traffic
    from the dispatcher's backend, and reports EOF as
    ``("dead", wid, None)`` so the in-flight point can be reissued.
    """

    kind = "remote"
    capacity = 1

    def __init__(self, wid: int, conn: socket.socket,
                 results: "_queue.Queue", cache_backend: Any):
        self.wid = wid
        self._conn = conn
        self._results = results
        self._cache = cache_backend
        self._send_lock = threading.Lock()
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"repro-remote-{wid}")
        self._reader.start()

    def alive(self) -> bool:
        return not self._closed

    def send_task(self, index: int, point: dict) -> None:
        self._send(("task", index, point))

    def _send(self, msg: Any) -> None:
        with self._send_lock:
            send_frame(self._conn, msg)

    def _read_loop(self) -> None:
        try:
            while True:
                msg = recv_frame(self._conn)
                if msg is None:
                    return
                kind = msg[0]
                if kind == "done":
                    self._results.put(("done", self.wid,
                                       (msg[1], msg[2], msg[3])))
                elif kind == "task_error":
                    self._results.put(("err", self.wid, (msg[1], msg[2])))
                elif kind == "cache_get":
                    record = None
                    if self._cache is not None:
                        record = self._cache.get(msg[1], msg[2], msg[3],
                                                 msg[4])
                    self._send(("cache_result", record))
                elif kind == "cache_put":
                    if self._cache is not None:
                        self._cache.put(msg[1])
                # Unknown frames are ignored: forward compatibility.
        except (OSError, ConnectionError, EOFError, pickle.PickleError):
            pass
        finally:
            self._closed = True
            self._results.put(("dead", self.wid, None))

    def shutdown(self, final: bool = True) -> None:
        """Release the worker and close the connection."""
        self._closed = True
        try:
            self._send(("stop", final))
        except (OSError, ConnectionError):
            pass
        try:
            self._conn.close()
        except OSError:
            pass


# ------------------------------------------------------------------ worker
class _WorkerChannel:
    """Worker-side connection; what :class:`RemoteCacheBackend` proxies
    through.  The worker is single-threaded, so a blocking request/reply
    (``cache_get``) cannot interleave with its own task frames."""

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def send(self, msg: Any) -> None:
        send_frame(self._sock, msg)

    def recv(self) -> Any:
        return recv_frame(self._sock)

    def cache_get(self, experiment: str, params: dict, config_fp: str,
                  code_version: str) -> Any:
        self.send(("cache_get", experiment, params, config_fp,
                   code_version))
        msg = self.recv()
        if msg is None:
            raise ConnectionError("dispatcher went away mid cache_get")
        if msg[0] != "cache_result":
            raise ConnectionError(
                f"protocol error: expected cache_result, got {msg[0]!r}")
        return msg[1]

    def cache_put(self, record: Any) -> None:
        self.send(("cache_put", record))


def serve_worker(connect: Union[str, Tuple[str, int]], *,
                 store: Any = None, retry_s: float = 30.0,
                 once: bool = False,
                 log: Callable[[str], None] = None) -> int:
    """Join jobs dispatched at ``connect`` until the work dries up.

    Connects, handshakes, builds the runner working set from the
    welcome's payload (or from ``store`` when the job's spec is visible
    on a shared filesystem), then serves ``(index, point)`` tasks one at
    a time.  When the welcome flags ``proxy_cache``, the worker's sweep
    state swaps its cache for a
    :class:`~repro.service.backends.RemoteCacheBackend` so gets and puts
    ride the job connection instead of a local directory.

    Returns a process exit code: 0 after a final stop (job complete) --
    or, with ``once``, after serving one job; 1 when no dispatcher
    answered for ``retry_s`` seconds; 2 when the dispatcher rejected the
    handshake (stale worker -- deterministic, before any point ran).
    """
    from repro.service.store import _maybe_store

    if log is None:
        log = lambda line: print(line, flush=True)  # noqa: E731
    host, port = _parse_hostport(connect, default_host="127.0.0.1")
    store = _maybe_store(store)
    waited = 0.0
    while True:
        try:
            sock = socket.create_connection((host, port),
                                            timeout=HANDSHAKE_TIMEOUT_S)
        except OSError:
            if waited >= retry_s:
                log(f"worker giving up: no dispatcher at {host}:{port} "
                    f"after {retry_s:.0f}s")
                return 1
            time.sleep(0.5)
            waited += 0.5
            continue
        waited = 0.0
        try:
            final = _serve_one(sock, store, log)
        except HandshakeRejected as why:
            log(f"worker rejected: {why}")
            return 2
        except (OSError, ConnectionError, EOFError, pickle.PickleError):
            final = False  # dispatcher vanished mid-job; retry
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if final or once:
            return 0


def _serve_one(sock: socket.socket, store: Any,
               log: Callable[[str], None]) -> bool:
    """One connection's lifetime; returns True on a final stop."""
    from repro.runtime.cache import ResultCache
    from repro.service.backends import RemoteCacheBackend
    from repro.service.runners import get_runner

    send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION,
                      "code_version": __version__})
    resp = recv_frame(sock)
    if not isinstance(resp, dict):
        raise ConnectionError("no handshake response")
    if resp.get("type") == "reject":
        raise HandshakeRejected(resp.get("reason", "unspecified"))
    if resp.get("type") != "welcome":
        raise ConnectionError(f"unexpected handshake frame: {resp!r}")

    job_id = resp["job_id"]
    payload = resp["payload"]
    if store is not None:
        # Shared-filesystem deployments: the journaled spec's payload is
        # authoritative (and saves shipping it over the wire next time).
        try:
            payload = store.load(job_id).payload or payload
        except KeyError:
            pass
    runner = get_runner(resp["runner"])
    state = runner.init(payload)
    channel = _WorkerChannel(sock)
    if resp.get("proxy_cache") and hasattr(state, "cache"):
        state.cache = ResultCache(backend=RemoteCacheBackend(channel))
    send_frame(sock, {"type": "ready"})
    sock.settimeout(None)
    log(f"worker serving job {job_id}")

    while True:
        msg = channel.recv()
        if msg is None:
            return False
        kind = msg[0]
        if kind == "stop":
            final = bool(msg[1]) if len(msg) > 1 else True
            log(f"worker released from job {job_id}"
                + (" (job complete)" if final else ""))
            return final
        if kind != "task":
            continue
        index, point = msg[1], msg[2]
        try:
            record, source = runner.run(state, index, point)
        except BaseException as exc:
            from repro.service.runners import _portable_error
            channel.send(("task_error", index, _portable_error(exc)))
        else:
            channel.send(("done", index, record, source))
            log(f"point {index} done ({source})")
