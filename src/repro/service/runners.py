"""Runners: how one job point becomes one :class:`RunRecord`.

A runner is the pluggable execution kernel of the service layer.  It is
deliberately split into a *state* built once per process and a per-point
``run``: the :class:`~repro.service.queue.WorkQueue` ships the pickled
payload to each worker exactly once -- at fork for local workers, in the
handshake welcome for remote ones -- and sends only ``(index, point)``
per task, so a 1024-point sweep pickles its experiment and config once
per worker instead of 1024 times.

Two runners exist:

* ``"sweep"`` -- runs an :class:`~repro.runtime.experiment.Experiment`
  at one parameter point and write-through-puts the record into the
  :class:`~repro.runtime.cache.ResultCache` *from the worker* (crash-safe:
  puts are atomic temp-file + rename, so a worker killed mid-write never
  leaves a readable torn entry);
* ``"bench"`` -- times one :mod:`repro.bench` workload in-process
  (always executed inline, never forked: wall-clock timings must not pay
  pool overhead).

Runners are registered by name (:func:`register_runner`) so a journaled
job can be resumed -- or a remote worker recruited -- by a fresh process
that only knows the name.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.checkpoint import CheckpointConfig, CheckpointError
from repro.config import SystemConfig
from repro.runtime.cache import ResultCache
from repro.runtime.experiment import Experiment
from repro.runtime.record import RunRecord, config_fingerprint

__all__ = ["BenchRunner", "SweepRunner", "get_runner", "register_runner"]


# --------------------------------------------------------------------- sweep
@dataclass
class SweepState:
    """Per-process working set of a sweep job."""

    experiment: Experiment
    config: SystemConfig
    config_fp: str
    cache: Optional[ResultCache]
    #: Periodic-checkpoint policy for every point, or ``None`` (off).
    checkpoint: Optional[CheckpointConfig] = None


class SweepRunner:
    """Experiment-point execution with worker-side cache write-through."""

    name = "sweep"

    @staticmethod
    def payload_from_state(state: SweepState) -> bytes:
        # Caches without a filesystem root (remote proxies) ship as
        # uncached payloads; such workers get a proxy cache from the
        # dispatcher handshake instead.
        cache_root = (str(state.cache.root)
                      if state.cache is not None
                      and state.cache.root is not None else None)
        return pickle.dumps((state.experiment, state.config, cache_root,
                             state.checkpoint))

    @staticmethod
    def init(payload: bytes) -> SweepState:
        doc = pickle.loads(payload)
        experiment, config, cache_root = doc[:3]
        # Payloads journaled before checkpointing existed are 3-tuples.
        checkpoint = doc[3] if len(doc) > 3 else None
        cache = ResultCache(cache_root) if cache_root is not None else None
        return SweepState(experiment=experiment, config=config,
                          config_fp=config_fingerprint(config), cache=cache,
                          checkpoint=checkpoint)

    @staticmethod
    def lookup(state: SweepState, point: Dict[str, Any]) -> Optional[RunRecord]:
        """Parent-side cache probe (counts hits/misses on the caller's
        cache object, exactly like the pre-service ``Sweep.run``)."""
        if state.cache is None:
            return None
        return state.cache.get(state.experiment.name,
                               state.experiment.resolve_params(point),
                               state.config_fp)

    @staticmethod
    def run(state: SweepState, index: int,
            point: Dict[str, Any]) -> Tuple[RunRecord, str]:
        """Execute one point; returns ``(record, source)``.

        ``source`` is ``"restored"`` when the point resumed from a
        checkpoint (its own, or a shared parameter prefix) and ``"run"``
        for a from-scratch execution.  Determinism makes the record
        byte-identical either way; the tag only feeds accounting.
        """
        source = "run"
        if state.checkpoint is not None:
            try:
                execution = state.experiment.execute(
                    point, state.config, checkpoint=state.checkpoint)
            except CheckpointError:
                # The experiment cannot checkpoint (custom drive(),
                # generator processes in its world): protection is
                # best-effort, the point still runs -- from scratch.
                record = state.experiment.run(point, state.config)
            else:
                record = execution.record
                if execution.resumed_from_ns is not None:
                    source = "restored"
                    if state.cache is not None:
                        state.cache.restored += 1
        else:
            record = state.experiment.run(point, state.config)
        if state.cache is not None:
            state.cache.put(record)
        return record, source


# --------------------------------------------------------------------- bench
class BenchRunner:
    """One :mod:`repro.bench` workload timed ``point["repeat"]`` times."""

    name = "bench"

    @staticmethod
    def payload_from_state(state: None) -> bytes:
        return b""

    @staticmethod
    def init(payload: bytes) -> None:
        return None

    @staticmethod
    def lookup(state: None, point: Dict[str, Any]) -> Optional[RunRecord]:
        return None  # timings are never cacheable

    @staticmethod
    def run(state: None, index: int,
            point: Dict[str, Any]) -> Tuple[RunRecord, str]:
        # Imported lazily: repro.bench.harness is a *client* of the
        # service layer, so the module-level dependency points the other
        # way and would be circular here.
        from repro.bench.harness import measure_workload
        return measure_workload(point["workload"], point["repeat"]), "run"


_RUNNERS = {SweepRunner.name: SweepRunner, BenchRunner.name: BenchRunner}


def get_runner(name: str):
    try:
        return _RUNNERS[name]
    except KeyError:
        raise KeyError(f"unknown job runner {name!r}; "
                       f"registered: {sorted(_RUNNERS)}") from None


def register_runner(runner):
    """Register a runner class under ``runner.name`` (usable as a
    decorator).  Local workers inherit registrations through fork;
    remote workers must import the registering module before serving
    (e.g. via ``PYTHONPATH``)."""
    _RUNNERS[runner.name] = runner
    return runner


# ------------------------------------------------------------ worker plumbing
def _portable_error(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a plain
    ``RuntimeError`` carrying its repr -- failures must always cross the
    process/socket boundary."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc!r}")


def _worker_main(wid: int, runner_name: str, payload: bytes,
                 tasks: Any, results: Any) -> None:
    """Local worker-process loop: unpickle the working set once, then
    run ``(index, point)`` tasks until the ``None`` sentinel.

    Every outcome is reported on ``results`` in the dispatcher's unified
    item shape: ``("done", wid, (index, record, source))`` or
    ``("err", wid, (index_or_None, exc))`` -- ``index=None`` marks an
    init failure, which is fatal for the job (the payload is broken for
    every worker, not just this one).
    """
    try:
        runner = get_runner(runner_name)
        state = runner.init(payload)
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        results.put(("err", wid, (None, _portable_error(exc))))
        return
    while True:
        task = tasks.get()
        if task is None:
            return
        index, point = task
        try:
            record, source = runner.run(state, index, point)
        except Exception as exc:
            results.put(("err", wid, (index, _portable_error(exc))))
        else:
            results.put(("done", wid, (index, record, source)))
