"""The job descriptor: what a campaign *is*, independent of how it runs.

A :class:`JobSpec` freezes everything that determines a job's work: the
runner kind (``"sweep"`` for experiment campaigns, ``"bench"`` for
simulator timing), the point list, and the config fingerprint.  The job
id is a content digest of exactly those fields, so resubmitting the same
campaign yields the same id -- which is what makes ``repro jobs submit``
idempotent and resume-by-resubmission work.

The ``payload`` is the runner's pickled working set (for sweeps: the
:class:`~repro.runtime.experiment.Experiment` plus
:class:`~repro.config.SystemConfig`).  It is shipped **once per worker
process** via the pool initializer -- never per task -- and journaled to
disk so a stored job can be resumed by a process that no longer holds
the live objects.  It is deliberately excluded from the job id: pickles
are not canonical, points + config fingerprint already are.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.runtime.record import canonical_json, json_safe
from repro.version import __version__

__all__ = ["JobSpec", "SPEC_FORMAT"]

#: Schema version of the on-disk ``spec.json`` (bump on layout changes).
SPEC_FORMAT = 1


@dataclass(frozen=True)
class JobSpec:
    """Portable description of one job: runner + points + identity."""

    runner: str
    experiment: str
    points: Tuple[Dict[str, Any], ...]
    config_fingerprint: str
    #: Write-through :class:`~repro.runtime.cache.ResultCache` location,
    #: or ``None`` for uncached jobs.  Not part of the job id -- the same
    #: campaign pointed at a different cache is still the same work.
    cache_root: Optional[str] = None
    code_version: str = field(default=__version__)
    #: Pickled runner working set (lazily materialized; see module doc).
    payload: Optional[bytes] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "points",
            tuple({str(k): json_safe(v) for k, v in p.items()}
                  for p in self.points))

    # ------------------------------------------------------------- identity
    def job_id(self) -> str:
        """Content-addressed id: same campaign -> same id, always."""
        digest = hashlib.sha256(canonical_json({
            "runner": self.runner,
            "experiment": self.experiment,
            "points": list(self.points),
            "config": self.config_fingerprint,
            "version": self.code_version,
        }).encode())
        return digest.hexdigest()[:12]

    # -------------------------------------------------------- serialization
    def to_json(self) -> str:
        if self.payload is None:
            raise ValueError("JobSpec.payload must be materialized before "
                             "persisting (see Job._materialize_payload)")
        return canonical_json({
            "format": SPEC_FORMAT,
            "runner": self.runner,
            "experiment": self.experiment,
            "points": list(self.points),
            "config_fingerprint": self.config_fingerprint,
            "cache_root": self.cache_root,
            "code_version": self.code_version,
            "payload": base64.b64encode(self.payload).decode("ascii"),
        })

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        doc = json.loads(text)
        if doc.get("format") != SPEC_FORMAT:
            raise ValueError(f"unsupported job spec format "
                             f"{doc.get('format')!r} (expected {SPEC_FORMAT})")
        return cls(
            runner=doc["runner"],
            experiment=doc["experiment"],
            points=tuple(doc["points"]),
            config_fingerprint=doc["config_fingerprint"],
            cache_root=doc["cache_root"],
            code_version=doc["code_version"],
            payload=base64.b64decode(doc["payload"]),
        )
