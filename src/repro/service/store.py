"""On-disk job persistence: spec, status, and the completion journal.

Layout (one directory per job under the store root)::

    .repro-jobs/
      <job-id>/
        spec.json       # the JobSpec, payload included (atomic write)
        meta.json       # {"status", "total", "done", "experiment"} (atomic)
        journal.jsonl   # one line per completed point, append-only

The journal is the resume contract: each line is
``{"index": <point index>, "record": <RunRecord JSON>}``, appended with
flush + fsync *after* the point's record exists.  A job killed at any
instant therefore loses at most the in-flight points; on resume,
:meth:`JobStore.completed` replays the journal (tolerating a torn final
line -- the kill may have landed mid-append) and only the holes re-run.
Spec and meta writes go through the same atomic temp-file + ``os.replace``
idiom as :class:`~repro.runtime.cache.ResultCache`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.runtime.record import RunRecord, canonical_json
from repro.service.spec import JobSpec

__all__ = ["JobStore", "SubmitThrottled", "default_jobs_dir"]

#: Environment override for the job store location.
JOBS_DIR_ENV = "REPRO_JOBS_DIR"
#: Default directory name, created under the current working directory.
JOBS_DIR_NAME = ".repro-jobs"


def default_jobs_dir() -> Path:
    env = os.environ.get(JOBS_DIR_ENV)
    return Path(env) if env else Path.cwd() / JOBS_DIR_NAME


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SubmitThrottled(RuntimeError):
    """Raised by :meth:`JobStore.submit` when backpressure rejects a new
    job (too many active jobs, or submissions arriving faster than the
    configured rate).  Resubmitting an *existing* spec is never
    throttled -- resume must always work."""


class JobStore:
    """Directory of journaled jobs; every mutation is crash-safe.

    ``max_active`` and ``min_interval_s`` arm submission backpressure
    for :meth:`submit`; both default to off, so plain stores behave
    exactly as before.
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 max_active: Optional[int] = None,
                 min_interval_s: float = 0.0):
        self.root = Path(root) if root is not None else default_jobs_dir()
        self.max_active = max_active
        self.min_interval_s = min_interval_s

    # ------------------------------------------------------------------ paths
    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def checkpoint_dir(self, job_id: str) -> Path:
        """Where this job's periodic checkpoints live (see
        :mod:`repro.checkpoint`); created lazily by the first save."""
        return self.job_dir(job_id) / "checkpoints"

    def _journal_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "journal.jsonl"

    # ------------------------------------------------------------------- spec
    def create(self, spec: JobSpec) -> str:
        """Persist ``spec`` (idempotent: an existing spec for the same
        content-addressed id is left untouched, so resubmitting a
        campaign resumes it)."""
        job_id = spec.job_id()
        spec_path = self.job_dir(job_id) / "spec.json"
        if not spec_path.exists():
            _atomic_write(spec_path, spec.to_json())
        return job_id

    def submit(self, spec: JobSpec, *,
               clock: Callable[[], float] = time.time) -> str:
        """Backpressured :meth:`create`: the submission path campaigns
        and the CLI use.

        Re-submitting a spec that already exists is a *resume* and always
        succeeds.  A genuinely new job is rejected with
        :class:`SubmitThrottled` when ``max_active`` jobs are already
        running/cancelling, or when the last new submission was less
        than ``min_interval_s`` ago (tracked by a ``.last-submit``
        marker's mtime, so the rate limit holds across processes).
        ``clock`` is injectable for tests.
        """
        job_id = spec.job_id()
        if (self.job_dir(job_id) / "spec.json").exists():
            return self.create(spec)  # resume: never throttled
        if self.max_active is not None:
            active = sum(
                1 for jid in self.jobs()
                if self.meta(jid).get("status") in ("running", "cancelling"))
            if active >= self.max_active:
                raise SubmitThrottled(
                    f"{active} jobs already active (max_active="
                    f"{self.max_active}); retry when one finishes")
        marker = self.root / ".last-submit"
        if self.min_interval_s > 0:
            now = clock()
            try:
                elapsed = now - marker.stat().st_mtime
            except OSError:
                elapsed = None
            if elapsed is not None and elapsed < self.min_interval_s:
                raise SubmitThrottled(
                    f"submissions limited to one per {self.min_interval_s}s "
                    f"(last was {elapsed:.2f}s ago); retry shortly")
        job_id = self.create(spec)
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.touch()
            os.utime(marker, (clock(), clock()))
        except OSError:  # pragma: no cover - marker is best-effort
            pass
        return job_id

    def load(self, job_id: str) -> JobSpec:
        spec_path = self.job_dir(job_id) / "spec.json"
        try:
            text = spec_path.read_text()
        except OSError:
            raise KeyError(f"no job {job_id!r} in store {self.root}") from None
        return JobSpec.from_json(text)

    def jobs(self) -> List[str]:
        """All stored job ids, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(d.name for d in self.root.iterdir()
                      if (d / "spec.json").is_file())

    # ------------------------------------------------------------------- meta
    def meta(self, job_id: str) -> Dict[str, Any]:
        path = self.job_dir(job_id) / "meta.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return {}

    def set_meta(self, job_id: str, **fields: Any) -> None:
        meta = self.meta(job_id)
        meta.update(fields)
        _atomic_write(self.job_dir(job_id) / "meta.json",
                      canonical_json(meta))

    # ---------------------------------------------------------------- journal
    def append_point(self, job_id: str, index: int, record: RunRecord) -> None:
        """Journal one completed point (flush + fsync: a kill after this
        returns can never lose the completion)."""
        line = canonical_json({"index": index,
                               "record": json.loads(record.to_json())})
        path = self._journal_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def completed(self, job_id: str) -> Dict[int, RunRecord]:
        """Replay the journal: ``point index -> record``.

        A torn trailing line (the writer died mid-append) or any
        otherwise-corrupt line is skipped -- that point simply re-runs.
        """
        path = self._journal_path(job_id)
        out: Dict[int, RunRecord] = {}
        try:
            lines = path.read_text().splitlines()
        except OSError:
            return out
        for line in lines:
            try:
                doc = json.loads(line)
                out[int(doc["index"])] = RunRecord.from_json(
                    canonical_json(doc["record"]))
            except (ValueError, KeyError, TypeError):
                continue
        return out

    # ----------------------------------------------------------------- cancel
    def _cancel_marker(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "cancel.requested"

    def request_cancel(self, job_id: str) -> str:
        """Journal a cancel request; returns the job's new status.

        Drops an atomic ``cancel.requested`` marker the running process
        polls (cooperative: in-flight points finish).  A ``running`` job
        becomes ``cancelling``; a finished (``done``/``failed``) job is
        left untouched; anything else -- queued, preempted, or not
        running at all -- is marked ``cancelled`` outright, so a resume
        won't restart it by accident.
        """
        self.load(job_id)  # KeyError for unknown jobs
        _atomic_write(self._cancel_marker(job_id), "")
        status = self.meta(job_id).get("status")
        if status == "running":
            status = "cancelling"
            self.set_meta(job_id, status=status)
        elif status not in ("done", "failed", "cancelled"):
            status = "cancelled"
            self.set_meta(job_id, status=status)
        return status or "cancelled"

    def cancel_requested(self, job_id: str) -> bool:
        return self._cancel_marker(job_id).exists()

    def clear_cancel(self, job_id: str) -> None:
        try:
            self._cancel_marker(job_id).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------ checkpoints
    def checkpoints(self, job_id: str) -> List[Dict[str, Any]]:
        """Headers of the job's on-disk checkpoints, newest-first by
        snapshot time; unreadable files are skipped."""
        from repro.checkpoint import CheckpointError, read_header
        d = self.checkpoint_dir(job_id)
        out: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(d))
        except OSError:
            return out
        for name in names:
            try:
                out.append(read_header(str(d / name)))
            except (CheckpointError, OSError):
                continue
        out.sort(key=lambda h: h.get("sim_now_ns", 0), reverse=True)
        return out

    def clear_checkpoints(self, job_id: str) -> int:
        """Delete the job's checkpoint directory; returns files removed."""
        d = self.checkpoint_dir(job_id)
        n = 0
        if not d.is_dir():
            return n
        for entry in sorted(d.iterdir()):
            try:
                entry.unlink()
                n += 1
            except OSError:
                pass
        try:
            d.rmdir()
        except OSError:
            pass
        return n

    # ------------------------------------------------------------- lifecycle
    def discard(self, job_id: str) -> bool:
        """Delete a job's directory; returns whether anything existed."""
        d = self.job_dir(job_id)
        if not d.is_dir():
            return False
        self.clear_checkpoints(job_id)
        for entry in sorted(d.iterdir()):
            entry.unlink()
        d.rmdir()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobStore {self.root} jobs={len(self.jobs())}>"


def _maybe_store(store: Union[str, Path, "JobStore", None]) -> Optional[JobStore]:
    """Coerce a store argument: JobStore passes through, paths wrap."""
    if store is None or isinstance(store, JobStore):
        return store
    return JobStore(store)
