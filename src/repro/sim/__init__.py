"""Discrete-event simulation kernel.

This subpackage is the substrate for the whole GPU-TN reproduction: a
deterministic, integer-nanosecond, generator-coroutine discrete-event
simulator in the style of SimPy, built from scratch so the repository has
no dependencies beyond NumPy.

Public surface:

* :class:`~repro.sim.engine.Simulator` -- the event loop.
* :class:`~repro.sim.engine.Event`, :class:`~repro.sim.engine.Timeout` --
  primitive waitables.
* :class:`~repro.sim.process.Process` -- a generator-based coroutine that
  yields waitables.
* :mod:`~repro.sim.resources` -- FIFO stores, semaphore-style resources and
  counters used to model queues, cores and doorbell FIFOs.
* :mod:`~repro.sim.trace` -- structured timeline recording used by the
  latency-decomposition analysis (paper Figure 8).
* :mod:`~repro.sim.rng` -- named deterministic random streams.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.trace import Span, TraceEvent, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Simulator",
    "Span",
    "Store",
    "Timeout",
    "TraceEvent",
    "Tracer",
]
