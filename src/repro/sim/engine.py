"""Core event loop for the discrete-event simulator.

Time is an integer number of **nanoseconds**.  Integer time keeps event
ordering exact (no floating-point drift) which matters for the memory-model
and triggered-operation race tests: the paper's relaxed-synchronization
semantics (Section 3.2) are only meaningful if the simulator resolves
CPU-registration vs. GPU-trigger races deterministically.

The scheduler orders events by ``(time, priority, tiebreak, sequence)``
where ``sequence`` is a monotone insertion counter, so same-time events
fire in FIFO order.  ``priority`` is rarely needed but lets hardware
models (e.g. the NIC command processor) drain their queues before
same-tick user logic.  ``tiebreak`` is 0 in normal operation; the
:mod:`repro.validate` schedule fuzzer seeds it (:meth:`Simulator.
seed_tiebreaks`) to explore alternative legal orderings of same-time,
same-priority events, and invariant monitors observe every pop through
:meth:`Simulator.add_step_probe`.

Hot-path notes (DESIGN.md "Performance model of the simulator itself"):
the engine is the multiplier under every exhibit, fuzz campaign and fault
sweep, so :meth:`Simulator.run` drains the heap with locally bound
references and no per-event ``until`` re-check inside a same-tick run,
:meth:`Simulator.call_later` recycles fire-and-forget callback events
through a freelist instead of allocating a :class:`Timeout` + closure per
call, and the probe path costs one truthiness test when no monitor is
attached.  None of this may reorder events: every optimization preserves
the exact ``(time, priority, tiebreak, sequence)`` pop order (pinned by
golden RunRecord fixtures and the determinism tests in
``tests/test_sim_engine.py``).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "SimulationError",
    "Simulator",
    "Timeout",
]

#: Default priority for scheduled events.  Lower fires first at equal time.
PRIORITY_NORMAL = 10
#: Priority used by hardware pipelines that must drain before user logic.
PRIORITY_URGENT = 0

#: Upper bound on the callback-event freelist (see Simulator.call_later).
#: Big enough that steady-state churn never allocates; small enough that a
#: burst of in-flight callbacks does not pin memory forever.
_POOL_MAX = 4096

# Module-level bindings: one global load instead of a module-attribute
# lookup per scheduled event.
_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for modeled errors)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted.

    The ``cause`` attribute carries an arbitrary payload provided by the
    interrupter (e.g. the reason a persistent kernel was torn down).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable occurrence.

    Lifecycle: *pending* -> *triggered* (value or exception set, scheduled on
    the event loop) -> *processed* (callbacks have run).  Processes wait on
    events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
                 "name", "_sched_seq")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: Insertion counter stamped by the scheduler -- the ground truth
        #: the FIFO-tie-break invariant monitor checks pop order against.
        self._sched_seq = 0

    # ------------------------------------------------------------------ state
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (it may not have fired yet)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event carries a value rather than an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"value of untriggered event {self!r}")
        return self._value

    # ------------------------------------------------------------- triggering
    def succeed(self, value: Any = None, delay: int = 0, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with ``value`` after ``delay`` ns."""
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule_event(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: int = 0,
             priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event with an exception to be thrown into waiters.

        Accepts the same ``priority`` as :meth:`succeed` so failure paths
        keep deterministic same-tick ordering relative to hardware-pipeline
        events.
        """
        if self._triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule_event(self, delay, priority)
        return self

    def _run_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` ns after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None, priority: int = PRIORITY_NORMAL):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # The name stays static: rendering f"timeout({delay})" per event
        # was a measurable share of event-churn cost, and the delay is
        # visible in the repr through the dedicated slot anyway.
        super().__init__(sim, name="timeout")
        self.delay = int(delay)
        self._triggered = True
        self._value = value
        sim._schedule_event(self, self.delay, priority)


class _Call:
    """Picklable adapter binding ``fn(*args)`` to an event callback.

    :meth:`Simulator.schedule` used to close over ``callback``/``args``
    with a lambda; checkpointing pickles pending heap entries, and
    lambdas don't pickle.  Instances survive in checkpoints as long as
    ``fn`` itself does (bound methods of model objects do).
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: tuple):
        self.fn = fn
        self.args = args

    def __call__(self, _ev: "Event") -> None:
        self.fn(*self.args)


class _CallbackEvent(Event):
    """Internal fire-and-forget event used by :meth:`Simulator.call_later`.

    Instances are recycled through the simulator's freelist: after the
    callback runs, the event resets itself and returns to the pool, so
    steady-state callback scheduling allocates nothing.  Never handed out
    to callers -- external code cannot hold a reference, which is what
    makes recycling safe.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, sim: "Simulator"):
        super().__init__(sim, name="callback")
        self._fn: Optional[Callable[..., None]] = None
        self._args: tuple = ()
        # Permanently "triggered": pooled events are scheduled the moment
        # they leave the pool and external code never holds a reference,
        # so nothing can observe (or re-trigger) the pending state.
        # Setting it once here instead of on every recycle saves two
        # attribute writes per event on the hottest path in the tree.
        self._triggered = True

    def _run_callbacks(self) -> None:
        fn, args = self._fn, self._args
        # Reset and return to the pool *before* invoking: a callback that
        # schedules again may immediately reuse this object, and a raising
        # callback leaves it clean in the pool rather than leaking state.
        self._fn = None
        self._args = ()
        pool = self.sim._pool
        if len(pool) < _POOL_MAX:
            pool.append(self)
        fn(*args)  # type: ignore[misc]


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        self._n_done = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        # Register after validation so a bad input leaves no dangling callbacks.
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value maps event -> value."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done == len(self.events)


class AnyOf(_Condition):
    """Fires when at least one child event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class Simulator:
    """The discrete-event loop.

    Usage::

        sim = Simulator()
        sim.spawn(my_generator_fn(sim, ...))
        sim.run()

    ``run`` drains the event heap; ``run(until=t)`` stops the clock at ``t``
    (inclusive of events scheduled exactly at ``t``).
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: list[tuple[int, int, int, int, Event]] = []
        self._seq: int = 0
        self._running = False
        self._tiebreak_rng: Optional[random.Random] = None
        self._step_probes: list[Callable[[int, int, int, int, Event], None]] = []
        #: Recycled :class:`_CallbackEvent` freelist (see :meth:`call_later`).
        self._pool: list[_CallbackEvent] = []
        #: Events popped and fired so far -- the numerator of the
        #: events/sec metric :mod:`repro.bench` reports.
        self.events_processed: int = 0

    # -------------------------------------------------------------- clock/api
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def spawn(self, generator, name: str = ""):
        """Start a new process from a generator. Returns the Process."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule a plain callback ``delay`` ns from now.

        Returns the underlying event so callers can wait on *when* the
        callback runs; the callback's return value is *not* captured --
        this is a fire-and-forget hook.  When nothing will wait on the
        returned event, prefer :meth:`call_later`: it takes the same
        arguments but recycles its event object through a freelist.
        """
        ev = Timeout(self, delay, priority=priority)
        ev.callbacks.append(_Call(callback, args))
        return ev

    def call_later(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget sibling of :meth:`schedule`; returns ``None``.

        Schedules ``callback(*args)`` to run ``delay`` ns from now with the
        exact same ordering semantics as :meth:`schedule` (one scheduler
        sequence number, same default priority), but the backing event
        comes from -- and returns to -- an internal freelist, so the
        per-call allocations (Timeout + closure + callback list) disappear.
        This is the hot-path API the hardware models use for their internal
        pipeline delays.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        pool = self._pool
        ev = pool.pop() if pool else _CallbackEvent(self)
        ev._fn = callback
        ev._args = args
        # Inlined _schedule_event: one Python frame per event is a
        # measurable share of raw engine throughput (repro.bench
        # "engine").  Must stay semantically identical -- same sequence
        # stamping, same (time, priority, tiebreak, seq) heap key.
        seq = self._seq = self._seq + 1
        ev._sched_seq = seq
        rng = self._tiebreak_rng
        _heappush(self._heap,
                  (self._now + int(delay), priority,
                   rng.getrandbits(16) if rng is not None else 0,
                   seq, ev))

    # -------------------------------------------------------- checkpointing
    def __getstate__(self) -> dict:
        """Pickle support for :mod:`repro.checkpoint`.

        The freelist is dropped (pooled events are inert spares; the
        restored simulator re-grows its own) and ``_running`` is forced
        False -- snapshots are only legal between :meth:`run` calls, and
        the checkpoint layer enforces that before pickling.
        """
        state = self.__dict__.copy()
        state["_pool"] = []
        state["_running"] = False
        return state

    def snapshot(self) -> dict:
        """Capture the engine's scheduler state as a plain dict.

        Returns ``now``, the sequence counter, ``events_processed``, the
        heap entries (shared, not copied -- deep capture is the checkpoint
        layer's job, via pickling the whole object graph) and the
        tie-break RNG state.  :meth:`restore` accepts the result.
        """
        if self._running:
            raise SimulationError("snapshot() while the simulator is running")
        return {
            "version": 1,
            "now": self._now,
            "seq": self._seq,
            "events_processed": self.events_processed,
            "heap": list(self._heap),
            "tiebreak_state": (self._tiebreak_rng.getstate()
                               if self._tiebreak_rng is not None else None),
        }

    def restore(self, state: dict) -> None:
        """Restore scheduler state captured by :meth:`snapshot`.

        Heap entries keep their original ``(time, priority, tiebreak,
        sequence)`` keys, so pop order -- including FIFO tie-breaks --
        continues exactly as it would have in the snapshotted run.
        """
        if self._running:
            raise SimulationError("restore() while the simulator is running")
        if state.get("version") != 1:
            raise SimulationError(
                f"unsupported simulator snapshot version {state.get('version')!r}")
        self._now = state["now"]
        self._seq = state["seq"]
        self.events_processed = state["events_processed"]
        self._heap = list(state["heap"])
        heapq.heapify(self._heap)
        if state["tiebreak_state"] is None:
            self._tiebreak_rng = None
        else:
            rng = random.Random()
            rng.setstate(state["tiebreak_state"])
            self._tiebreak_rng = rng

    # ------------------------------------------------------- validation hooks
    def add_step_probe(self, probe: Callable[[int, int, int, int, Event], None]) -> None:
        """Register an observer called on every :meth:`step` with the popped
        heap key ``(time, priority, tiebreak, sequence)`` and the event,
        *before* the event's callbacks run.  Probes are the attachment
        point for :mod:`repro.validate` runtime monitors; they must be
        O(1) and may raise to abort the run (fail-fast validation)."""
        self._step_probes.append(probe)

    def seed_tiebreaks(self, seed: int) -> None:
        """Arm schedule fuzzing: subsequently scheduled events draw a
        deterministic pseudo-random tie-break key, exploring alternative
        legal orderings of same-``(time, priority)`` events.  The same
        seed always produces the same schedule (``random.Random`` is
        platform-stable), so any failure is replayable from the seed."""
        self._tiebreak_rng = random.Random(seed)

    # ---------------------------------------------------------------- engine
    def _schedule_event(self, event: Event, delay: int, priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq = self._seq + 1
        event._sched_seq = seq
        rng = self._tiebreak_rng
        _heappush(self._heap,
                  (self._now + int(delay), priority,
                   rng.getrandbits(16) if rng is not None else 0,
                   seq, event))

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        t, prio, tie, seq, event = heapq.heappop(self._heap)
        if t < self._now:  # pragma: no cover - guarded by _schedule_event
            raise SimulationError("event heap time went backwards")
        self._now = t
        self.events_processed += 1
        if self._step_probes:
            for probe in self._step_probes:
                probe(t, prio, tie, seq, event)
        event._run_callbacks()

    def run(self, until: Optional[int] = None) -> int:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final simulation time.

        The drain loop is the simulator's hottest code: it pops events
        with locally bound references and -- within a run of events at one
        timestamp -- skips the per-event ``until`` re-check (same-tick
        events cannot newly pass the horizon).  Pop order is bit-identical
        to repeated :meth:`step` calls; ``tests/test_sim_engine.py``
        asserts this on fuzzed schedules.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        processed = 0
        heap = self._heap
        pop = _heappop
        pool = self._pool
        # Bind the probe *list* (not a snapshot): add_step_probe appends in
        # place, so probes attached mid-run are still honored while the
        # no-probe case costs one truthiness test per event.
        probes = self._step_probes
        # Fire-and-forget callback events (the common case under the
        # hardware models) are dispatched inline: recycling them through
        # the freelist here instead of via Event._run_callbacks saves a
        # Python frame per event.  The inline block is semantically
        # identical to _CallbackEvent._run_callbacks.
        try:
            if until is None:
                while heap:
                    t, prio, tie, seq, event = pop(heap)
                    self._now = t
                    processed += 1
                    if probes:
                        for probe in probes:
                            probe(t, prio, tie, seq, event)
                    if event.__class__ is _CallbackEvent:
                        fn = event._fn
                        args = event._args
                        event._fn = None
                        event._args = ()
                        if len(pool) < _POOL_MAX:
                            pool.append(event)
                        fn(*args)
                    else:
                        event._run_callbacks()
            else:
                while heap:
                    t = heap[0][0]
                    if t > until:
                        self._now = until
                        break
                    # Drain the whole same-tick run; zero-delay events a
                    # callback schedules join it in heap order.
                    while heap and heap[0][0] == t:
                        t, prio, tie, seq, event = pop(heap)
                        self._now = t
                        processed += 1
                        if probes:
                            for probe in probes:
                                probe(t, prio, tie, seq, event)
                        if event.__class__ is _CallbackEvent:
                            fn = event._fn
                            args = event._args
                            event._fn = None
                            event._args = ()
                            if len(pool) < _POOL_MAX:
                                pool.append(event)
                            fn(*args)
                        else:
                            event._run_callbacks()
                else:
                    if until > self._now:
                        self._now = until
        finally:
            self._running = False
            self.events_processed += processed
        return self._now

    def run_until_event(self, event: Event, limit: Optional[int] = None) -> Any:
        """Run until ``event`` is processed; returns its value.

        Raises the event's exception if it failed, and ``SimulationError``
        if the heap drains (or ``limit`` is reached) first.  Enforces the
        same reentrancy guard as :meth:`run`: calling it from inside an
        event callback would corrupt the clock.
        """
        if self._running:
            raise SimulationError("Simulator.run_until_event() is not reentrant")
        self._running = True
        try:
            while not event.processed:
                if not self._heap:
                    raise SimulationError(f"simulation ended before {event!r} fired")
                if limit is not None and self._heap[0][0] > limit:
                    raise SimulationError(f"limit {limit} reached before {event!r} fired")
                self.step()
        finally:
            self._running = False
        if not event.ok:
            raise event.value
        return event.value
