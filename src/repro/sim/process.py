"""Generator-coroutine processes for the simulation kernel.

A *process* wraps a Python generator that ``yield``-s :class:`Event`
instances (Timeouts, Store gets, other processes, ...).  The process is
itself an :class:`Event` that fires with the generator's return value, so
processes compose: a parent can ``yield child`` to join on it.

Supports interrupts (used to model kernel teardown of persistent GPU
kernels and cancellation of pending network waits).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Event, Interrupt, SimulationError, Simulator

__all__ = ["Process", "ProcessKilled"]


class ProcessKilled(Exception):
    """Raised inside a process killed via :meth:`Process.kill`."""


class Process(Event):
    """A running coroutine; also an event that fires on completion."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call the function instead of passing its generator?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off on the next scheduler tick at the current time.
        boot = Event(sim, name=f"boot:{self.name}")
        boot.callbacks.append(self._resume)
        boot.succeed()

    # ----------------------------------------------------------------- alive
    @property
    def is_alive(self) -> bool:
        return not self._triggered

    # ------------------------------------------------------------- stepping
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        self._waiting_on = None
        try:
            if event is not self and not event.ok:
                target = self._generator.throw(event.value)
            elif isinstance(event.value, Interrupt) and event is not self:
                # Interrupt delivery path (event value flags the interrupt).
                target = self._generator.throw(event.value)
            else:
                target = self._generator.send(event.value if event is not self else None)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            if not self._triggered:
                self.fail(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        if not isinstance(target, Event):
            self._generator.throw(
                SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            )
            return
        if target.sim is not self.sim:
            self._generator.throw(
                SimulationError("process yielded an event from a different simulator")
            )
            return
        self._waiting_on = target
        if target.processed:
            # Already done: resume on a fresh zero-delay event so same-time
            # ordering stays FIFO relative to other pending work.
            relay = Event(self.sim, name=f"relay:{self.name}")
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.value)
        else:
            target.callbacks.append(self._resume)

    # ------------------------------------------------------------ interrupts
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on remains pending; the process
        may re-wait on it after handling the interrupt.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waiting = self._waiting_on
        if waiting is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already popped this tick
                pass
            self._waiting_on = None
        relay = Event(self.sim, name=f"interrupt:{self.name}")
        relay.callbacks.append(self._resume)
        relay.succeed(Interrupt(cause))

    def kill(self) -> None:
        """Terminate the process immediately (throws ProcessKilled)."""
        if self._triggered:
            return
        waiting = self._waiting_on
        if waiting is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover
                pass
            self._waiting_on = None
        try:
            self._generator.throw(ProcessKilled())
        except (StopIteration, ProcessKilled):
            pass
        except BaseException:
            pass
        finally:
            self._generator.close()
        if not self._triggered:
            self.fail(ProcessKilled())
