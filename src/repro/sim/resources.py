"""Queues and shared-resource primitives for the simulation kernel.

These model the hardware queues in the system:

* :class:`Store` -- a FIFO channel with blocking ``get``; used for the NIC
  doorbell FIFO, the NIC command queue and the GPU's in-memory command
  queues (HSA soft queues).
* :class:`Resource` -- a counted semaphore; used for CPU cores and GPU
  compute-unit slots.
* :class:`Container` -- a level-triggered counter; used for credit/flow
  control on links.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Container", "Resource", "Store"]


class Store:
    """An optionally-bounded FIFO channel.

    ``put`` returns an event that fires once the item is enqueued (at once
    unless the store is full); ``get`` returns an event that fires with the
    oldest item once one is available.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        # Event names rendered once, not per get/put: the trigger-FIFO
        # pump creates one get event per doorbell write, a hot path.
        self._put_name = f"put:{name}"
        self._get_name = f"get:{name}"

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = Event(self.sim, name=self._put_name)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif not self.is_full:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        ev = Event(self.sim, name=self._get_name)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            ev, item = self._putters.popleft()
            self.items.append(item)
            ev.succeed()


class Resource:
    """A counted semaphore with FIFO granting.

    ``acquire`` yields an event firing when a unit is granted; ``release``
    returns the unit.  Models CPU cores and compute-unit work-group slots.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        ev = Event(self.sim, name=f"acquire:{self.name}")
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter; in_use is unchanged.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def request(self):
        """Context-manager style helper for use inside processes::

            with (yield res.acquire_cm()) ...   # not supported; use explicit
        """
        raise SimulationError("use acquire()/release() explicitly inside processes")


class Container:
    """A level-triggered counter (e.g. link credits, byte pools)."""

    def __init__(self, sim: Simulator, init: int = 0, capacity: Optional[int] = None, name: str = ""):
        if init < 0:
            raise SimulationError("container level cannot start negative")
        if capacity is not None and init > capacity:
            raise SimulationError("container initial level exceeds capacity")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.level = init
        self._getters: Deque[tuple[Event, int]] = deque()
        self._putters: Deque[tuple[Event, int]] = deque()

    def put(self, amount: int) -> Event:
        if amount <= 0:
            raise SimulationError("container put amount must be positive")
        ev = Event(self.sim, name=f"cput:{self.name}")
        self._putters.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: int) -> Event:
        if amount <= 0:
            raise SimulationError("container get amount must be positive")
        ev = Event(self.sim, name=f"cget:{self.name}")
        self._getters.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self.capacity is None or self.level + amount <= self.capacity:
                    self.level += amount
                    self._putters.popleft()
                    ev.succeed()
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if self.level >= amount:
                    self.level -= amount
                    self._getters.popleft()
                    ev.succeed()
                    progressed = True
