"""Deterministic, named random streams.

Every stochastic element of the simulation (workload generators, jittered
latencies, trace synthesis) pulls from a named child stream of a single
root seed, so experiments are exactly reproducible and adding a new
consumer never perturbs existing streams.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent ``numpy`` Generators derived from one seed."""

    def __init__(self, seed: int = 0x5C17):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The child seed is derived by hashing the name into the spawn key, so
        streams are independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.default_rng([self.seed, _stable_hash(name)])
            self._streams[name] = gen = child
        return gen

    def reset(self) -> None:
        """Drop all streams so the next use re-derives from the root seed."""
        self._streams.clear()


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash (``hash()`` is salted per process)."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h >> 1
