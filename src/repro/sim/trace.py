"""Structured timeline tracing.

The paper's headline microbenchmark result (Figure 8) is a *latency
decomposition*: per-node, per-component spans (kernel launch, kernel
execution, teardown, put, wait) on one absolute time axis.  The tracer
records exactly that: point events and open/close spans keyed by
``(node, actor, phase)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """A point event on the timeline."""

    time: int
    node: str
    actor: str
    phase: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """A half-open interval [start, end) of activity by one actor."""

    node: str
    actor: str
    phase: str
    start: int
    end: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        if self.end is None:
            raise ValueError(f"span {self.phase!r} still open")
        return self.end - self.start

    def __str__(self) -> str:
        end = self.end if self.end is not None else "..."
        return f"[{self.node}/{self.actor}] {self.phase}: {self.start}..{end}"


class Tracer:
    """Collects point events and spans; queryable for analysis/reporting."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.spans: List[Span] = []
        self._open: Dict[Tuple[str, str, str], List[Span]] = {}

    # ------------------------------------------------------------- recording
    def point(self, time: int, node: str, actor: str, phase: str, **detail: Any) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, node, actor, phase, detail))

    def begin(self, time: int, node: str, actor: str, phase: str, **detail: Any) -> Optional[Span]:
        if not self.enabled:
            return None
        span = Span(node, actor, phase, time, detail=detail)
        self.spans.append(span)
        self._open.setdefault((node, actor, phase), []).append(span)
        return span

    def end(self, time: int, node: str, actor: str, phase: str, **detail: Any) -> Optional[Span]:
        if not self.enabled:
            return None
        stack = self._open.get((node, actor, phase))
        if not stack:
            raise ValueError(f"end() without begin() for ({node},{actor},{phase})")
        span = stack.pop()
        span.end = time
        span.detail.update(detail)
        return span

    # --------------------------------------------------------------- queries
    def spans_for(self, node: Optional[str] = None, actor: Optional[str] = None,
                  phase: Optional[str] = None) -> List[Span]:
        out = []
        for s in self.spans:
            if node is not None and s.node != node:
                continue
            if actor is not None and s.actor != actor:
                continue
            if phase is not None and s.phase != phase:
                continue
            out.append(s)
        return out

    def events_for(self, node: Optional[str] = None, actor: Optional[str] = None,
                   phase: Optional[str] = None) -> List[TraceEvent]:
        out = []
        for e in self.events:
            if node is not None and e.node != node:
                continue
            if actor is not None and e.actor != actor:
                continue
            if phase is not None and e.phase != phase:
                continue
            out.append(e)
        return out

    def first(self, phase: str, node: Optional[str] = None) -> Optional[TraceEvent]:
        for e in self.events:
            if e.phase == phase and (node is None or e.node == node):
                return e
        return None

    def last(self, phase: str, node: Optional[str] = None) -> Optional[TraceEvent]:
        found = None
        for e in self.events:
            if e.phase == phase and (node is None or e.node == node):
                found = e
        return found

    def iter_sorted(self) -> Iterator[TraceEvent]:
        return iter(sorted(self.events, key=lambda e: e.time))

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (useful in test assertions)."""
        return [s for stack in self._open.values() for s in stack]

    def clear(self) -> None:
        self.events.clear()
        self.spans.clear()
        self._open.clear()

    # ---------------------------------------------------------------- export
    def export_chrome(self, path):
        """Write the timeline as Chrome trace-event JSON (Perfetto-loadable).

        Thin convenience over :func:`repro.runtime.traceexport.export_chrome_trace`
        (imported lazily: the runtime layer sits above the simulator).
        """
        from repro.runtime.traceexport import export_chrome_trace

        return export_chrome_trace(self, path)
