"""GPU networking strategies.

:mod:`~repro.strategies.base` carries the qualitative taxonomy of paper
Table 1 (all five classes, including the two the paper discusses but does
not simulate); :mod:`~repro.strategies.flows` implements the four
*evaluated* strategies (CPU, HDN, GDS, GPU-TN) as compute-then-send
point-to-point flows -- the building block of the latency microbenchmark
(Figure 8) and the per-round structure of Jacobi and Allreduce.
"""

from repro.strategies.base import (
    EVALUATED_STRATEGIES,
    STRATEGIES,
    StrategyInfo,
    strategy_info,
)
from repro.strategies.flows import FLOWS, FlowResult, get_flow

__all__ = [
    "EVALUATED_STRATEGIES",
    "FLOWS",
    "FlowResult",
    "STRATEGIES",
    "StrategyInfo",
    "get_flow",
    "strategy_info",
]
