"""Strategy taxonomy (paper Table 1).

Qualitative metadata for the five GPU networking classes the paper
compares.  The four *evaluated* strategies (CPU is the non-GPU sanity
baseline, outside the taxonomy) map to concrete flow implementations in
:mod:`repro.strategies.flows`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["EVALUATED_STRATEGIES", "STRATEGIES", "StrategyInfo", "strategy_info"]


@dataclass(frozen=True)
class StrategyInfo:
    """One row of paper Table 1."""

    key: str
    display_name: str
    gpu_triggered: bool
    intra_kernel: bool
    gpu_overhead: str
    cpu_overhead: str
    evaluated: bool
    references: Tuple[str, ...] = ()

    def table_row(self) -> Tuple[str, str, str, str, str]:
        return (
            self.display_name,
            "Yes" if self.gpu_triggered else "No",
            "Yes" if self.intra_kernel else "No",
            self.gpu_overhead,
            self.cpu_overhead,
        )


STRATEGIES: Dict[str, StrategyInfo] = {
    "hdn": StrategyInfo(
        key="hdn",
        display_name="Host-Driven Networking (HDN)",
        gpu_triggered=False,
        intra_kernel=False,
        gpu_overhead="Kernel Boundary",
        cpu_overhead="Network Stack",
        evaluated=True,
        references=("Zippy", "GPUDirect RDMA", "CUDASA"),
    ),
    "gpu-native": StrategyInfo(
        key="gpu-native",
        display_name="GPU Native Networking",
        gpu_triggered=True,
        intra_kernel=True,
        gpu_overhead="Network Stack",
        cpu_overhead="NA",
        evaluated=False,
        references=("GPUrdma", "GGAS", "Oden et al."),
    ),
    "gpu-host": StrategyInfo(
        key="gpu-host",
        display_name="GPU Host Networking",
        gpu_triggered=False,
        intra_kernel=True,
        gpu_overhead="CPU/GPU Queues",
        cpu_overhead="Service Threads, Network Stack",
        evaluated=False,
        references=("dCUDA", "GPUnet", "FLAT", "DCGN"),
    ),
    "gds": StrategyInfo(
        key="gds",
        display_name="GPU Direct Async (GDS)",
        gpu_triggered=True,
        intra_kernel=False,
        gpu_overhead="Kernel Boundary, Trigger",
        cpu_overhead="Partial Network Stack",
        evaluated=True,
        references=("GPUDirect Async",),
    ),
    "gputn": StrategyInfo(
        key="gputn",
        display_name="GPU Triggered Networking (GPU-TN)",
        gpu_triggered=True,
        intra_kernel=True,
        gpu_overhead="Trigger",
        cpu_overhead="Partial Network Stack",
        evaluated=True,
        references=("this paper",),
    ),
    # The non-GPU sanity baseline of Section 5.1 (outside Table 1).
    "cpu": StrategyInfo(
        key="cpu",
        display_name="CPU (no GPU acceleration)",
        gpu_triggered=False,
        intra_kernel=False,
        gpu_overhead="NA",
        cpu_overhead="Everything",
        evaluated=True,
    ),
}

#: The four configurations of paper Section 5.1, in presentation order.
EVALUATED_STRATEGIES: Tuple[str, ...] = ("cpu", "hdn", "gds", "gputn")


def strategy_info(key: str) -> StrategyInfo:
    try:
        return STRATEGIES[key]
    except KeyError:
        raise KeyError(
            f"unknown strategy {key!r}; known: {sorted(STRATEGIES)}"
        ) from None
