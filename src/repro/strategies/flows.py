"""The four evaluated strategies as compute-then-send flows.

Each flow answers the paper's microbenchmark question (Section 5.2): a
kernel on the initiator produces one cache line of data that must land at
the target.  The flows differ exactly as Figure 3 draws them:

* **cpu**    -- no GPU: the CPU computes and sends.
* **hdn**    -- kernel runs to completion; the CPU then builds and posts a
  two-sided send; the target matches a posted receive.
* **gds**    -- the CPU pre-posts a staged put; the GPU front end rings
  the doorbell at the kernel boundary (after teardown); the target polls.
* **gputn**  -- the CPU registers a triggered put; the kernel publishes
  the buffer and stores the tag *from inside the kernel*; the target
  polls.  Registration may be overlapped with the launch (relaxed
  synchronization, Section 3.2) via ``overlap_post=True``.

Initiator generators return a :class:`FlowResult`; target generators
return the simulation time at which the payload was observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cluster import Node
from repro.gpu.kernel import KernelContext, KernelDescriptor
from repro.memory import Buffer

__all__ = ["FLOWS", "FlowResult", "get_flow"]


@dataclass
class FlowResult:
    """Initiator-side timeline of one flow execution (ns timestamps)."""

    strategy: str
    kernel_started: Optional[int] = None
    kernel_finished: Optional[int] = None
    network_posted: Optional[int] = None
    local_complete: Optional[int] = None
    detail: Dict[str, int] = field(default_factory=dict)


# --------------------------------------------------------------------------
# The microbenchmark kernel: copy one cache line, publish it.  Matches the
# paper's "simple vector copy operation of a single cache line".
# --------------------------------------------------------------------------

def _copy_kernel(ctx: KernelContext):
    """Vector-copy the payload and make it system-visible.

    At the paper's single-cache-line size this costs one global
    load/store; larger payloads scale with the work-group's streaming
    rate (the size sweep uses this path).
    """
    buf: Buffer = ctx.arg("buffer")
    payload = np.full(buf.nbytes, ctx.arg("pattern"), dtype=np.uint8)
    ctx.write(buf, payload)
    gpu_cfg = ctx.config.gpu
    # Whole-device streaming rate: a real fill uses the full grid even
    # though this model folds it into the driving work-group.
    yield ctx.compute(max(gpu_cfg.global_load_ns,
                          int(2 * buf.nbytes / gpu_cfg.stream_bytes_per_ns)))
    yield ctx.barrier()
    yield ctx.fence_release_system(buf)


def _copy_trigger_kernel(ctx: KernelContext):
    """The GPU-TN variant: copy, publish, then trigger the NIC in-kernel."""
    yield from _copy_kernel(ctx)
    yield ctx.store_trigger(ctx.arg("tag"))


# --------------------------------------------------------------------------
# Initiator flows
# --------------------------------------------------------------------------

def cpu_initiator(node: Node, target: str, send_buf: Buffer, nbytes: int,
                  remote_addr: Optional[int], wire_tag: int,
                  pattern: int = 0xA5):
    """CPU-only: compute on the host, then a two-sided send."""
    result = FlowResult("cpu")
    node.host.cpu_write(send_buf, np.full(nbytes, pattern, dtype=np.uint8))
    yield from node.host.compute_bytes(nbytes, phase="cpu-compute")
    handle = yield from node.host.send(send_buf, nbytes, target, wire_tag)
    result.network_posted = node.sim.now
    result.local_complete = yield handle.local
    return result


def hdn_initiator(node: Node, target: str, send_buf: Buffer, nbytes: int,
                  remote_addr: Optional[int], wire_tag: int,
                  pattern: int = 0xA5):
    """Host-Driven Networking: kernel, then CPU send at the boundary."""
    result = FlowResult("hdn")
    desc = KernelDescriptor(fn=_copy_kernel, n_workgroups=1,
                            args={"buffer": send_buf, "pattern": pattern},
                            name="hdn-copy")
    inst = yield from node.host.launch_kernel(desc)
    result.kernel_started = yield inst.started
    result.kernel_finished = yield inst.finished
    # CPU notices kernel completion on its next poll, then sends.
    yield node.sim.timeout(node.config.cpu.completion_poll_ns)
    handle = yield from node.host.send(send_buf, nbytes, target, wire_tag)
    result.network_posted = node.sim.now
    result.local_complete = yield handle.local
    return result


def gds_initiator(node: Node, target: str, send_buf: Buffer, nbytes: int,
                  remote_addr: int, wire_tag: int, pattern: int = 0xA5):
    """GDS: pre-posted staged put, doorbell at the kernel boundary."""
    if remote_addr is None:
        raise ValueError("gds flow is one-sided; remote_addr required")
    result = FlowResult("gds")
    handle = yield from node.host.put(send_buf, nbytes, target, remote_addr,
                                      wire_tag=wire_tag, deferred=True)
    result.network_posted = node.sim.now
    desc = KernelDescriptor(fn=_copy_kernel, n_workgroups=1,
                            args={"buffer": send_buf, "pattern": pattern},
                            name="gds-copy")
    inst = yield from node.host.launch_kernel(desc)
    node.gpu.enqueue_doorbell(handle)  # initiation point in the stream
    result.kernel_started = yield inst.started
    result.kernel_finished = yield inst.finished
    result.local_complete = yield handle.local
    return result


def gputn_initiator(node: Node, target: str, send_buf: Buffer, nbytes: int,
                    remote_addr: int, wire_tag: int, pattern: int = 0xA5,
                    overlap_post: bool = False, tag: int = 0x51,
                    post_delay_ns: int = 0):
    """GPU-TN: registered triggered put, fired from inside the kernel.

    ``overlap_post=True`` launches the kernel *before* registering the
    operation -- the Section 3.2 relaxed-synchronization optimization;
    ``post_delay_ns`` additionally delays the CPU registration, modeling
    a busy host (the relaxed-sync ablation sweeps it).
    """
    if remote_addr is None:
        raise ValueError("gputn flow is one-sided; remote_addr required")
    result = FlowResult("gputn")
    desc = KernelDescriptor(fn=_copy_trigger_kernel, n_workgroups=1,
                            args={"buffer": send_buf, "pattern": pattern,
                                  "tag": tag},
                            name="gputn-copy")

    def register():
        entry = yield from node.host.register_triggered_put(
            tag=tag, threshold=1, buf=send_buf, nbytes=nbytes, target=target,
            remote_addr=remote_addr, wire_tag=wire_tag,
        )
        result.network_posted = node.sim.now
        return entry

    if overlap_post:
        inst = yield from node.host.launch_kernel(desc)
        if post_delay_ns:
            yield node.sim.timeout(post_delay_ns)
        entry = yield from register()
    else:
        entry = yield from register()
        inst = yield from node.host.launch_kernel(desc)
    result.kernel_started = yield inst.started
    result.kernel_finished = yield inst.finished
    handle = node.nic.handle_for(entry)
    result.local_complete = yield handle.local
    return result


# --------------------------------------------------------------------------
# Target flows
# --------------------------------------------------------------------------

def two_sided_target(node: Node, recv_buf: Buffer, nbytes: int, wire_tag: int):
    """CPU/HDN target: post a receive and progress until it completes."""
    handle = node.host.post_recv(wire_tag, recv_buf, nbytes)
    yield from node.host.wait_recv(handle)
    return node.sim.now


def one_sided_target(node: Node, recv_buf: Buffer, nbytes: int, wire_tag: int):
    """GDS/GPU-TN target: poll a flag word the NIC bumps on arrival
    (PGAS-style notification, paper §4.2.5)."""
    flag = node.host.alloc(4, name=f"{node.name}.rxflag")
    node.nic.expose_rx_flag(wire_tag, (flag, 0))
    yield from node.host.poll_flag(flag, at_least=1)
    return node.sim.now


FLOWS = {
    "cpu": (cpu_initiator, two_sided_target),
    "hdn": (hdn_initiator, two_sided_target),
    "gds": (gds_initiator, one_sided_target),
    "gputn": (gputn_initiator, one_sided_target),
}


def get_flow(strategy: str):
    """(initiator, target) generator pair for an evaluated strategy.

    Also resolves the ``gpu-host`` extension flow (Table 1's helper-thread
    class, which the paper discusses but does not simulate -- see
    :mod:`repro.strategies.gpu_host`).
    """
    if strategy == "gpu-host":
        from repro.strategies.gpu_host import gpu_host_initiator

        return gpu_host_initiator, one_sided_target
    if strategy == "gpu-native":
        from repro.strategies.gpu_native import gpu_native_initiator

        return gpu_native_initiator, one_sided_target
    try:
        return FLOWS[strategy]
    except KeyError:
        raise KeyError(
            f"unknown flow {strategy!r}; evaluated strategies: {sorted(FLOWS)}"
        ) from None
