"""GPU Host Networking: the helper-thread strategy class (extension).

The paper compares against this class only qualitatively (§5.1.1): "GPU
Host Networking uses dedicated polling threads on the host to service
messages on behalf of the GPU ... GPU-TN can provide the same
[intra-kernel] performance without requiring dedicated polling threads."

This module makes that comparison quantitative.  The model follows
GPUnet/DCGN/dCUDA:

* the GPU kernel writes its payload to a *bounce buffer*, publishes it at
  system scope and enqueues a request descriptor in a GPU->CPU queue
  (a system-scope store, like the GPU-TN trigger write -- but to memory,
  not to the NIC);
* a dedicated **helper thread** on one CPU core polls the queue; on each
  request it builds the network command packet and posts it to the NIC
  (the full critical-path CPU software stack);
* the helper thread never sleeps -- its polling time is charged to the
  CPU busy counter, which is how the evaluation quantifies Table 1's
  "Service Threads" overhead.

Exports an initiator flow with the same signature as the evaluated flows
so the microbenchmark can run it side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cluster import Node
from repro.gpu.kernel import KernelContext, KernelDescriptor
from repro.memory import Agent, Buffer
from repro.sim import Store

__all__ = ["GpuHostService", "gpu_host_initiator"]


@dataclass
class _Request:
    """One GPU->CPU message-service request."""

    buf: Buffer
    nbytes: int
    target: str
    wire_tag: int
    offset: int = 0
    remote_addr: Optional[int] = None
    handle: Optional[object] = None  # filled by the service


class GpuHostService:
    """A dedicated helper thread servicing GPU message requests."""

    def __init__(self, node: Node):
        self.node = node
        self.queue: Store = Store(node.sim, name=f"{node.name}.gpuhostq")
        self.serviced: List[_Request] = []
        #: CPU time burned by the helper thread (poll + service)
        self.thread_busy_ns = 0
        self._proc = node.sim.spawn(self._thread(), name=f"{node.name}.helper")

    def submit_from_gpu(self, request: _Request) -> None:
        """Called from kernel context once the descriptor store lands."""
        if not self.queue.try_put(request):
            raise RuntimeError("GPU host-networking queue overflow")

    def dedicated_core_ns(self, now: int) -> int:
        """CPU time the dedicated helper core has burned by ``now``.

        A real helper thread spins continuously, so the answer is simply
        the wall time since service start -- this is Table 1's "Service
        Threads" cost made quantitative.  (The simulation itself blocks
        the thread on the queue so the event heap can drain.)
        """
        return now

    def _thread(self):
        """The service loop: detect (one poll period late), build, post."""
        cpu = self.node.config.cpu
        sim = self.node.sim
        while True:
            request = yield self.queue.get()
            # Detection latency: the spinning thread notices the request
            # on its next poll iteration.
            yield sim.timeout(cpu.completion_poll_ns)
            # Service: read + validate descriptor, build packet, post.
            service_ns = cpu.completion_poll_ns + cpu.packet_build_ns + cpu.send_post_ns
            self.thread_busy_ns += service_ns
            self.node.host.stats["busy_ns"] += service_ns
            yield sim.timeout(service_ns)
            if request.remote_addr is not None:
                request.handle = self.node.nic.post_put(
                    request.buf.addr(request.offset), request.nbytes,
                    request.target, request.remote_addr,
                    wire_tag=request.wire_tag)
            else:
                request.handle = self.node.nic.post_put(
                    request.buf.addr(request.offset), request.nbytes,
                    request.target, remote_addr=None,
                    wire_tag=request.wire_tag, kind="send")
            self.serviced.append(request)

    def stop(self) -> None:
        self._proc.kill()


def _bounce_kernel(ctx: KernelContext):
    """The GPU side: fill the bounce buffer, publish, enqueue a request."""
    buf: Buffer = ctx.arg("buffer")
    service: GpuHostService = ctx.arg("service")
    request: _Request = ctx.arg("request")
    payload = np.full(buf.nbytes, ctx.arg("pattern"), dtype=np.uint8)
    ctx.write(buf, payload)
    gpu_cfg = ctx.config.gpu
    # Whole-device streaming rate (see flows._copy_kernel).
    yield ctx.compute(max(gpu_cfg.global_load_ns,
                          int(2 * buf.nbytes / gpu_cfg.stream_bytes_per_ns)))
    yield ctx.barrier()
    yield ctx.fence_release_system(buf)
    # The request descriptor write is a system-scope store, like the
    # GPU-TN trigger, but it lands in a memory queue the CPU must poll.
    yield ctx.compute(ctx.config.gpu.atomic_system_store_ns)
    service.submit_from_gpu(request)


def gpu_host_initiator(node: Node, target: str, send_buf: Buffer, nbytes: int,
                       remote_addr: Optional[int], wire_tag: int,
                       pattern: int = 0xA5,
                       service: Optional[GpuHostService] = None):
    """Microbenchmark initiator for the GPU Host Networking class.

    Returns a FlowResult like the evaluated flows.  The caller may pass a
    shared :class:`GpuHostService`; otherwise one is created (and its
    polling keeps consuming CPU for the rest of the simulation, exactly
    like a real dedicated helper thread).
    """
    from repro.strategies.flows import FlowResult

    result = FlowResult("gpu-host")
    service = service or GpuHostService(node)
    request = _Request(buf=send_buf, nbytes=nbytes, target=target,
                       wire_tag=wire_tag, remote_addr=remote_addr)
    desc = KernelDescriptor(
        fn=_bounce_kernel, n_workgroups=1,
        args={"buffer": send_buf, "pattern": pattern,
              "service": service, "request": request},
        name="gpuhost-copy")
    inst = yield from node.host.launch_kernel(desc)
    result.kernel_started = yield inst.started
    result.kernel_finished = yield inst.finished
    # Wait for the helper to have posted the message.
    while request.handle is None:
        yield node.sim.timeout(node.config.cpu.completion_poll_ns)
    result.network_posted = node.sim.now
    result.local_complete = yield request.handle.local
    result.detail["helper_thread_busy_ns"] = service.thread_busy_ns
    return result
