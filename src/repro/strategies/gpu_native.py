"""GPU Native Networking: the GPU-resident-stack strategy class (extension).

The paper's other non-simulated Table 1 class (§5.1.1): GGAS / GPUrdma /
Oden et al. run the *entire* networking stack on the GPU -- connection
state in scratchpad memory, command-packet construction by (serial,
divergent) kernel code, and a direct GPU->NIC doorbell.  The paper
expects GPU-TN to beat it because "the serial task of creating a network
compatible command packet is offloaded to the CPU".

Model: the kernel itself builds the NIC command packet before ringing
the doorbell.  Packet construction is the same logical work as the CPU's
``packet_build_ns``, but executed by a single GPU work-item at GPU
scalar speed -- GPUs run serial pointer-chasing code far slower than an
OoO CPU core (the model charges the configured slowdown, default 8x,
consistent with the single-lane/looping measurements in the GPUrdma and
Oden et al. studies).  The operation itself is posted as a whole command
(not pre-registered), so the NIC charges full command processing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster import Node
from repro.gpu.kernel import KernelContext, KernelDescriptor
from repro.memory import Buffer

__all__ = ["GPU_SERIAL_SLOWDOWN", "gpu_native_initiator"]

#: How much slower one GPU work-item executes serial stack code than a
#: CPU core (GPUrdma/Oden-style measurements put this at 5-10x).
GPU_SERIAL_SLOWDOWN = 8


def _native_kernel(ctx: KernelContext):
    """Copy payload, then build + post the network command from the GPU."""
    buf: Buffer = ctx.arg("buffer")
    node: Node = ctx.arg("node")
    target: str = ctx.arg("target")
    remote_addr: int = ctx.arg("remote_addr")
    wire_tag: int = ctx.arg("wire_tag")
    out = ctx.desc.args.setdefault("out", {})

    payload = np.full(buf.nbytes, ctx.arg("pattern"), dtype=np.uint8)
    ctx.write(buf, payload)
    gpu_cfg = ctx.config.gpu
    # Whole-device streaming rate (see flows._copy_kernel).
    yield ctx.compute(max(gpu_cfg.global_load_ns,
                          int(2 * buf.nbytes / gpu_cfg.stream_bytes_per_ns)))
    yield ctx.barrier()
    yield ctx.fence_release_system(buf)
    # Serial, divergent packet construction by a single work-item.
    yield ctx.compute(ctx.config.cpu.packet_build_ns * GPU_SERIAL_SLOWDOWN)
    # Ring the NIC directly (same MMIO cost as the GPU-TN trigger).
    yield ctx.compute(ctx.config.gpu.atomic_system_store_ns)
    out["handle"] = node.nic.post_put(buf.addr(), ctx.arg("nbytes"), target,
                                      remote_addr, wire_tag=wire_tag)
    out["posted_at"] = ctx.sim.now


def gpu_native_initiator(node: Node, target: str, send_buf: Buffer, nbytes: int,
                         remote_addr: Optional[int], wire_tag: int,
                         pattern: int = 0xA5):
    """Microbenchmark initiator for the GPU Native Networking class."""
    from repro.strategies.flows import FlowResult

    if remote_addr is None:
        raise ValueError("gpu-native flow is one-sided; remote_addr required")
    result = FlowResult("gpu-native")
    desc = KernelDescriptor(
        fn=_native_kernel, n_workgroups=1,
        args={"buffer": send_buf, "pattern": pattern, "node": node,
              "target": target, "remote_addr": remote_addr,
              "wire_tag": wire_tag, "nbytes": nbytes},
        name="gpunative-copy")
    inst = yield from node.host.launch_kernel(desc)
    result.kernel_started = yield inst.started
    result.kernel_finished = yield inst.finished
    out = desc.args["out"]
    result.network_posted = out["posted_at"]
    result.local_complete = yield out["handle"].local
    return result
