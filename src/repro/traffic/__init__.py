"""Traffic generation: seeded background load for congestion studies.

The fabric and transport answer "how fast is GPU-TN on an idle network";
this package answers "and under load?".  It provides:

* :mod:`~repro.traffic.generators` -- Poisson, bursty on-off,
  permutation and incast :class:`TrafficPattern` generators producing
  deterministic :class:`TrafficEvent` lists from named
  :class:`repro.sim.rng.RandomStreams` substreams;
* :mod:`~repro.traffic.traces` -- synthetic LLM-training (synchronized
  periodic ring-allreduce bursts) and MoE-inference (randomized
  alltoall fan-out) communication traces;
* :mod:`~repro.traffic.background` -- :func:`attach_traffic` /
  :class:`BackgroundLoad`, replaying any event list onto a live
  :class:`repro.cluster.Cluster` alongside a foreground workload.

The congestion study (:mod:`repro.apps.congestion`, ``repro
congestion``) composes these with the switch-queue models
(:mod:`repro.net.queues`) and the selective-repeat/paced transport
(:mod:`repro.nic.transport`).
"""

from repro.traffic.background import BackgroundLoad, attach_traffic
from repro.traffic.generators import (IncastTraffic, OnOffTraffic,
                                      PermutationTraffic, PoissonTraffic,
                                      TrafficEvent, TrafficPattern)
from repro.traffic.traces import llm_training_trace, moe_inference_trace

__all__ = [
    "BackgroundLoad",
    "IncastTraffic",
    "OnOffTraffic",
    "PermutationTraffic",
    "PoissonTraffic",
    "TrafficEvent",
    "TrafficPattern",
    "attach_traffic",
    "llm_training_trace",
    "moe_inference_trace",
]
