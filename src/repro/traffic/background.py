"""Attach generated traffic to a live cluster as background load.

:class:`BackgroundLoad` replays a :class:`~repro.traffic.generators.
TrafficEvent` list onto a :class:`repro.cluster.Cluster`: one driver
process walks the time-sorted events and posts each as a one-sided put
from the source node's NIC into a per-destination scratch buffer.  The
puts ride whatever the cluster has armed -- the reliable transport
sequences them into the same per-peer flows as foreground traffic, the
switch queues see their bytes, fault plans can drop them -- which is the
point: the foreground workload under study competes with this load for
every port and window slot.

Completions are counted via event callbacks (no per-message waiter
processes): ``stats`` tracks offered/delivered/failed so studies can
report background goodput next to the foreground numbers, and a
transport give-up (:class:`repro.nic.transport.TransportError`) on a
background flow is recorded, not raised -- background load must never
crash the experiment it decorates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.sim.rng import RandomStreams
from repro.traffic.generators import TrafficEvent, TrafficPattern

__all__ = ["BackgroundLoad", "attach_traffic"]


class BackgroundLoad:
    """A replayable background-traffic attachment (see module docstring)."""

    def __init__(self, cluster, events: Iterable[TrafficEvent]):
        self.cluster = cluster
        self.events: List[TrafficEvent] = sorted(
            events, key=lambda e: (e.at_ns, e.src, e.dst, e.nbytes))
        n = len(cluster.nodes)
        for ev in self.events:
            if not (0 <= ev.src < n and 0 <= ev.dst < n):
                raise ValueError(
                    f"traffic event rank out of range for {n} nodes: {ev}")
        self.stats: Dict[str, int] = {
            "offered": len(self.events), "sent": 0,
            "delivered": 0, "failed": 0, "bytes_delivered": 0,
        }
        # One scratch buffer pair per node, sized for the largest event
        # touching it; registered for RDMA like any app buffer.
        max_out = [0] * n
        max_in = [0] * n
        for ev in self.events:
            max_out[ev.src] = max(max_out[ev.src], ev.nbytes)
            max_in[ev.dst] = max(max_in[ev.dst], ev.nbytes)
        self._send_bufs = [
            cluster.nodes[i].host.alloc(nb, name=f"bg-send{i}") if nb else None
            for i, nb in enumerate(max_out)]
        self._recv_bufs = [
            cluster.nodes[i].host.alloc(nb, name=f"bg-recv{i}") if nb else None
            for i, nb in enumerate(max_in)]
        self._started = False

    def start(self) -> "BackgroundLoad":
        """Spawn the driver process (idempotent); call before ``run``."""
        if not self._started:
            self._started = True
            if self.events:
                self.cluster.spawn(self._drive(), name="background-traffic")
        return self

    def _drive(self):
        sim = self.cluster.sim
        nodes = self.cluster.nodes
        stats = self.stats

        def _done(ev) -> None:
            if ev.ok:
                stats["delivered"] += 1
                stats["bytes_delivered"] += ev.value.message.nbytes
            else:
                # Transport gave up on this flow; the experiment decides
                # what a dead background flow means -- we just count it.
                stats["failed"] += 1

        for ev in self.events:
            if ev.at_ns > sim.now:
                yield sim.timeout(ev.at_ns - sim.now)
            src = nodes[ev.src]
            handle = src.nic.post_put(
                local_addr=self._send_bufs[ev.src].addr(),
                nbytes=ev.nbytes,
                target=nodes[ev.dst].name,
                remote_addr=self._recv_bufs[ev.dst].addr(),
            )
            stats["sent"] += 1
            handle.delivered.callbacks.append(_done)

    def counters(self) -> Dict[str, int]:
        """Non-zero counters, prefixed for RunRecord merging."""
        return {f"traffic_{k}": v for k, v in self.stats.items() if v}


def attach_traffic(cluster,
                   traffic: Union[TrafficPattern, Iterable[TrafficEvent]],
                   horizon_ns: Optional[int] = None,
                   streams: Optional[RandomStreams] = None) -> BackgroundLoad:
    """Generate (if needed) and arm background traffic on ``cluster``.

    ``traffic`` is either a :class:`TrafficPattern` -- expanded over
    ``horizon_ns`` with draws from ``streams`` (default: a
    :class:`RandomStreams` seeded from the cluster's config) -- or an
    already-built event list (e.g. a :mod:`repro.traffic.traces` trace).
    Returns the started :class:`BackgroundLoad`.
    """
    if isinstance(traffic, TrafficPattern):
        if horizon_ns is None:
            raise ValueError("a TrafficPattern needs horizon_ns to expand")
        if streams is None:
            streams = RandomStreams(cluster.config.seed)
        events = traffic.events(len(cluster.nodes), horizon_ns, streams)
    else:
        events = list(traffic)
    return BackgroundLoad(cluster, events).start()
