"""Seeded synthetic traffic generators.

A generator is a :class:`TrafficPattern`: given a cluster size, a time
horizon and a :class:`repro.sim.rng.RandomStreams`, it produces a
deterministic list of :class:`TrafficEvent` -- (time, source rank,
destination rank, bytes) tuples -- that :class:`repro.traffic.
BackgroundLoad` replays onto a live cluster.

Determinism contract: every random draw comes from a named substream
(``traffic.<pattern>.n<rank>`` for per-source processes,
``traffic.<pattern>.shape`` for global structure like the permutation),
so patterns compose -- attaching a second pattern, adding nodes, or
arming faults never shifts another pattern's draws.  The same
``(pattern, n_nodes, horizon, seed)`` always yields the same event list.

Ranks are integers ``0..n_nodes-1``; the background layer maps them to
``node<i>`` names.  Times are absolute nanoseconds from simulation
start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.rng import RandomStreams

__all__ = ["IncastTraffic", "OnOffTraffic", "PermutationTraffic",
           "PoissonTraffic", "TrafficEvent", "TrafficPattern"]


@dataclass(frozen=True, slots=True)
class TrafficEvent:
    """One background message: ``src`` rank sends ``nbytes`` to ``dst``."""

    at_ns: int
    src: int
    dst: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"negative event time {self.at_ns}")
        if self.src == self.dst:
            raise ValueError(f"self-directed traffic event (rank {self.src})")
        if self.nbytes <= 0:
            raise ValueError(f"non-positive event size {self.nbytes}")


class TrafficPattern:
    """Base class: a named, seeded traffic event generator."""

    name = "pattern"

    def events(self, n_nodes: int, horizon_ns: int,
               streams: RandomStreams) -> List[TrafficEvent]:
        raise NotImplementedError

    def _check(self, n_nodes: int, horizon_ns: int) -> None:
        if n_nodes < 2:
            raise ValueError("traffic needs >= 2 nodes")
        if horizon_ns <= 0:
            raise ValueError("traffic horizon must be positive")


class PoissonTraffic(TrafficPattern):
    """Memoryless background load: per source, exponential inter-arrival
    gaps with mean ``mean_gap_ns``, each message to a uniformly random
    other node."""

    name = "poisson"

    def __init__(self, mean_gap_ns: int, nbytes: int):
        if mean_gap_ns <= 0 or nbytes <= 0:
            raise ValueError("mean_gap_ns and nbytes must be positive")
        self.mean_gap_ns = mean_gap_ns
        self.nbytes = nbytes

    def events(self, n_nodes: int, horizon_ns: int,
               streams: RandomStreams) -> List[TrafficEvent]:
        self._check(n_nodes, horizon_ns)
        out: List[TrafficEvent] = []
        for src in range(n_nodes):
            rng = streams.stream(f"traffic.{self.name}.n{src}")
            t = 0
            while True:
                t += max(1, int(rng.exponential(self.mean_gap_ns)))
                if t >= horizon_ns:
                    break
                dst = int(rng.integers(0, n_nodes - 1))
                if dst >= src:
                    dst += 1  # uniform over the *other* nodes
                out.append(TrafficEvent(t, src, dst, self.nbytes))
        return out


class OnOffTraffic(TrafficPattern):
    """Bursty on-off load: each source alternates exponentially-sized ON
    bursts (back-to-back messages every ``gap_ns``) and OFF silences;
    each burst targets one random node (flow locality)."""

    name = "onoff"

    def __init__(self, on_ns: int, off_ns: int, gap_ns: int, nbytes: int):
        if min(on_ns, off_ns, gap_ns, nbytes) <= 0:
            raise ValueError("on_ns, off_ns, gap_ns and nbytes must be positive")
        self.on_ns = on_ns
        self.off_ns = off_ns
        self.gap_ns = gap_ns
        self.nbytes = nbytes

    def events(self, n_nodes: int, horizon_ns: int,
               streams: RandomStreams) -> List[TrafficEvent]:
        self._check(n_nodes, horizon_ns)
        out: List[TrafficEvent] = []
        for src in range(n_nodes):
            rng = streams.stream(f"traffic.{self.name}.n{src}")
            # Random initial phase so sources do not burst in lockstep.
            t = int(rng.integers(0, self.on_ns + self.off_ns))
            while t < horizon_ns:
                burst_end = t + max(1, int(rng.exponential(self.on_ns)))
                dst = int(rng.integers(0, n_nodes - 1))
                if dst >= src:
                    dst += 1
                while t < burst_end and t < horizon_ns:
                    out.append(TrafficEvent(t, src, dst, self.nbytes))
                    t += self.gap_ns
                t = burst_end + max(1, int(rng.exponential(self.off_ns)))
        return out


class PermutationTraffic(TrafficPattern):
    """Classic permutation stress: a fixed random derangement-ish mapping
    ``src -> perm[src]``; every source streams to its partner at a
    constant ``gap_ns`` cadence.  Exercises path diversity: on fat trees
    this drives distinct core links with no endpoint contention."""

    name = "permutation"

    def __init__(self, gap_ns: int, nbytes: int):
        if gap_ns <= 0 or nbytes <= 0:
            raise ValueError("gap_ns and nbytes must be positive")
        self.gap_ns = gap_ns
        self.nbytes = nbytes

    def events(self, n_nodes: int, horizon_ns: int,
               streams: RandomStreams) -> List[TrafficEvent]:
        self._check(n_nodes, horizon_ns)
        rng = streams.stream(f"traffic.{self.name}.shape")
        perm = list(rng.permutation(n_nodes))
        # Rotate any fixed point onto its successor (keep it a total map
        # with no self-sends; determinism preserved).
        for i in range(n_nodes):
            if perm[i] == i:
                j = (i + 1) % n_nodes
                perm[i], perm[j] = perm[j], perm[i]
        out: List[TrafficEvent] = []
        for src in range(n_nodes):
            dst = int(perm[src])
            if dst == src:  # pragma: no cover - defensive (swap fixed it)
                dst = (src + 1) % n_nodes
            t = self.gap_ns
            while t < horizon_ns:
                out.append(TrafficEvent(t, src, dst, self.nbytes))
                t += self.gap_ns
        return out


class IncastTraffic(TrafficPattern):
    """The killer pattern: every ``period_ns``, ``fan`` random sources
    all fire at one ``sink`` rank simultaneously -- the many-to-one
    burst that overruns the sink's last-hop queue."""

    name = "incast"

    def __init__(self, period_ns: int, nbytes: int, sink: int = 0,
                 fan: int = 0):
        if period_ns <= 0 or nbytes <= 0:
            raise ValueError("period_ns and nbytes must be positive")
        if fan < 0:
            raise ValueError("fan must be >= 0 (0 = all other nodes)")
        self.period_ns = period_ns
        self.nbytes = nbytes
        self.sink = sink
        self.fan = fan

    def events(self, n_nodes: int, horizon_ns: int,
               streams: RandomStreams) -> List[TrafficEvent]:
        self._check(n_nodes, horizon_ns)
        if not 0 <= self.sink < n_nodes:
            raise ValueError(f"incast sink {self.sink} outside 0..{n_nodes - 1}")
        others = [r for r in range(n_nodes) if r != self.sink]
        fan = min(self.fan, len(others)) or len(others)
        rng = streams.stream(f"traffic.{self.name}.shape")
        out: List[TrafficEvent] = []
        t = self.period_ns
        while t < horizon_ns:
            if fan == len(others):
                srcs = others
            else:
                srcs = sorted(int(s) for s in
                              rng.choice(others, size=fan, replace=False))
            for src in srcs:
                out.append(TrafficEvent(t, src, self.sink, self.nbytes))
            t += self.period_ns
        return out
