"""Synthetic deep-learning communication traces.

Two workload shapes dominate modern cluster traffic, and both stress the
fabric very differently from random background load:

* **LLM training** -- compute-quiet phases punctuated by dense,
  *synchronized* gradient allreduce bursts every optimizer step: every
  node talks at once, in a ring, for a few microseconds.  The burst
  synchrony is the point: queues that look empty on average overflow at
  step boundaries.
* **MoE inference** -- each token dispatch fans out activations from
  every node to its top-``k`` expert hosts (an irregular, randomized
  alltoall) and gathers them back, creating rotating incast hotspots at
  popular experts.

Both traces return plain :class:`~repro.traffic.generators.TrafficEvent`
lists (same contract as the generators) so they can be attached as
background load or studied as the foreground pattern.  LLM training is
draw-free (fully periodic); MoE expert choices come from per-rank
``traffic.moe.n<rank>`` substreams.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.rng import RandomStreams
from repro.traffic.generators import TrafficEvent

__all__ = ["llm_training_trace", "moe_inference_trace"]


def llm_training_trace(n_nodes: int, horizon_ns: int, step_ns: int,
                       nbytes: int, rounds: int = 0,
                       chunk_gap_ns: int = 200) -> List[TrafficEvent]:
    """Periodic ring-allreduce gradient bursts.

    Every ``step_ns`` (one optimizer step), each node streams ``rounds``
    chunks of ``nbytes`` to its ring successor back to back (``rounds``
    defaults to ``n_nodes - 1``, one reduce-scatter pass), chunks spaced
    ``chunk_gap_ns`` apart.  Deterministic: no random draws.
    """
    if n_nodes < 2:
        raise ValueError("trace needs >= 2 nodes")
    if min(horizon_ns, step_ns, nbytes, chunk_gap_ns) <= 0:
        raise ValueError("horizon, step, nbytes and chunk gap must be positive")
    rounds = rounds or (n_nodes - 1)
    out: List[TrafficEvent] = []
    t = step_ns
    while t < horizon_ns:
        for r in range(rounds):
            at = t + r * chunk_gap_ns
            if at >= horizon_ns:
                break
            for src in range(n_nodes):
                out.append(TrafficEvent(at, src, (src + 1) % n_nodes, nbytes))
        t += step_ns
    return out


def moe_inference_trace(n_nodes: int, horizon_ns: int, dispatch_ns: int,
                        nbytes: int, experts_per_token: int = 2,
                        streams: Optional[RandomStreams] = None,
                        seed: int = 0) -> List[TrafficEvent]:
    """Mixture-of-experts dispatch fan-out.

    Every ``dispatch_ns``, each node routes its activations to
    ``experts_per_token`` distinct random expert hosts (never itself).
    Expert choices are drawn per source rank from dedicated
    ``traffic.moe.n<rank>`` substreams, so the hotspot rotation is
    reproducible and independent of other armed randomness.
    """
    if n_nodes < 2:
        raise ValueError("trace needs >= 2 nodes")
    if min(horizon_ns, dispatch_ns, nbytes) <= 0:
        raise ValueError("horizon, dispatch period and nbytes must be positive")
    k = min(experts_per_token, n_nodes - 1)
    if k < 1:
        raise ValueError("experts_per_token must be >= 1")
    streams = streams or RandomStreams(seed)
    rngs = [streams.stream(f"traffic.moe.n{src}") for src in range(n_nodes)]
    out: List[TrafficEvent] = []
    t = dispatch_ns
    while t < horizon_ns:
        for src in range(n_nodes):
            others = [r for r in range(n_nodes) if r != src]
            experts = rngs[src].choice(others, size=k, replace=False)
            for dst in sorted(int(e) for e in experts):
                out.append(TrafficEvent(t, src, dst, nbytes))
        t += dispatch_ns
    return out
