"""Invariant checking and schedule fuzzing (``repro validate``).

DESIGN.md §6 lists the correctness invariants of the reproduction; this
package enforces them at runtime and hunts for schedules that break them:

* :mod:`~repro.validate.violations` -- structured
  :class:`InvariantViolation` errors carrying time, node, details and the
  offending trace context;
* :mod:`~repro.validate.monitors` -- O(1)-per-event runtime monitors for
  the event clock (inv. 1), exactly-once trigger firing (inv. 2), fabric
  FIFO/bandwidth ordering (inv. 6) and send-buffer completion safety
  (inv. 7), attached via hooks on the simulator, NICs and fabric;
* :mod:`~repro.validate.fuzz` -- a deterministic schedule fuzzer that
  perturbs timing knobs and event tie-breaks per seed and replays the
  microbench/Jacobi/Allreduce flows with all monitors armed, fanned out
  through :class:`~repro.runtime.sweep.Sweep` (``repro validate --jobs``).
"""

from repro.validate.fuzz import (
    FUZZ_WORKLOADS,
    FuzzCase,
    FuzzReport,
    ValidateExperiment,
    apply_knobs,
    fuzz_case,
    run_campaign,
)
from repro.validate.monitors import (
    ExactlyOnceTriggerMonitor,
    FabricOrderMonitor,
    Monitor,
    MonotoneClockMonitor,
    PacketConservationMonitor,
    ReliableDeliveryMonitor,
    SendBufferSafetyMonitor,
    attach_monitors,
    default_monitors,
)
from repro.validate.violations import InvariantViolation

__all__ = [
    "ExactlyOnceTriggerMonitor",
    "FUZZ_WORKLOADS",
    "FabricOrderMonitor",
    "FuzzCase",
    "FuzzReport",
    "InvariantViolation",
    "Monitor",
    "MonotoneClockMonitor",
    "PacketConservationMonitor",
    "ReliableDeliveryMonitor",
    "SendBufferSafetyMonitor",
    "ValidateExperiment",
    "apply_knobs",
    "attach_monitors",
    "default_monitors",
    "fuzz_case",
    "run_campaign",
]
