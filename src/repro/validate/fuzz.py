"""Deterministic schedule fuzzing over the paper's workloads.

The paper's relaxed-synchronization claim (§3.2) is an *ordering*
property: it must hold for every legal interleaving of CPU registration,
GPU trigger writes and NIC processing, not just the one the default
timing constants produce.  The fuzzer explores that space directly:

* every seed maps -- via :class:`~repro.sim.rng.RandomStreams`, so the
  mapping is process- and platform-stable -- to one **knob vector**
  (doorbell/command/DMA/completion latencies, link/switch latencies,
  kernel launch/teardown costs, CPU-post-vs-GPU-trigger delay) plus a
  **tie-break seed** that perturbs the ordering of same-time,
  same-priority events inside the engine;
* the workload (microbench ping, Jacobi halo exchange, ring Allreduce)
  runs under that schedule with every :mod:`repro.validate.monitors`
  invariant monitor armed;
* the outcome is a normal :class:`~repro.runtime.record.RunRecord`, so
  campaigns fan out over the existing :class:`~repro.runtime.sweep.Sweep`
  process pool (``--jobs``) and any failure is replayable from its
  ``(workload, seed)`` point alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.runtime.experiment import Experiment
from repro.runtime.record import RunRecord
from repro.runtime.sweep import Sweep
from repro.sim.rng import RandomStreams
from repro.validate.monitors import attach_monitors
from repro.validate.violations import InvariantViolation

__all__ = [
    "FUZZ_WORKLOADS",
    "FuzzCase",
    "FuzzReport",
    "ValidateExperiment",
    "apply_knobs",
    "fuzz_case",
    "run_campaign",
]

#: Workloads a fuzz campaign can drive, in default order.
FUZZ_WORKLOADS: Tuple[str, ...] = ("microbench", "jacobi", "allreduce")


@dataclass(frozen=True)
class FuzzCase:
    """Everything one seed determines: the replay unit of a campaign."""

    workload: str
    seed: int
    inner_params: Dict[str, Any]
    knobs: Dict[str, int]
    tiebreak_seed: int


def _workload_experiment(workload: str) -> Experiment:
    # Imported lazily: the apps import repro.runtime which must not
    # circularly import repro.validate at module load.
    if workload == "microbench":
        from repro.apps.microbench import MicrobenchExperiment
        return MicrobenchExperiment()
    if workload == "jacobi":
        from repro.apps.jacobi import JacobiExperiment
        return JacobiExperiment()
    if workload == "allreduce":
        from repro.collectives import AllreduceExperiment
        return AllreduceExperiment()
    raise KeyError(f"unknown fuzz workload {workload!r}; "
                   f"choose from {list(FUZZ_WORKLOADS)}")


def fuzz_case(workload: str, seed: int) -> FuzzCase:
    """The deterministic ``seed -> (knob vector, workload params)`` map."""
    _workload_experiment(workload)  # validate the name early
    rng = RandomStreams(seed).stream(f"validate.{workload}")
    knobs = {
        "doorbell_mmio_ns": int(rng.integers(25, 400)),
        "command_process_ns": int(rng.integers(20, 300)),
        "dma_setup_ns": int(rng.integers(20, 300)),
        "completion_write_ns": int(rng.integers(20, 300)),
        "link_latency_ns": int(rng.integers(20, 300)),
        "switch_latency_ns": int(rng.integers(20, 300)),
        "launch_ns": int(rng.integers(200, 4000)),
        "teardown_ns": int(rng.integers(200, 4000)),
    }
    tiebreak_seed = int(rng.integers(0, 2**31))

    if workload == "microbench":
        # GPU-TN is over-weighted: its trigger path is what §3.2 is about.
        strategy = str(rng.choice(["cpu", "hdn", "gds", "gputn", "gputn"]))
        inner: Dict[str, Any] = {
            "strategy": strategy,
            "nbytes": int(rng.choice([1, 32, 64, 256, 1024, 4096])),
            "overlap_post": False,
            "post_delay_ns": 0,
        }
        if strategy == "gputn":
            # The CPU-post-vs-GPU-trigger race: post after launch, with a
            # fuzzed delay, exercising the placeholder path of §3.2.
            inner["overlap_post"] = bool(rng.integers(0, 2))
            if inner["overlap_post"]:
                inner["post_delay_ns"] = int(rng.integers(0, 4000))
    elif workload == "jacobi":
        px, py = (int(v) for v in rng.choice([(2, 1), (1, 2), (2, 2)]))
        inner = {
            "strategy": str(rng.choice(["cpu", "hdn", "gds", "gputn",
                                        "gputn-overlap"])),
            "n": int(rng.choice([8, 16, 24])),
            "px": px, "py": py,
            "iters": int(rng.integers(1, 3)),
            "seed": int(rng.integers(0, 1000)),
        }
    else:  # allreduce
        inner = {
            "strategy": str(rng.choice(["cpu", "hdn", "gds", "gputn"])),
            "n_nodes": int(rng.integers(2, 5)),
            "nbytes": int(rng.choice([256, 1024, 4096, 16384])),
            "seed": int(rng.integers(0, 1000)),
        }
    return FuzzCase(workload=workload, seed=seed, inner_params=inner,
                    knobs=knobs, tiebreak_seed=tiebreak_seed)


def apply_knobs(config: SystemConfig, knobs: Dict[str, int]) -> SystemConfig:
    """Overlay one knob vector onto a base :class:`SystemConfig`."""
    return config.with_(
        nic=replace(config.nic,
                    doorbell_mmio_ns=knobs["doorbell_mmio_ns"],
                    command_process_ns=knobs["command_process_ns"],
                    dma_setup_ns=knobs["dma_setup_ns"],
                    completion_write_ns=knobs["completion_write_ns"]),
        network=replace(config.network,
                        link_latency_ns=knobs["link_latency_ns"],
                        switch_latency_ns=knobs["switch_latency_ns"]),
        kernel=replace(config.kernel,
                       launch_ns=knobs["launch_ns"],
                       teardown_ns=knobs["teardown_ns"]),
    )


class ValidateExperiment(Experiment):
    """One fuzz case as a runtime experiment.

    Parameters are just ``{"workload", "seed"}`` -- everything else is
    derived deterministically by :func:`fuzz_case` -- so campaigns are
    ordinary :class:`~repro.runtime.sweep.Sweep` grids and parallel runs
    are byte-identical to serial ones.
    """

    name = "validate"
    defaults = {"workload": "microbench", "seed": 0}

    def configure(self, params: Dict[str, Any],
                  config: SystemConfig) -> SystemConfig:
        case = fuzz_case(params["workload"], params["seed"])
        return apply_knobs(config, case.knobs)

    def trace_default(self, params: Dict[str, Any]) -> bool:
        # Violations snapshot the tracer tail as context; the fuzz
        # workloads are small enough that tracing is cheap.
        return True

    def build_cluster(self, params: Dict[str, Any], config: SystemConfig,
                      trace: bool):
        case = fuzz_case(params["workload"], params["seed"])
        inner = _workload_experiment(case.workload)
        cluster = inner.build_cluster(case.inner_params, config, trace)
        cluster.sim.seed_tiebreaks(case.tiebreak_seed)
        return cluster

    def setup(self, cluster, params: Dict[str, Any]) -> Dict[str, Any]:
        case = fuzz_case(params["workload"], params["seed"])
        inner = _workload_experiment(case.workload)
        monitors = attach_monitors(cluster)
        inner_ctx = inner.setup(cluster, case.inner_params)
        # The base template's post-run process check is bypassed ("procs"
        # stays empty): a failed flow must become a structured case
        # failure in the campaign report, not a crashed worker.
        return {"case": case, "inner": inner, "inner_ctx": inner_ctx,
                "monitors": monitors, "procs": []}

    def drive(self, cluster, ctx: Dict[str, Any],
              params: Dict[str, Any]) -> None:
        try:
            cluster.run()
            for monitor in ctx["monitors"]:
                monitor.finalize()
        except InvariantViolation as violation:
            ctx["violation"] = violation
        except Exception as exc:  # a crash is a finding too, with a replay seed
            ctx["crash"] = repr(exc)

    def finish(self, cluster, ctx: Dict[str, Any], params: Dict[str, Any]):
        case: FuzzCase = ctx["case"]
        violation: Optional[InvariantViolation] = ctx.get("violation")
        crash: Optional[str] = ctx.get("crash")
        metrics: Dict[str, Any] = {
            "workload": case.workload,
            "seed": case.seed,
            "inner_params": dict(case.inner_params),
            "knobs": dict(case.knobs),
            "tiebreak_seed": case.tiebreak_seed,
            "sim_end_ns": cluster.sim.now,
            "violation": violation.to_dict() if violation else None,
            "crash": crash,
            "app_ok": False,
        }
        procs = ctx["inner_ctx"].get("procs", ())
        if violation is None and crash is None:
            failed = [p for p in procs if p.processed and not p.ok]
            unfinished = [p for p in procs if not p.processed]
            if failed:
                metrics["crash"] = crash = repr(failed[0].value)
            elif unfinished:
                metrics["crash"] = crash = (
                    f"{len(unfinished)} flow(s) never finished (deadlock?)")
            else:
                inner_metrics, _ = ctx["inner"].finish(
                    cluster, ctx["inner_ctx"], case.inner_params)
                metrics["app_ok"] = _app_ok(inner_metrics)
        hazards = cluster.total_hazards()
        metrics["ok"] = bool(violation is None and crash is None
                             and metrics["app_ok"] and hazards == 0)
        return metrics, violation

    def execute(self, params=None, config=None, trace=None, *,
                observers=None, checkpoint=None):
        # Fuzz records must stay lean: a campaign is hundreds of runs, so
        # drop the per-run span table the tracer accumulated (the tracer
        # itself stays on for violation context).
        execution = super().execute(params, config, trace,
                                    observers=observers,
                                    checkpoint=checkpoint)
        execution.record.spans = ()
        return execution


def _app_ok(inner_metrics: Dict[str, Any]) -> bool:
    """Application-level correctness, from whichever flag the workload
    reports (payload pattern, Allreduce data check, grid digest)."""
    for key in ("payload_ok", "correct"):
        if key in inner_metrics:
            return bool(inner_metrics[key])
    return "grid_sha256" in inner_metrics


@dataclass
class FuzzReport:
    """Outcome of one campaign: per-case records plus failure rollups."""

    records: List[RunRecord] = field(default_factory=list)
    #: ``{"hits", "misses"}`` of the campaign's ResultCache, or ``None``
    #: when the campaign ran uncached.
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def failures(self) -> List[RunRecord]:
        return [r for r in self.records if not r.metrics["ok"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_workload(self) -> Dict[str, Tuple[int, int]]:
        """``workload -> (passed, total)``."""
        out: Dict[str, Tuple[int, int]] = {}
        for r in self.records:
            w = r.metrics["workload"]
            passed, total = out.get(w, (0, 0))
            out[w] = (passed + (1 if r.metrics["ok"] else 0), total + 1)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON report: summary plus one row per case (spans excluded)."""
        return {
            "ok": self.ok,
            "total": self.total,
            "cache": self.cache_stats,
            "by_workload": {w: {"passed": p, "total": t}
                            for w, (p, t) in sorted(self.by_workload().items())},
            "cases": [{
                "workload": r.metrics["workload"],
                "seed": r.metrics["seed"],
                "ok": r.metrics["ok"],
                "strategy": r.metrics["inner_params"].get("strategy"),
                "hazards": r.hazards,
                "violation": r.metrics["violation"],
                "crash": r.metrics["crash"],
                "knobs": r.metrics["knobs"],
            } for r in self.records],
        }


def run_campaign(workloads: Sequence[str] = FUZZ_WORKLOADS,
                 seeds: int = 100, seed_start: int = 0, jobs: int = 1,
                 config: Optional[SystemConfig] = None,
                 fail_fast: bool = False, cache: Optional[Any] = None,
                 store: Optional[Any] = None,
                 progress: Optional[Any] = None,
                 checkpoint: Optional[Any] = None,
                 listen: Optional[Any] = None, priority: int = 0,
                 window: Optional[int] = None) -> FuzzReport:
    """Run ``seeds`` fuzz cases per workload, all monitors armed.

    The campaign is one :class:`repro.service.Job`: pass ``store`` (a
    :class:`~repro.service.store.JobStore` or path) to journal it --
    killing the campaign then resuming re-runs only incomplete cases --
    and ``cache`` to reuse case records across campaigns.  ``progress``
    receives one :class:`~repro.service.job.PointDone` per finished case.
    With ``fail_fast`` the first failing case cancels the job
    cooperatively: no new cases are dispatched, in-flight cases still
    finish, so parallel results stay deterministic.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    from repro.service.backends import as_result_cache
    from repro.service.job import Job

    cache = as_result_cache(cache)
    points = [{"workload": w, "seed": s}
              for w in workloads
              for s in range(seed_start, seed_start + seeds)]
    job = Job.from_sweep(Sweep(ValidateExperiment(), points=points),
                         config=config, cache=cache, store=store,
                         checkpoint=checkpoint, priority=priority)
    if listen is not None:
        host, port = job.listen(listen)
        print(f"job {job.id} listening on {host}:{port} -- join with: "
              f"python -m repro worker serve --connect {host}:{port}",
              flush=True)

    def on_point(event) -> None:
        if progress is not None:
            progress(event)
        if fail_fast and not event.record.metrics["ok"]:
            job.cancel()

    records = job.run(jobs=jobs, progress=on_point, window=window)
    return FuzzReport(records=[r for r in records if r is not None],
                      cache_stats=cache.stats() if cache is not None else None)
