"""Runtime invariant monitors (DESIGN.md §6, enforced live).

Each monitor attaches to the simulator/NIC/fabric hook points
(:meth:`repro.sim.Simulator.add_step_probe`,
:attr:`repro.nic.triggered.TriggerList.observers`,
:attr:`repro.net.fabric.Fabric.probes`, :attr:`repro.nic.Nic.probes`)
and performs an O(1) check per observed event, raising a structured
:class:`~repro.validate.violations.InvariantViolation` the moment an
invariant breaks -- the offending schedule is still on the heap and the
tracer context rides along in the violation.

Monitors are deliberately independent of the strategies under test: they
watch the hardware models, not the flows, so any workload (microbench,
Jacobi, Allreduce, collectives) runs under the same monitor set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.validate.violations import InvariantViolation, trace_context

__all__ = [
    "ExactlyOnceTriggerMonitor",
    "FabricOrderMonitor",
    "Monitor",
    "MonotoneClockMonitor",
    "PacketConservationMonitor",
    "ReliableDeliveryMonitor",
    "SendBufferSafetyMonitor",
    "attach_monitors",
    "default_monitors",
]


def _nics_of(cluster) -> List[Any]:
    """The NICs of a :class:`~repro.cluster.Cluster` or of the leaner
    NIC-testbed harness the substrate tests use (``nics`` mapping)."""
    nodes = getattr(cluster, "nodes", None)
    if nodes and hasattr(nodes[0], "nic"):
        return [n.nic for n in nodes]
    nics = getattr(cluster, "nics", None)
    if nics:
        return list(nics.values())
    return []


class Monitor:
    """Base class: one invariant, attached to one cluster at a time."""

    #: DESIGN.md §6 invariant identifier, e.g. ``"event-clock"``.
    invariant: str = "invariant"

    def __init__(self) -> None:
        self._tracer = None

    # ----------------------------------------------------------------- wiring
    def attach(self, cluster) -> None:
        """Subscribe to the cluster's hook points (subclasses extend)."""
        self._tracer = getattr(cluster, "tracer", None)

    def finalize(self) -> None:
        """End-of-run checks (e.g. every met threshold actually fired)."""

    # ------------------------------------------------------------- reporting
    def violation(self, message: str, *, time: Optional[int] = None,
                  node: Optional[str] = None, **details: Any) -> None:
        raise InvariantViolation(
            self.invariant, message, time=time, node=node, details=details,
            context=trace_context(self._tracer))


class MonotoneClockMonitor(Monitor):
    """Invariant 1: events pop in non-decreasing time, and the FIFO
    tie-break is stable -- consecutive pops at the same ``(time,
    priority, tiebreak)`` must come out in true insertion order.  The
    check uses the insertion counter the scheduler stamps on every event
    (``Event._sched_seq``), not the heap tuple, so an engine that drops
    or inverts its tie-break key is caught even if its reported keys look
    self-consistent."""

    invariant = "event-clock"

    def __init__(self) -> None:
        super().__init__()
        self._last_pop: Optional[Tuple[int, int, int, int]] = None

    def attach(self, cluster) -> None:
        super().attach(cluster)
        cluster.sim.add_step_probe(self._on_step)

    def _on_step(self, time: int, priority: int, tiebreak: int, seq: int,
                 event) -> None:
        sched_seq = getattr(event, "_sched_seq", 0)
        last = self._last_pop
        if last is not None:
            if time < last[0]:
                self.violation(
                    f"event clock went backwards: t={time} after t={last[0]}",
                    time=time, previous_time=last[0], event=repr(event))
            if (time, priority, tiebreak) == last[:3] and sched_seq <= last[3]:
                self.violation(
                    "FIFO tie-break violated: event scheduled as "
                    f"#{sched_seq} fired after same-slot event #{last[3]} "
                    f"at (t={time}, priority={priority})",
                    time=time, sched_seq=sched_seq, previous_seq=last[3],
                    event=repr(event))
        self._last_pop = (time, priority, tiebreak, sched_seq)


class ExactlyOnceTriggerMonitor(Monitor):
    """Invariant 2: a triggered operation fires **iff** its counter
    reached its threshold, exactly once, under any interleaving of CPU
    registration and GPU trigger writes (relaxed-sync race freedom)."""

    invariant = "trigger-exactly-once"

    def __init__(self) -> None:
        super().__init__()
        # id(entry) -> (node, entry, fire count); entries are kept alive
        # by the reference so ids stay unique for the run.
        self._entries: Dict[int, Tuple[str, Any, int]] = {}
        self._lists: List[Tuple[str, Any]] = []
        self._sim = None

    def attach(self, cluster) -> None:
        super().attach(cluster)
        self._sim = cluster.sim
        for nic in _nics_of(cluster):
            self._lists.append((nic.node, nic.trigger_list))
            nic.trigger_list.observers.append(
                lambda kind, entry, node=nic.node: self._observe(node, kind, entry))

    @property
    def _now(self) -> Optional[int]:
        return self._sim.now if self._sim is not None else None

    def _observe(self, node: str, kind: str, entry) -> None:
        key = id(entry)
        known = self._entries.get(key)
        fires = known[2] if known else 0
        if kind == "fire":
            if fires:
                self.violation(
                    f"trigger entry tag={entry.tag} fired more than once",
                    time=self._now, node=node, tag=entry.tag,
                    counter=entry.counter, threshold=entry.threshold)
            if not entry.armed:
                self.violation(
                    f"unarmed trigger entry tag={entry.tag} fired "
                    "(no registered operation/threshold)",
                    time=self._now, node=node, tag=entry.tag,
                    counter=entry.counter)
            if entry.counter < entry.threshold:
                self.violation(
                    f"trigger entry tag={entry.tag} fired below threshold "
                    f"({entry.counter} < {entry.threshold})",
                    time=self._now, node=node, tag=entry.tag,
                    counter=entry.counter, threshold=entry.threshold)
            fires += 1
        self._entries[key] = (node, entry, fires)

    def finalize(self) -> None:
        # The "only if" direction fires inline above; here is the "if":
        # every armed entry whose counter met its threshold must have fired
        # by the end of the run.
        for node, trigger_list in self._lists:
            for entry in trigger_list.lookup:
                if (entry.armed and not entry.fired
                        and entry.counter >= entry.threshold):
                    self.violation(
                        f"trigger entry tag={entry.tag} met its threshold "
                        f"({entry.counter} >= {entry.threshold}) but never fired",
                        node=node, tag=entry.tag, counter=entry.counter,
                        threshold=entry.threshold)
            fired_marks = sum(1 for e in trigger_list.lookup if e.fired)
            if fired_marks > trigger_list.stats["fired"]:
                self.violation(
                    "trigger list bookkeeping drift: more fired entries than "
                    "recorded fires",
                    node=node, fired_entries=fired_marks,
                    recorded=trigger_list.stats["fired"])


class FabricOrderMonitor(Monitor):
    """Invariant 6: per-pair FIFO and bandwidth serialization.  Messages
    between the same (src, dst) pair deliver in transmit order, egress
    serialization windows on one link never overlap or regress, and no
    delivery beats the physical lower bound (serialization + path)."""

    invariant = "fabric-order"

    def __init__(self) -> None:
        super().__init__()
        self._last_delivery: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._last_egress_end: Dict[str, int] = {}
        self._fabric = None

    def attach(self, cluster) -> None:
        super().attach(cluster)
        self._fabric = cluster.fabric
        cluster.fabric.probes.append(self._on_transmit)

    def _on_transmit(self, msg, sent_at: int, egress_end: int,
                     delivered_at: int) -> None:
        fabric = self._fabric
        ser = fabric.net.serialization_ns(msg.nbytes)
        floor = sent_at + ser + fabric.topology.path_latency_ns(msg.src, msg.dst)
        if delivered_at < floor:
            self.violation(
                f"message {msg.msg_id} ({msg.nbytes}B {msg.src}->{msg.dst}) "
                f"delivered at t={delivered_at}, before the physical floor "
                f"t={floor}",
                time=sent_at, node=msg.src, msg_id=msg.msg_id,
                nbytes=msg.nbytes, floor=floor, delivered_at=delivered_at)
        wire_start = egress_end - ser
        prev_end = self._last_egress_end.get(msg.src)
        if wire_start < sent_at or (prev_end is not None and wire_start < prev_end):
            self.violation(
                f"egress serialization overlap on {msg.src}: message "
                f"{msg.msg_id} starts wire at t={wire_start} inside the "
                f"previous window ending t={prev_end} (sent at t={sent_at})",
                time=sent_at, node=msg.src, msg_id=msg.msg_id,
                previous_end=prev_end, start=wire_start)
        self._last_egress_end[msg.src] = max(prev_end or 0, egress_end)
        pair = (msg.src, msg.dst)
        last = self._last_delivery.get(pair)
        if last is not None and delivered_at < last[0]:
            self.violation(
                f"FIFO violated on {msg.src}->{msg.dst}: message "
                f"{msg.msg_id} ({msg.nbytes}B) delivers at t={delivered_at}, "
                f"beating earlier message {last[1]} delivered at t={last[0]}",
                time=sent_at, node=msg.src, msg_id=msg.msg_id,
                earlier_msg_id=last[1], earlier_delivery=last[0],
                delivered_at=delivered_at)
        self._last_delivery[pair] = (delivered_at, msg.msg_id)


class SendBufferSafetyMonitor(Monitor):
    """Invariant 7: the local-completion flag means the send buffer is
    reusable -- so the NIC must have captured the payload (DMA read)
    before completion signals, and must never touch the buffer after."""

    invariant = "completion-safety"

    def __init__(self) -> None:
        super().__init__()
        self._read_at: Dict[int, int] = {}
        self._completed: Dict[int, int] = {}
        self._sim = None

    def attach(self, cluster) -> None:
        super().attach(cluster)
        self._sim = cluster.sim
        for nic in _nics_of(cluster):
            nic.probes.append(
                lambda kind, handle, now, node=nic.node:
                self._observe(node, kind, handle, now))

    def _observe(self, node: str, kind: str, handle, now: int) -> None:
        hid = handle.handle_id
        if kind == "send-dma-read":
            done_at = self._completed.get(hid)
            if done_at is not None:
                self.violation(
                    f"NIC read send buffer of op {handle.op.op_id} at "
                    f"t={now}, after local completion at t={done_at} "
                    "declared it reusable",
                    time=now, node=node, op_id=handle.op.op_id,
                    completed_at=done_at)
            self._read_at[hid] = now
        elif kind == "local-complete":
            read_at = self._read_at.get(hid)
            if read_at is None:
                self.violation(
                    f"local completion for op {handle.op.op_id} at t={now} "
                    "before the NIC captured the payload",
                    time=now, node=node, op_id=handle.op.op_id)
            self._completed[hid] = now


class ReliableDeliveryMonitor(Monitor):
    """Invariant 8: under the reliable transport, each (src, dst) flow
    accepts sequence numbers in exactly-once, exactly-in-order fashion
    (0, 1, 2, ... with no duplicate or gap ever *accepted* -- drops,
    duplicates and gaps on the wire are fine, acceptance is not), and by
    the end of the run every transmitted sequence has been accepted
    unless the sender declared that flow dead (retry budget exhausted).

    Attaches to :attr:`repro.nic.transport.ReliableTransport.probes`;
    NICs without a transport armed are simply not watched, so the monitor
    is safe to include in mixed-mode clusters.
    """

    invariant = "reliable-delivery"

    def __init__(self) -> None:
        super().__init__()
        # flow key is (sender node, receiver node)
        self._accepted: Dict[Tuple[str, str], int] = {}
        self._sent: Dict[Tuple[str, str], int] = {}
        self._dead: set = set()
        self._sim = None

    def attach(self, cluster) -> None:
        super().attach(cluster)
        self._sim = cluster.sim
        for nic in _nics_of(cluster):
            transport = getattr(nic, "transport", None)
            if transport is None:
                continue
            transport.probes.append(
                lambda kind, peer, seq, now, node=nic.node:
                self._observe(node, kind, peer, seq, now))

    def _observe(self, node: str, kind: str, peer: str, seq: int,
                 now: int) -> None:
        if kind == "tx":
            flow = (node, peer)
            self._sent[flow] = max(self._sent.get(flow, -1), seq)
        elif kind == "accept":
            # `node` is the receiver here; the flow runs peer -> node.
            flow = (peer, node)
            last = self._accepted.get(flow, -1)
            if seq != last + 1:
                what = "duplicate" if seq <= last else "gap"
                self.violation(
                    f"flow {peer}->{node} accepted seq {seq} after {last} "
                    f"({what} acceptance breaks exactly-once delivery)",
                    time=now, node=node, src=peer, seq=seq, last_accepted=last)
            self._accepted[flow] = seq
        elif kind == "give-up":
            self._dead.add((node, peer))

    def finalize(self) -> None:
        for flow, highest_sent in sorted(self._sent.items()):
            if flow in self._dead:
                continue  # retry budget exhausted: the tail is allowed to die
            accepted = self._accepted.get(flow, -1)
            if accepted < highest_sent:
                src, dst = flow
                self.violation(
                    f"flow {src}->{dst} transmitted up to seq {highest_sent} "
                    f"but only seq {accepted} was ever accepted (lost "
                    "messages never recovered)",
                    node=src, dst=dst, highest_sent=highest_sent,
                    highest_accepted=accepted)


class PacketConservationMonitor(Monitor):
    """Invariant 9: no packet leak.  Every message injected into the
    fabric is accounted for: scheduled for delivery, dropped by the
    fault interposer, or dropped by a finite switch queue -- nothing
    vanishes without a counted cause.  With reliable transports armed,
    the end-of-run state must also be fully drained: no sequence stuck
    in a receiver's reorder buffer and no entry stranded in a live
    sender window (dead flows, whose tails are allowed to die, are
    exempt).  A run truncated mid-flight fails the drain check -- by
    design: a congestion sweep point that never quiesced is not a valid
    measurement.

    Not part of :func:`default_monitors` (the §6 invariant set those pin
    is fabric/engine-level); armed explicitly by the congestion study
    and its CI smoke job.
    """

    invariant = "packet-conservation"

    def __init__(self) -> None:
        super().__init__()
        self._fabric = None
        self._scheduled = 0
        self._transports: List[Any] = []

    def attach(self, cluster) -> None:
        super().attach(cluster)
        self._fabric = cluster.fabric
        cluster.fabric.probes.append(self._on_transmit)
        for nic in _nics_of(cluster):
            transport = getattr(nic, "transport", None)
            if transport is not None:
                self._transports.append(transport)

    def _on_transmit(self, msg, sent_at: int, egress_end: int,
                     delivered_at: int) -> None:
        # The fabric probes exactly the transmissions it schedules for
        # delivery (drops -- fault or queue -- are never probed).
        self._scheduled += 1

    def finalize(self) -> None:
        fabric = self._fabric
        injected = fabric.stats["messages"]
        fault_drops = (fabric.interposer.stats.get("drops", 0)
                       if fabric.interposer is not None else 0)
        queue_drops = (fabric.queues.stats.get("dropped", 0)
                       if fabric.queues is not None else 0)
        accounted = self._scheduled + fault_drops + queue_drops
        if accounted != injected:
            self.violation(
                f"packet leak: {injected} messages injected but only "
                f"{accounted} accounted for ({self._scheduled} scheduled "
                f"for delivery + {fault_drops} fault drops + "
                f"{queue_drops} queue drops)",
                injected=injected, scheduled=self._scheduled,
                fault_drops=fault_drops, queue_drops=queue_drops)
        for transport in self._transports:
            flows = transport.flows()
            for rx_peer, rx in getattr(transport, "_rx", {}).items():
                buffered = getattr(rx, "buffer", None)
                if not buffered:
                    continue
                peer_tx = fabric.transports.get(rx_peer)
                peer_dead = (peer_tx is not None
                             and peer_tx.flows()
                                 .get(transport.node, {}).get("dead"))
                if peer_dead:
                    continue  # sender gave up; the hole is never repaired
                self.violation(
                    f"reorder-buffer leak at {transport.node}: seqs "
                    f"{sorted(buffered)} from {rx_peer} held above an "
                    "unrepaired gap at end of run",
                    node=transport.node, src=rx_peer,
                    stranded=sorted(buffered))
            for peer, flow in flows.items():
                if flow["in_flight"] and not flow["dead"]:
                    self.violation(
                        f"undrained send window {transport.node}->{peer}: "
                        f"{flow['in_flight']} messages still in flight on "
                        "a live flow at end of run",
                        node=transport.node, dst=peer,
                        in_flight=flow["in_flight"])


def default_monitors() -> List[Monitor]:
    """A fresh instance of every runtime monitor."""
    return [MonotoneClockMonitor(), ExactlyOnceTriggerMonitor(),
            FabricOrderMonitor(), SendBufferSafetyMonitor()]


def attach_monitors(cluster, monitors: Optional[List[Monitor]] = None
                    ) -> List[Monitor]:
    """Arm ``monitors`` (default: all of them) on ``cluster``; returns the
    attached list so the caller can :meth:`~Monitor.finalize` after the
    run."""
    monitors = default_monitors() if monitors is None else monitors
    for monitor in monitors:
        monitor.attach(cluster)
    return monitors
