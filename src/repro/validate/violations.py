"""Structured invariant-violation reporting.

An :class:`InvariantViolation` is what every :mod:`repro.validate`
runtime monitor raises: it names the DESIGN.md §6 invariant that broke,
pins the simulation time and node, carries a machine-readable detail
mapping, and snapshots the last few tracer events so a fuzz-campaign
report localizes the offending schedule without re-running anything.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["InvariantViolation"]

#: How many trailing tracer events a violation snapshots as context.
_CONTEXT_EVENTS = 8


class InvariantViolation(Exception):
    """A runtime monitor observed a broken DESIGN.md §6 invariant.

    Attributes mirror the constructor arguments; :meth:`to_dict` renders
    the whole violation as JSON-safe scalars for fuzz reports.
    """

    def __init__(self, invariant: str, message: str, *,
                 time: Optional[int] = None, node: Optional[str] = None,
                 details: Optional[Dict[str, Any]] = None,
                 context: Sequence[str] = ()):
        self.invariant = invariant
        self.message = message
        self.time = time
        self.node = node
        self.details: Dict[str, Any] = dict(details or {})
        self.context: Tuple[str, ...] = tuple(context)
        super().__init__(self._headline())

    def _headline(self) -> str:
        where = []
        if self.node is not None:
            where.append(f"node={self.node}")
        if self.time is not None:
            where.append(f"t={self.time}ns")
        suffix = f" [{' '.join(where)}]" if where else ""
        return f"[{self.invariant}] {self.message}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering for :class:`~repro.runtime.record.RunRecord`
        metrics and CLI reports."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "time": self.time,
            "node": self.node,
            "details": {str(k): _scalar(v) for k, v in self.details.items()},
            "context": list(self.context),
        }

    def report(self) -> str:
        """Multi-line human-readable rendering (CLI failure output)."""
        lines = [self._headline()]
        for key in sorted(self.details):
            lines.append(f"    {key} = {self.details[key]!r}")
        if self.context:
            lines.append("    trace context (most recent last):")
            lines.extend(f"      {entry}" for entry in self.context)
        return "\n".join(lines)


def _scalar(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    return repr(value)


def trace_context(tracer) -> Tuple[str, ...]:
    """The last few tracer events, formatted -- the ``context`` payload
    monitors attach to violations (empty when tracing is off)."""
    if tracer is None or not getattr(tracer, "enabled", False):
        return ()
    events = tracer.events[-_CONTEXT_EVENTS:]
    return tuple(
        f"t={e.time} {e.node}/{e.actor} {e.phase}"
        + (f" {e.detail}" if e.detail else "")
        for e in events
    )
