"""Package version (single source; pyproject mirrors it)."""

__version__ = "1.0.0"
