"""Subprocess target for the SIGKILL-mid-point checkpoint tests.

``run`` mode submits a checkpointed :class:`ResumableRingExperiment`
sweep to the given store while a watcher thread polls the job's
checkpoint directory and prints a flushed ``checkpoint <file>`` line the
moment each snapshot lands -- the parent SIGKILLs this process on the
first such line, guaranteeing a hard kill mid-point with a usable
snapshot on disk (SIGKILL cannot be caught, so the journal never sees
the in-flight point).

``resume`` mode resubmits the *identical* sweep (same content-addressed
job id, same checkpoint directory): the killed point must resume from
its latest snapshot rather than from scratch.  It asserts at least one
point reported ``restored`` and that the final records are
byte-identical to an uninterrupted, checkpoint-free run, printing
``byte-identical ok`` before exiting 0.
"""

import sys
import threading
import time

#: Snapshot grid.  The tail divergence sits at 2M ns, so the first few
#: snapshots (500k, 1M, 1.5M) land in the shared-prefix pool and both
#: points below can resume from them.
INTERVAL_NS = 500_000
TAIL_AT_NS = 2_000_000


def _points(rounds):
    """Two sibling points differing only in the post-divergence tail."""
    base = {"nodes": 4, "rounds": rounds, "tail_at_ns": TAIL_AT_NS}
    return [dict(base, extra_rounds=0), dict(base, extra_rounds=3)]


def _sweep(rounds):
    from repro.apps import ResumableRingExperiment
    from repro.runtime.sweep import Sweep
    return Sweep(ResumableRingExperiment(), points=_points(rounds))


def _watch(directory, stop):
    """Poll ``directory`` and announce new checkpoint files."""
    import os
    seen = set()
    while not stop.is_set():
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            names = []
        for name in names:
            if name.endswith(".ckpt") and name not in seen:
                seen.add(name)
                print(f"checkpoint {name}", flush=True)
        stop.wait(0.02)


def main() -> int:
    store_dir, mode = sys.argv[1], sys.argv[2]
    rounds = int(sys.argv[3]) if len(sys.argv) > 3 else 8000
    from repro.service import Job, JobStore

    store = JobStore(store_dir)
    job = Job.from_sweep(_sweep(rounds), store=store, checkpoint=INTERVAL_NS)

    if mode == "run":
        stop = threading.Event()
        watcher = threading.Thread(
            target=_watch, args=(store.checkpoint_dir(job.id), stop),
            daemon=True)
        watcher.start()
        try:
            job.run()
        finally:
            stop.set()
        print("complete", flush=True)
        return 0

    assert mode == "resume", mode
    t0 = time.perf_counter()
    records = job.run()
    resumed_wall = time.perf_counter() - t0
    print(f"done journal={job.stats['journal']} "
          f"restored={job.stats['restored']} run={job.stats['run']} "
          f"wall={resumed_wall:.3f}s", flush=True)
    if job.stats["restored"] < 1:
        print("FAIL: no point resumed from a checkpoint", flush=True)
        return 1

    from repro.apps import ResumableRingExperiment
    exp = ResumableRingExperiment()
    for point, record in zip(_points(rounds), records):
        fresh = exp.execute(point).record
        if record.to_json() != fresh.to_json():
            print(f"FAIL: record for {point} diverged from an "
                  f"uninterrupted run", flush=True)
            return 1
    print("byte-identical ok", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
