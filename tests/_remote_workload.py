"""Helpers for the remote-dispatch tests (importable from workers too).

Importable as ``_remote_workload`` both by the pytest process (tests/ is
on ``sys.path`` via rootdir insertion) and by worker subprocesses
started with ``PYTHONPATH=src:tests`` -- the pickled experiment payload
and the registered kamikaze runner must resolve to the same module name
on both sides.
"""

import os
import signal
import time
from pathlib import Path

from repro.apps.microbench import MicrobenchExperiment
from repro.service.runners import SweepRunner, register_runner


class SleepyMicrobench(MicrobenchExperiment):
    """Microbench whose setup sleeps ``delay_s`` wall-clock seconds.

    The sleep happens outside the simulation, so records are identical
    to plain MicrobenchExperiment modulo the extra params -- its only
    purpose is to hold points in flight long enough for tests to land a
    kill or a preemption mid-job.
    """

    name = "sleepy-microbench"
    defaults = dict(MicrobenchExperiment.defaults, delay_s=0.0)

    def setup(self, cluster, params):
        time.sleep(params.get("delay_s", 0.0))
        return super().setup(cluster, params)


@register_runner
class KamikazeRunner(SweepRunner):
    """A sweep runner that SIGKILLs its own process on marked points.

    A point carrying ``die_dir`` kills the worker the *first* time any
    process attempts it (a flag file under ``die_dir`` makes the second
    attempt run normally), which is exactly the worker-dies-mid-point
    scenario the dispatcher must absorb: the point is reissued once and
    the job completes with byte-identical records.
    """

    name = "kamikaze"

    @staticmethod
    def run(state, index, point):
        point = dict(point)
        die_dir = point.pop("die_dir", None)
        if die_dir is not None:
            flag = Path(die_dir) / f"died-{index}"
            if not flag.exists():
                flag.touch()
                os.kill(os.getpid(), signal.SIGKILL)
        return SweepRunner.run(state, index, point)
