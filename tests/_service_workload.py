"""Subprocess target for the kill-mid-campaign tests.

Runs a stored validate campaign, printing one flushed ``case i/n`` line
per completed case so the parent test can time its SIGTERM/SIGKILL, and
sleeping ``delay`` seconds per case so the signal has a window to land
mid-campaign.  Exits 130 on cooperative preemption, 0 on completion.
"""

import sys
import time


def main() -> int:
    store_dir, seeds, delay = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])
    from repro.service import JobPreempted
    from repro.validate import run_campaign

    def progress(event) -> None:
        print(f"case {event.done}/{event.total} {event.source}", flush=True)
        time.sleep(delay)

    try:
        run_campaign(workloads=["microbench"], seeds=seeds,
                     store=store_dir, progress=progress)
    except JobPreempted as preempt:
        print(f"preempted {preempt.job_id}", flush=True)
        return 130
    print("complete", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
