"""Shared test fixtures: a minimal multi-node NIC/fabric harness.

Full-node systems (with GPU and host models) come from ``repro.cluster``;
this harness wires only sim + memory + fabric + NICs for the substrate
tests, which keeps NIC unit tests independent of the GPU model.
"""

import os
from dataclasses import dataclass
from typing import Dict, List

import pytest

try:  # property tests need hypothesis; the rest of the suite does not
    from hypothesis import settings as _hyp_settings

    # "ci" is the default profile: derandomized (fixed seed) so CI runs are
    # reproducible, with a bounded example budget and no wall-clock
    # deadline (simulation-heavy properties are slow but deterministic).
    # Developers can explore more schedules with HYPOTHESIS_PROFILE=dev.
    _hyp_settings.register_profile("ci", derandomize=True, max_examples=50,
                                   deadline=None)
    _hyp_settings.register_profile("dev", max_examples=200, deadline=None)
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass

from repro.config import SystemConfig, default_config
from repro.memory import AddressSpace, ScopedMemoryModel
from repro.net import Fabric, StarTopology
from repro.nic import Nic
from repro.sim import Simulator, Tracer


@dataclass
class NicTestbed:
    sim: Simulator
    config: SystemConfig
    tracer: Tracer
    fabric: Fabric
    spaces: Dict[str, AddressSpace]
    mems: Dict[str, ScopedMemoryModel]
    nics: Dict[str, Nic]
    nodes: List[str]

    def alloc_registered(self, node: str, nbytes: int, name: str = ""):
        buf = self.spaces[node].alloc(nbytes, name=name)
        self.spaces[node].register(buf)
        return buf


def build_nic_testbed(n_nodes: int = 2, config: SystemConfig | None = None) -> NicTestbed:
    config = config or default_config()
    sim = Simulator()
    tracer = Tracer()
    nodes = [f"n{i}" for i in range(n_nodes)]
    topo = StarTopology(nodes, config.network.link_latency_ns,
                        config.network.switch_latency_ns)
    fabric = Fabric(sim, topo, config.network, tracer=tracer)
    spaces = {name: AddressSpace(name) for name in nodes}
    mems = {name: ScopedMemoryModel() for name in nodes}
    nics = {
        name: Nic(sim, name, spaces[name], mems[name], fabric, config, tracer=tracer)
        for name in nodes
    }
    return NicTestbed(sim, config, tracer, fabric, spaces, mems, nics, nodes)


@pytest.fixture
def nic_testbed() -> NicTestbed:
    return build_nic_testbed()
