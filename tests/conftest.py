"""Shared test fixtures: a minimal multi-node NIC/fabric harness.

Full-node systems (with GPU and host models) come from ``repro.cluster``;
this harness wires only sim + memory + fabric + NICs for the substrate
tests, which keeps NIC unit tests independent of the GPU model.
"""

from dataclasses import dataclass
from typing import Dict, List

import pytest

from repro.config import SystemConfig, default_config
from repro.memory import AddressSpace, ScopedMemoryModel
from repro.net import Fabric, StarTopology
from repro.nic import Nic
from repro.sim import Simulator, Tracer


@dataclass
class NicTestbed:
    sim: Simulator
    config: SystemConfig
    tracer: Tracer
    fabric: Fabric
    spaces: Dict[str, AddressSpace]
    mems: Dict[str, ScopedMemoryModel]
    nics: Dict[str, Nic]
    nodes: List[str]

    def alloc_registered(self, node: str, nbytes: int, name: str = ""):
        buf = self.spaces[node].alloc(nbytes, name=name)
        self.spaces[node].register(buf)
        return buf


def build_nic_testbed(n_nodes: int = 2, config: SystemConfig | None = None) -> NicTestbed:
    config = config or default_config()
    sim = Simulator()
    tracer = Tracer()
    nodes = [f"n{i}" for i in range(n_nodes)]
    topo = StarTopology(nodes, config.network.link_latency_ns,
                        config.network.switch_latency_ns)
    fabric = Fabric(sim, topo, config.network, tracer=tracer)
    spaces = {name: AddressSpace(name) for name in nodes}
    mems = {name: ScopedMemoryModel() for name in nodes}
    nics = {
        name: Nic(sim, name, spaces[name], mems[name], fabric, config, tracer=tracer)
        for name in nodes
    }
    return NicTestbed(sim, config, tracer, fabric, spaces, mems, nics, nodes)


@pytest.fixture
def nic_testbed() -> NicTestbed:
    return build_nic_testbed()
