#!/usr/bin/env python
"""Regenerate the golden RunRecord fixtures under ``tests/golden/``.

One command::

    PYTHONPATH=src python tests/regen_golden.py

The fixtures pin the paper's headline exhibits as canonical records --
Figure 8's latency decomposition (GPU-TN ~2.71 us vs GDS ~3.76 us vs HDN
~4.21 us target completion), a Figure 9 Jacobi point and Figure 10's
8-node / 8 MiB Allreduce -- so any code change that shifts a simulated
metric fails ``tests/test_golden_records.py`` with a field-level diff.
Only regenerate after verifying the new numbers are *intended* (e.g. a
deliberate timing-model change), and say why in the commit message.

Span tables are stripped: fixtures pin metrics, not trace layout.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

#: fixture name -> (experiment factory, params overlay)
GOLDEN_POINTS = {
    "microbench-gputn": ("microbench", {"strategy": "gputn"}),
    "microbench-gds": ("microbench", {"strategy": "gds"}),
    "microbench-hdn": ("microbench", {"strategy": "hdn"}),
    "jacobi-gputn": ("jacobi", {"strategy": "gputn"}),
    "allreduce-gputn": ("allreduce", {"strategy": "gputn", "n_nodes": 8}),
    "allreduce-cpu": ("allreduce", {"strategy": "cpu", "n_nodes": 8}),
    "allreduce-hdn": ("allreduce", {"strategy": "hdn", "n_nodes": 8}),
}


def _experiment(kind: str):
    if kind == "microbench":
        from repro.apps.microbench import MicrobenchExperiment
        return MicrobenchExperiment()
    if kind == "jacobi":
        from repro.apps.jacobi import JacobiExperiment
        return JacobiExperiment()
    from repro.collectives import AllreduceExperiment
    return AllreduceExperiment()


def regenerate(only=None) -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, (kind, params) in GOLDEN_POINTS.items():
        if only and name not in only:
            continue
        record = _experiment(kind).run(params=params)
        record.spans = ()
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(record.to_json() + "\n", encoding="utf-8")
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent)}")


if __name__ == "__main__":
    regenerate(only=set(sys.argv[1:]) or None)
