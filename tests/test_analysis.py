"""Tests for analysis/report rendering (repro.analysis)."""

import pytest

from repro.analysis import (
    figure1_report,
    figure8_report,
    table1_report,
    table2_report,
    table3_report,
)
from repro.analysis.tables import render_table, sparkline
from repro.apps.launch_study import measure_launch_latency
from repro.config import default_config
from repro.gpu.dispatcher import FIGURE1_GPUS, ConstantLaunchModel


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out and "bb" in out
        # All data lines equal width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_ragged_rows_padded(self):
        out = render_table(["x", "y"], [["only-one"]])
        assert "only-one" in out

    def test_non_string_cells(self):
        out = render_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out


class TestSparkline:
    def test_shape(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4 and s[0] != s[-1]

    def test_flat_series(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestLaunchStudy:
    def test_measured_matches_constant_model(self):
        t = measure_launch_latency(default_config(),
                                   ConstantLaunchModel(1500, 1500),
                                   queue_depth=4)
        assert t == 3000  # empty kernels: launch+teardown only

    def test_measured_decreases_with_depth(self):
        model = FIGURE1_GPUS["GPU 1"]
        t1 = measure_launch_latency(launch_model=model, queue_depth=1)
        t64 = measure_launch_latency(launch_model=model, queue_depth=64)
        assert t64 < t1

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            measure_launch_latency(queue_depth=0)


class TestReports:
    def test_figure1_report_envelope(self, capsys):
        data = figure1_report(depths=(1, 16, 256))
        out = capsys.readouterr().out
        assert "Figure 1" in out
        for vals in data.values():
            assert vals[0] > vals[-1]          # amortization
            assert 3.0 <= vals[-1] <= 4.6      # paper's 3-4 us floor
        assert max(data["GPU 1"]) <= 21.0      # paper's 20 us ceiling

    def test_figure8_report(self, capsys):
        data = figure8_report()
        out = capsys.readouterr().out
        assert "Figure 8" in out and "faster" in out
        assert data["gputn"]["target_us"] < data["gds"]["target_us"]

    def test_table1_report(self, capsys):
        rows = table1_report()
        out = capsys.readouterr().out
        assert len(rows) == 5
        assert "GPU Triggered Networking (GPU-TN)" in out

    def test_table2_report(self, capsys):
        table = table2_report()
        out = capsys.readouterr().out
        assert "GPU Configuration" in out
        assert table["Network Configuration"]["Bandwidth"] == "100Gbps"

    def test_table3_report(self, capsys):
        rows = table3_report()
        assert len(rows) == 6
        assert "CNTK" in capsys.readouterr().out
