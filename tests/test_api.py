"""Tests for the GPU-TN programming model (repro.api): Figures 6 and 7."""

import numpy as np
import pytest

from repro.api import (
    GpuTnEndpoint,
    dynamic_target_kernel,
    kernel_level_kernel,
    mixed_granularity_kernel,
    work_group_kernel,
    work_item_kernel,
)
from repro.cluster import Cluster


def make_pair():
    cluster = Cluster(n_nodes=2)
    return cluster, GpuTnEndpoint(cluster[0]), cluster[1]


class TestEndpointBasics:
    def test_requires_gpu(self):
        cluster = Cluster(n_nodes=1, with_gpu=False)
        with pytest.raises(ValueError, match="requires a GPU"):
            GpuTnEndpoint(cluster[0])

    def test_rank_and_trigger_address(self):
        cluster, ep, _ = make_pair()
        assert ep.rank == "node0"
        assert ep.trigger_address == cluster[0].nic.trigger_address

    def test_fresh_tags_unique(self):
        tags = {GpuTnEndpoint.fresh_tag() for _ in range(100)}
        assert len(tags) == 100

    def test_alloc_flag_slots_distinct(self):
        _, ep, _ = make_pair()
        a, b = ep.alloc_flag(), ep.alloc_flag()
        assert (a[0], a[1]) != (b[0], b[1])

    def test_flag_pool_grows(self):
        _, ep, _ = make_pair()
        slots = [ep.alloc_flag() for _ in range(2000)]
        assert len(slots) == 2000  # spans multiple pool buffers


class TestFigure6Flow:
    """The full host-side pseudocode of paper Figure 6, both orders."""

    @pytest.mark.parametrize("overlap", [False, True],
                             ids=["register-first", "launch-first"])
    def test_end_to_end(self, overlap):
        cluster, ep, target = make_pair()
        send = cluster[0].host.alloc(256, "send")
        recv = target.host.alloc(256, "recv")

        def driver():
            if overlap:
                inst = yield from ep.launch(
                    work_group_kernel, n_workgroups=1,
                    tag_base=0x900, buffers=[send], fill=0x42)
                op = yield from ep.trig_put(send, 256, target.name,
                                            recv.addr(), tag=0x900)
            else:
                op = yield from ep.trig_put(send, 256, target.name,
                                            recv.addr(), tag=0x900)
                inst = yield from ep.launch(
                    work_group_kernel, n_workgroups=1,
                    tag_base=0x900, buffers=[send], fill=0x42)
            yield ep.wait_delivered(op)
            yield inst.finished
            ep.free(op)
            return op

        p = cluster.spawn(driver())
        op = cluster.sim.run_until_event(p)
        assert op.fired is False  # freed: entry removed
        assert (recv.view(np.uint8) == 0x42).all()
        assert cluster.total_hazards() == 0

    def test_local_flag(self):
        cluster, ep, target = make_pair()
        send = cluster[0].host.alloc(64)
        recv = target.host.alloc(64)

        def driver():
            op = yield from ep.trig_put(send, 64, target.name, recv.addr(),
                                        tag=0x901, with_local_flag=True)
            yield from ep.launch(work_group_kernel, n_workgroups=1,
                                 tag_base=0x901, buffers=[send], fill=1)
            yield ep.wait_local(op)
            return ep.local_flag_value(op)

        p = cluster.spawn(driver())
        assert cluster.sim.run_until_event(p) == 1

    def test_local_flag_value_requires_flag(self):
        cluster, ep, target = make_pair()
        send = cluster[0].host.alloc(64)
        recv = target.host.alloc(64)

        def driver():
            op = yield from ep.trig_put(send, 64, target.name, recv.addr())
            return op

        op = cluster.sim.run_until_event(cluster.spawn(driver()))
        with pytest.raises(ValueError, match="with_local_flag"):
            ep.local_flag_value(op)


class TestGranularities:
    """Figure 7 a/b/c and §4.2.3: each granularity delivers its messages."""

    def _run(self, cluster, gen):
        return cluster.sim.run_until_event(cluster.spawn(gen))

    def test_work_group_level(self):
        """7b: one message per work-group (4 groups -> 4 puts)."""
        cluster, ep, target = make_pair()
        n_wg = 4
        send = cluster[0].host.alloc(n_wg * 64)
        recvs = [target.host.alloc(64) for _ in range(n_wg)]

        def driver():
            ops = []
            for wg in range(n_wg):
                op = yield from ep.trig_put(send, 64, target.name,
                                            recvs[wg].addr(), tag=0xA00 + wg,
                                            offset=wg * 64)
                ops.append(op)
            yield from ep.launch(work_group_kernel, n_workgroups=n_wg,
                                 tag_base=0xA00, buffers=[send], fill=9)
            for op in ops:
                yield ep.wait_delivered(op)

        self._run(cluster, driver())
        for r in recvs:
            assert (r.view(np.uint8) == 9).all()

    def test_kernel_level(self):
        """7c: one tag, threshold = #work-groups; fires exactly once after
        every group contributed."""
        cluster, ep, target = make_pair()
        n_wg = 8
        send = cluster[0].host.alloc(256)
        recv = target.host.alloc(256)

        def driver():
            op = yield from ep.trig_put(send, 256, target.name, recv.addr(),
                                        tag=0xB00, threshold=n_wg)
            yield from ep.launch(kernel_level_kernel, n_workgroups=n_wg,
                                 tag=0xB00, buffers=[send], fill=3)
            yield ep.wait_delivered(op)
            return op.entry.counter

        counter = self._run(cluster, driver())
        assert counter == n_wg
        assert (recv.view(np.uint8) == 3).all()
        assert cluster[0].nic.trigger_list.stats["fired"] == 1

    def test_work_item_level(self):
        """7a: every work-item triggers its own tag."""
        cluster, ep, target = make_pair()
        items = 8
        send = cluster[0].host.alloc(items * 8)
        recvs = [target.host.alloc(8) for _ in range(items)]

        def driver():
            ops = []
            for i in range(items):
                op = yield from ep.trig_put(send, 8, target.name,
                                            recvs[i].addr(), tag=0xC00 + i,
                                            offset=i * 8)
                ops.append(op)
            yield from ep.launch(work_item_kernel, n_workgroups=1,
                                 wg_size=items, tag_base=0xC00,
                                 buffers=[send], fill=5, items_per_group=items)
            for op in ops:
                yield ep.wait_delivered(op)

        self._run(cluster, driver())
        for r in recvs:
            assert (r.view(np.uint8) == 5).all()

    def test_mixed_granularity_pairs(self):
        """§4.2.3: threshold 2, one message per pair of work-groups."""
        cluster, ep, target = make_pair()
        n_wg, span = 8, 2
        send = cluster[0].host.alloc(256)
        recvs = [target.host.alloc(64) for _ in range(n_wg // span)]

        def driver():
            ops = []
            for g in range(n_wg // span):
                op = yield from ep.trig_put(send, 64, target.name,
                                            recvs[g].addr(), tag=0xD00 + g,
                                            threshold=span)
                ops.append(op)
            yield from ep.launch(mixed_granularity_kernel, n_workgroups=n_wg,
                                 tag_base=0xD00, group_span=span,
                                 buffers=[send], fill=7)
            for op in ops:
                yield ep.wait_delivered(op)
            return [op.entry.counter for op in ops]

        counters = self._run(cluster, driver())
        assert counters == [span] * (n_wg // span)
        for r in recvs:
            assert (r.view(np.uint8) == 7).all()

    def test_mixed_bad_span_rejected(self):
        cluster, ep, _ = make_pair()

        def driver():
            inst = yield from ep.launch(mixed_granularity_kernel, n_workgroups=2,
                                        tag_base=1, group_span=0, buffers=[])
            yield inst.finished

        p = cluster.spawn(driver())
        with pytest.raises(ValueError, match="group_span"):
            cluster.sim.run_until_event(p)


class TestDynamicExtension:
    """Section 3.4: GPU chooses the target at trigger time."""

    def test_dynamic_targets(self):
        cluster = Cluster(n_nodes=3)
        ep = GpuTnEndpoint(cluster[0])
        targets = [cluster[1], cluster[2]]
        send = cluster[0].host.alloc(2 * 64)
        recvs = [t.host.alloc(64) for t in targets]

        def driver():
            ops = []
            for g in range(2):
                op = yield from ep.register_dynamic(
                    send, 64, tag=0xE00 + g,
                    default_target=targets[0].name,
                    default_remote_addr=recvs[0].addr())
                ops.append(op)
            yield from ep.launch(
                dynamic_target_kernel, n_workgroups=2,
                tag=0xE00, buffers=[send], fill=0x11,
                targets=[t.name for t in targets],
                remote_addrs=[r.addr() for r in recvs])
            for op in ops:
                yield ep.wait_delivered(op)

        p = cluster.spawn(driver())
        cluster.sim.run_until_event(p)
        for r in recvs:
            assert (r.view(np.uint8) == 0x11).all()

    def test_dynamic_unknown_field_rejected(self):
        cluster, ep, _ = make_pair()
        nic = cluster[0].nic
        with pytest.raises(ValueError, match="unsupported dynamic fields"):
            nic.mmio_write_dynamic(nic.trigger_address, 1, priority=3)
