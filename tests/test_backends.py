"""Tests for the pluggable cache-backend seam behind ResultCache."""

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.record import RunRecord
from repro.service.backends import (CacheBackend, LocalDirBackend,
                                    RemoteCacheBackend, as_result_cache)


def _record(i=0, experiment="bk"):
    return RunRecord(
        experiment=experiment,
        params={"i": i},
        config_fingerprint="cafebabe00000000",
        metrics={"value": i * 10},
    )


class TestLocalDirBackend:
    def test_round_trip_and_layout(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        rec = _record(3)
        path = backend.put(rec)
        key = rec.cache_key()
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert path.is_file()
        got = backend.get("bk", {"i": 3}, "cafebabe00000000",
                          rec.code_version)
        assert got == rec

    def test_miss_and_corrupt_entry_is_miss(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert backend.get("bk", {"i": 0}, "cafebabe00000000") is None
        rec = _record(0)
        path = backend.put(rec)
        path.write_text("{not json")
        assert backend.get("bk", {"i": 0}, "cafebabe00000000",
                           rec.code_version) is None

    def test_stats_schema(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert backend.stats() == {"backend": "local-dir", "entries": 0}
        backend.put(_record(1))
        assert backend.stats() == {"backend": "local-dir", "entries": 1}

    def test_clear_sweeps_orphan_tmp(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        path = backend.put(_record(5))
        orphan = path.parent / "leftover.tmp"
        orphan.write_text("torn write")
        assert backend.clear() == 1
        assert not orphan.exists()
        assert len(backend) == 0


class TestResultCacheFacade:
    def test_default_backend_is_local_dir(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert isinstance(cache.backend, LocalDirBackend)
        assert cache.root == tmp_path

    def test_root_and_backend_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ResultCache(tmp_path, backend=LocalDirBackend(tmp_path))

    def test_stats_schema_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path)
        rec = _record(7)
        cache.put(rec)
        assert cache.get("bk", {"i": 7}, "cafebabe00000000",
                         rec.code_version) == rec
        assert cache.get("bk", {"i": 8}, "cafebabe00000000") is None
        assert cache.stats() == {"hits": 1, "misses": 1, "restored": 0}

    def test_counters_live_on_facade_not_backend(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        a = ResultCache(backend=backend)
        b = ResultCache(backend=backend)
        rec = _record(2)
        a.put(rec)
        a.get("bk", {"i": 2}, "cafebabe00000000", rec.code_version)
        assert a.stats()["hits"] == 1
        assert b.stats() == {"hits": 0, "misses": 0, "restored": 0}

    def test_facade_byte_identity_across_seam(self, tmp_path):
        # The refactor must not move a single byte: the file a facade
        # writes equals the file the extracted backend writes.
        rec = _record(9)
        via_facade = ResultCache(tmp_path / "a")
        via_backend = LocalDirBackend(tmp_path / "b")
        pa = via_facade.put(rec)
        pb = via_backend.put(rec)
        assert pa.relative_to(tmp_path / "a") == pb.relative_to(tmp_path / "b")
        assert pa.read_bytes() == pb.read_bytes()


class _FakeChannel:
    def __init__(self):
        self.store = {}
        self.calls = []

    def cache_get(self, experiment, params, config_fp, code_version):
        self.calls.append("get")
        from repro.runtime.record import make_cache_key
        key = make_cache_key(experiment, params, config_fp, code_version)
        return self.store.get(key)

    def cache_put(self, record):
        self.calls.append("put")
        self.store[record.cache_key()] = record


class TestRemoteCacheBackend:
    def test_proxies_and_counts(self):
        channel = _FakeChannel()
        backend = RemoteCacheBackend(channel)
        rec = _record(4)
        assert backend.get("bk", {"i": 4}, "cafebabe00000000",
                           rec.code_version) is None
        backend.put(rec)
        assert backend.get("bk", {"i": 4}, "cafebabe00000000",
                           rec.code_version) == rec
        assert backend.stats() == {"backend": "remote", "gets": 2, "puts": 1}
        assert channel.calls == ["get", "put", "get"]

    def test_facade_over_remote_backend(self):
        cache = ResultCache(backend=RemoteCacheBackend(_FakeChannel()))
        assert cache.root is None
        rec = _record(6)
        cache.put(rec)
        assert cache.get("bk", {"i": 6}, "cafebabe00000000",
                         rec.code_version) == rec
        assert cache.stats() == {"hits": 1, "misses": 0, "restored": 0}


class TestAsResultCache:
    def test_none_passes_through(self):
        assert as_result_cache(None) is None

    def test_facade_passes_through(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert as_result_cache(cache) is cache

    def test_backend_is_wrapped(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        cache = as_result_cache(backend)
        assert isinstance(cache, ResultCache)
        assert cache.backend is backend

    def test_path_becomes_local_dir(self, tmp_path):
        cache = as_result_cache(tmp_path)
        assert isinstance(cache.backend, LocalDirBackend)
        assert cache.root == tmp_path


def test_base_protocol_is_abstract():
    backend = CacheBackend()
    with pytest.raises(NotImplementedError):
        backend.get("x", {}, "00")
    with pytest.raises(NotImplementedError):
        backend.put(_record())
    with pytest.raises(NotImplementedError):
        backend.stats()
