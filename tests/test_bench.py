"""The repro.bench harness and the ``repro bench`` CLI."""

import json

import pytest

from repro.bench import (
    DEFAULT_REPORT_PATH,
    WORKLOADS,
    run_bench,
)
from repro.bench.harness import SCHEMA_VERSION
from repro.bench.workloads import engine_stress


class TestWorkloads:
    def test_registry_names(self):
        assert set(WORKLOADS) == {"engine", "microbench", "jacobi",
                                  "allreduce", "transport"}

    def test_engine_stress_counts_callbacks(self):
        events = engine_stress(n_rounds=2_000)
        assert events >= 2_000

    @pytest.mark.parametrize("name", ["microbench", "jacobi", "allreduce",
                                      "transport"])
    def test_system_workloads_return_events(self, name):
        assert WORKLOADS[name]() > 0


class TestHarness:
    def test_report_schema(self, monkeypatch):
        monkeypatch.setitem(WORKLOADS, "engine",
                            lambda: engine_stress(n_rounds=2_000))
        report = run_bench(workloads=["engine"], repeat=2, quiet=True)
        doc = report.to_dict()
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["repeat"] == 2
        wl = doc["workloads"]["engine"]
        assert wl["events"] > 0
        assert wl["events_per_sec"] > 0
        assert len(wl["wall_s"]) == 2
        assert wl["best_wall_s"] == min(wl["wall_s"])

    def test_peak_rss_reported_on_linux(self, monkeypatch):
        monkeypatch.setitem(WORKLOADS, "engine",
                            lambda: engine_stress(n_rounds=500))
        report = run_bench(workloads=["engine"], repeat=1, quiet=True)
        assert report.peak_rss_kb is None or report.peak_rss_kb > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_bench(workloads=["nope"], repeat=1, quiet=True)

    def test_bad_repeat_rejected(self):
        with pytest.raises(ValueError, match="repeat"):
            run_bench(workloads=["engine"], repeat=0, quiet=True)

    def test_write_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setitem(WORKLOADS, "engine",
                            lambda: engine_stress(n_rounds=500))
        report = run_bench(workloads=["engine"], repeat=1, quiet=True)
        path = report.write(str(tmp_path / "bench.json"))
        doc = json.loads(open(path).read())
        assert doc == json.loads(json.dumps(report.to_dict()))


class TestCli:
    def test_bench_subcommand_writes_default_path(self, tmp_path,
                                                  monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.chdir(tmp_path)
        monkeypatch.setitem(WORKLOADS, "engine",
                            lambda: engine_stress(n_rounds=500))
        rc = main(["bench", "--repeat", "1", "--workloads", "engine",
                   "--json"])
        assert rc == 0
        doc = json.loads((tmp_path / DEFAULT_REPORT_PATH).read_text())
        assert doc["workloads"]["engine"]["events_per_sec"] > 0
        out = capsys.readouterr().out
        assert "engine" in out and DEFAULT_REPORT_PATH in out

    def test_bench_subcommand_explicit_path(self, tmp_path, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setitem(WORKLOADS, "engine",
                            lambda: engine_stress(n_rounds=500))
        target = tmp_path / "custom.json"
        rc = main(["bench", "--repeat", "1", "--workloads", "engine",
                   "--json", str(target)])
        assert rc == 0
        assert json.loads(target.read_text())["repeat"] == 1

    def test_bench_rejects_bad_repeat(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["bench", "--repeat", "0"])
