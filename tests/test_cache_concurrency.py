"""ResultCache under the service's worker-side write-through.

With ``jobs > 1`` the cache puts happen in worker processes (atomic
temp-file + ``os.replace``), while the submitting process -- or any
other reader -- may ``get`` the same keys concurrently.  A reader must
only ever see a miss or a complete record, never a torn one, and a torn
entry left by a killed writer must read as a miss that the next sweep
silently repairs.
"""

import threading

from repro.collectives import AllreduceExperiment
from repro.runtime import ResultCache, Sweep


def _sweep() -> Sweep:
    return Sweep(AllreduceExperiment(),
                 grid={"strategy": ["cpu", "hdn", "gds", "gputn"],
                       "n_nodes": [2]},
                 base={"nbytes": 16 * 1024})


def _keys(sweep):
    ex = sweep.experiment
    return [(ex.name, ex.resolve_params(p)) for p in sweep.sweep_points()]


class TestWriteThroughRaces:
    def test_reader_races_worker_puts(self, tmp_path):
        """A reader polling during a parallel sweep sees miss-or-complete."""
        sweep = _sweep()
        cache = ResultCache(tmp_path)
        reader = ResultCache(tmp_path)  # separate counters, same files
        fingerprint = {}
        partials = []
        stop = threading.Event()

        def poll() -> None:
            while not stop.is_set():
                for name, params in _keys(sweep):
                    hit = reader.get(name, params, fingerprint["fp"])
                    if hit is not None:
                        partials.append(hit.to_json())

        records = Sweep(sweep.experiment, points=[{"strategy": "cpu",
                                                   "n_nodes": 2,
                                                   "nbytes": 16 * 1024}]
                        ).run(cache=cache)
        fingerprint["fp"] = records[0].config_fingerprint
        poller = threading.Thread(target=poll)
        poller.start()
        try:
            fresh = sweep.run(jobs=4, cache=cache)
        finally:
            stop.set()
            poller.join()

        # Anything the racing reader observed was a complete record.
        final = {r.to_json() for r in fresh}
        assert set(partials) <= final
        # And the cache ends fully populated: a rerun is all hits.
        rerun_cache = ResultCache(tmp_path)
        again = sweep.run(jobs=4, cache=rerun_cache)
        assert rerun_cache.hits == 4 and rerun_cache.misses == 0
        assert [r.to_json() for r in again] == [r.to_json() for r in fresh]

    def test_worker_side_puts_populate_every_point(self, tmp_path):
        cache = ResultCache(tmp_path)
        fresh = _sweep().run(jobs=4, cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        for record in fresh:
            hit = cache.get(record.experiment, record.params,
                            record.config_fingerprint)
            assert hit is not None and hit.to_json() == record.to_json()

    def test_torn_entry_from_dead_worker_reads_as_miss(self, tmp_path):
        """Half-written entry (writer killed pre-rename) -> miss -> repair."""
        cache = ResultCache(tmp_path)
        fresh = _sweep().run(jobs=2, cache=cache)
        victim = fresh[2]
        path = cache.path_for_key(victim.cache_key())
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])

        probe = ResultCache(tmp_path)
        assert probe.get(victim.experiment, victim.params,
                         victim.config_fingerprint) is None
        assert probe.misses == 1

        # The next parallel sweep treats it as a hole, re-simulates it
        # byte-identically, and the worker's put repairs the entry.
        repair_cache = ResultCache(tmp_path)
        again = _sweep().run(jobs=2, cache=repair_cache)
        assert repair_cache.hits == 3 and repair_cache.misses == 1
        assert [r.to_json() for r in again] == [r.to_json() for r in fresh]
        assert path.read_bytes() == blob
