"""ResultCache resilience: torn, truncated or garbage entries must read
as a miss -- never raise -- and the next store replaces them cleanly."""

import json

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.record import RunRecord


def _record(seed=1):
    return RunRecord(experiment="robust", params={"seed": seed},
                     config_fingerprint="cafebabe00000000",
                     metrics={"value": seed * 10}, hazards=0)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _entry_path(cache, record):
    return cache.path_for_key(record.cache_key())


def _get(cache, record):
    return cache.get(record.experiment, record.params,
                     record.config_fingerprint)


CORRUPTIONS = {
    "empty": b"",
    "truncated-json": None,  # filled in below from a real entry
    "binary-garbage": b"\x00\xff\x13\x37" * 64,
    "wrong-schema": json.dumps({"not": "a RunRecord"}).encode(),
    "valid-json-wrong-types": json.dumps(
        {"experiment": 1, "params": [], "config_fingerprint": None,
         "metrics": 2, "hazards": "x", "spans": 0, "code_version": 1}
    ).encode(),
}


@pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
def test_corrupt_entry_reads_as_miss(cache, kind):
    record = _record()
    path = cache.put(record)
    payload = CORRUPTIONS[kind]
    if payload is None:  # torn write: first half of the real entry
        payload = path.read_bytes()[: len(path.read_bytes()) // 2]
    path.write_bytes(payload)

    assert _get(cache, record) is None
    assert cache.misses == 1 and cache.hits == 0
    assert path.exists(), "a miss must not delete the entry"


def test_corrupt_entry_is_replaced_by_next_put(cache):
    record = _record()
    path = cache.put(record)
    path.write_bytes(b"{torn")
    assert _get(cache, record) is None

    cache.put(record)
    fresh = _get(cache, record)
    assert fresh is not None
    assert fresh.metrics == record.metrics


def test_missing_entry_is_a_plain_miss(cache):
    assert _get(cache, _record(seed=99)) is None
    assert cache.misses == 1


def test_unreadable_entry_is_a_miss_not_an_error(cache):
    record = _record()
    path = cache.put(record)
    path.chmod(0o000)
    try:
        got = _get(cache, record)
    finally:
        path.chmod(0o644)
    # Root ignores file modes on some containers; accept either a clean
    # miss or a successful read -- what is forbidden is an exception.
    assert got is None or got.metrics == record.metrics


def test_healthy_roundtrip_still_hits(cache):
    record = _record(seed=3)
    cache.put(record)
    got = _get(cache, record)
    assert got is not None and got.metrics == {"value": 30}
    assert cache.hits == 1 and cache.misses == 0


def test_clear_removes_orphaned_tmp_files(cache):
    """A put() killed between mkstemp and rename leaves a *.tmp orphan in
    the shard; clear() must sweep it (it is not counted as an entry)."""
    record = _record()
    path = cache.put(record)
    orphan = path.parent / "deadbeef.tmp"
    orphan.write_text("half-written record")

    assert cache.clear() == 1  # orphans are not entries
    assert not orphan.exists()
    assert not path.exists()
    assert len(cache) == 0


def test_clear_sweeps_tmp_even_with_no_entries(cache):
    record = _record()
    path = cache.put(record)
    path.unlink()  # shard dir remains, holding only the orphan
    orphan = path.parent / "0123abcd.tmp"
    orphan.write_text("{")

    assert cache.clear() == 0
    assert not orphan.exists()
