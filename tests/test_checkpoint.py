"""repro.checkpoint: format integrity, engine snapshot/restore, and the
byte-identical resume contract (DESIGN.md §12).

Three layers under test, cheapest first:

* the on-disk format -- versioned, fingerprinted, hash-verified; every
  corruption or identity mismatch must raise :class:`CheckpointError`
  (the invalidation rule is "fall back to a from-scratch run");
* the engine primitive -- ``Simulator.restore(Simulator.snapshot())``
  interposed at arbitrary mid-run instants must not perturb the
  continuation (heap order, FIFO tie-breaks, seeded tie-break RNG);
* the experiment loop -- checkpointed, interrupted-and-resumed, and
  prefix-shared runs must all produce RunRecords byte-identical to a
  plain uninterrupted execution.
"""

import pickle

import pytest

from repro.apps import ResumableRingExperiment
from repro.checkpoint import (
    CheckpointConfig,
    CheckpointError,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    point_fingerprint,
    prune_checkpoints,
    read_header,
    save_checkpoint,
)
from repro.config import default_config
from repro.runtime.experiment import Experiment
from repro.runtime.record import config_fingerprint
from repro.sim import SimulationError, Simulator

try:
    from hypothesis import given
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test extra
    HAVE_HYPOTHESIS = False

WORLD = {"payload": [1, 2, {"three": (4, 5)}], "shared": None}


def _save(tmp_path, *, point_fp="a" * 24, sim_now_ns=1000, world=WORLD,
          **over):
    fields = dict(experiment="exp", point_fp=point_fp,
                  config_fp="cafebabe", sim_now_ns=sim_now_ns)
    fields.update(over)
    return save_checkpoint(str(tmp_path), world, **fields)


class TestFormat:
    def test_round_trip_preserves_world_and_header(self, tmp_path):
        shared = {"k": "v"}
        world = {"a": shared, "b": shared}
        path = _save(tmp_path, world=world, extra={"interval_ns": 10})
        out, header = load_checkpoint(path, expect_point_fp="a" * 24,
                                      expect_config_fp="cafebabe")
        assert out == world
        assert out["a"] is out["b"], "object identity must survive"
        assert header["experiment"] == "exp"
        assert header["sim_now_ns"] == 1000
        assert header["extra"] == {"interval_ns": 10}
        assert read_header(path) == header

    def test_skip_existing_leaves_first_write(self, tmp_path):
        path = _save(tmp_path)
        assert _save(tmp_path, world={"other": 1}, skip_existing=True) is None
        assert load_checkpoint(path)[0] == WORLD

    def test_unpicklable_world_raises_checkpoint_error(self, tmp_path):
        def gen():
            yield 1
        live = gen()
        next(live)
        with pytest.raises(CheckpointError, match="not picklable"):
            _save(tmp_path, world={"proc": live})

    def test_not_a_checkpoint_file(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b"ELF\x7f not a checkpoint")
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(str(path))
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            read_header(str(path))

    def test_truncated_payload_fails_integrity(self, tmp_path):
        path = _save(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-7])
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_flipped_payload_byte_fails_integrity(self, tmp_path):
        path = _save(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    @pytest.mark.parametrize("field,value,match", [
        ("format_version", 999, "format version"),
        ("code_version", "0.0.0-other", "code version"),
    ])
    def test_version_mismatches_rejected(self, tmp_path, field, value, match):
        import json
        path = _save(tmp_path)
        with open(path, "rb") as fh:
            magic, header_line, payload = (fh.readline(), fh.readline(),
                                           fh.read())
        header = json.loads(header_line)
        header[field] = value
        with open(path, "wb") as fh:
            fh.write(magic)
            fh.write(json.dumps(header).encode() + b"\n")
            fh.write(payload)
        with pytest.raises(CheckpointError, match=match):
            load_checkpoint(path)

    def test_foreign_fingerprints_rejected(self, tmp_path):
        path = _save(tmp_path)
        with pytest.raises(CheckpointError, match="point fingerprint"):
            load_checkpoint(path, expect_point_fp="b" * 24)
        with pytest.raises(CheckpointError, match="config fingerprint"):
            load_checkpoint(path, expect_config_fp="deadbeef")

    def test_list_latest_prune(self, tmp_path):
        fp, other = "c" * 24, "d" * 24
        for t in (300, 100, 200):
            _save(tmp_path, point_fp=fp, sim_now_ns=t)
        _save(tmp_path, point_fp=other, sim_now_ns=999)
        assert [t for t, _ in list_checkpoints(str(tmp_path), fp)] == \
            [100, 200, 300]
        assert latest_checkpoint(str(tmp_path), fp)[0] == 300
        # below_ns is strict: a snapshot *at* the divergence horizon has
        # already consumed tail-dependent state.
        assert latest_checkpoint(str(tmp_path), fp, below_ns=200)[0] == 100
        assert latest_checkpoint(str(tmp_path), fp, below_ns=100) is None
        prune_checkpoints(str(tmp_path), fp, keep=2)
        assert [t for t, _ in list_checkpoints(str(tmp_path), fp)] == \
            [200, 300]
        prune_checkpoints(str(tmp_path), fp, keep=0)
        assert list_checkpoints(str(tmp_path), fp) == []
        assert latest_checkpoint(str(tmp_path), other)[0] == 999

    def test_point_fingerprint_tracks_identity(self):
        base = point_fingerprint("exp", {"a": 1}, "cafe")
        assert base == point_fingerprint("exp", {"a": 1}, "cafe")
        assert base != point_fingerprint("exp", {"a": 2}, "cafe")
        assert base != point_fingerprint("exp", {"a": 1}, "beef")
        assert base != point_fingerprint("other", {"a": 1}, "cafe")
        assert base != point_fingerprint("exp", {"a": 1}, "cafe",
                                         code_version="0.0.0-other")


class TestCheckpointConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="interval_ns"):
            CheckpointConfig(directory=str(tmp_path), interval_ns=0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointConfig(directory=str(tmp_path), interval_ns=1, keep=-1)


def _traced_sim(delays, seed, trace):
    """A sim whose callbacks log ``(now, tag)`` and occasionally chain."""
    sim = Simulator()
    if seed is not None:
        sim.seed_tiebreaks(seed)

    def fire(tag, chain_delay):
        trace.append((sim.now, tag))
        if chain_delay:
            sim.call_later(chain_delay, fire, tag + 1000, 0)

    for i, d in enumerate(delays):
        # Every third callback chains a follow-up, so the heap keeps
        # evolving past the initial schedule.
        sim.call_later(d, fire, i, (d % 7) if i % 3 == 0 else 0)
    return sim


class TestSimulatorSnapshotRestore:
    def test_snapshot_while_running_raises(self):
        sim = Simulator()
        boom = []

        def probe():
            try:
                sim.snapshot()
            except SimulationError as exc:
                boom.append(exc)

        sim.call_later(1, probe)
        sim.run()
        assert boom, "snapshot() inside the run loop must refuse"

    def test_restore_rejects_unknown_version(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="snapshot version"):
            sim.restore({"version": 2})

    if HAVE_HYPOTHESIS:
        @given(st.data())
        def test_midrun_round_trip_preserves_continuation(self, data):
            """snapshot()+restore() interposed at a fuzzer-chosen instant
            is invisible: the continuation (order, times, tie-breaks,
            event count) matches a never-interrupted twin run."""
            delays = data.draw(st.lists(st.integers(0, 40),
                                        min_size=1, max_size=25))
            seed = data.draw(st.none() | st.integers(0, 2 ** 16))

            ref_trace = []
            ref = _traced_sim(delays, seed, ref_trace)
            ref.run()

            cut = data.draw(st.integers(0, max(delays) + 6))
            got_trace = []
            sim = _traced_sim(delays, seed, got_trace)
            sim.run(until=cut)
            state = sim.snapshot()
            # The round trip proper: restore must accept its own output,
            # and a second snapshot must agree on every scalar plus the
            # heap as an ordered key multiset.
            sim.restore(state)
            again = sim.snapshot()
            assert again["now"] == state["now"] == cut
            assert again["seq"] == state["seq"]
            assert again["events_processed"] == state["events_processed"]
            assert (sorted(e[:4] for e in again["heap"])
                    == sorted(e[:4] for e in state["heap"]))
            assert (state["tiebreak_state"] is None) == (seed is None)
            sim.run()
            assert got_trace == ref_trace
            assert sim.events_processed == ref.events_processed

        @given(st.data())
        def test_round_trip_at_every_grid_instant(self, data):
            """Interposing at *every* multiple of a fuzzer-chosen grid
            (the periodic-checkpoint access pattern) is still invisible."""
            delays = data.draw(st.lists(st.integers(0, 30),
                                        min_size=1, max_size=20))
            grid = data.draw(st.integers(1, 10))
            seed = data.draw(st.none() | st.integers(0, 2 ** 16))

            ref_trace = []
            ref = _traced_sim(delays, seed, ref_trace)
            ref.run()

            got_trace = []
            sim = _traced_sim(delays, seed, got_trace)
            while sim.peek() is not None:
                horizon = ((sim.peek() + grid - 1) // grid) * grid
                sim.run(until=horizon)
                sim.restore(sim.snapshot())
            assert got_trace == ref_trace
            assert sim.events_processed == ref.events_processed


class _DriveOverrider(Experiment):
    name = "custom_drive"

    def drive(self, cluster, ctx, params):  # pragma: no cover - never runs
        cluster.sim.run()


#: Small ring point: ~30 laps (~62k ns of traffic), tail horizon at the
#: default 200_000 ns, so a 50k-ns grid yields snapshots at 50k and 100k
#: -- both before the divergence -- and none after.
POINT = {"rounds": 30}


def _ck(tmp_path, **over):
    fields = dict(directory=str(tmp_path / "ckpt"), interval_ns=50_000)
    fields.update(over)
    return CheckpointConfig(**fields)


class TestCheckpointedExecution:
    def test_drive_override_is_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="overrides drive"):
            _DriveOverrider().execute({}, checkpoint=_ck(tmp_path))

    def test_checkpointed_run_is_byte_identical_to_plain(self, tmp_path):
        exp = ResumableRingExperiment()
        plain = exp.execute(POINT).record.to_json()
        ck = _ck(tmp_path)
        first = exp.execute(POINT, checkpoint=ck)
        assert first.resumed_from_ns is None
        assert first.record.to_json() == plain
        # Second run resumes from the surviving shared-prefix snapshots
        # and must still match byte for byte.
        second = exp.execute(POINT, checkpoint=ck)
        assert second.resumed_from_ns == 100_000
        assert second.record.to_json() == plain

    def test_interrupted_run_resumes_from_own_snapshot(self, tmp_path):
        exp = ResumableRingExperiment()
        ck = _ck(tmp_path, shared_prefix=False)
        p = exp.resolve_params(POINT)
        cfg = exp.configure(p, default_config())
        cfg_fp = config_fingerprint(cfg)
        own_fp = point_fingerprint(exp.name, p, cfg_fp)

        # Emulate a worker killed mid-point: drive two 50k-ns chunks by
        # hand, snapshot each, then abandon the world.
        cluster = exp.build_cluster(p, cfg, False)
        ctx = exp.setup(cluster, p)
        world = {"cluster": cluster, "ctx": ctx, "registry": None}
        for horizon in (50_000, 100_000):
            cluster.sim.run(until=horizon)
            save_checkpoint(ck.directory, world, experiment=exp.name,
                            point_fp=own_fp, config_fp=cfg_fp,
                            sim_now_ns=horizon,
                            extra={"interval_ns": ck.interval_ns})
        del cluster, ctx, world

        resumed = exp.execute(POINT, checkpoint=ck)
        assert resumed.resumed_from_ns == 100_000
        assert resumed.record.to_json() == exp.execute(POINT).record.to_json()
        # Completion clears the point's private snapshots.
        assert list_checkpoints(ck.directory, own_fp) == []

    def test_sibling_resumes_from_shared_prefix_with_tail_overlay(
            self, tmp_path):
        exp = ResumableRingExperiment()
        ck = _ck(tmp_path)
        a = dict(POINT, extra_rounds=0)
        b = dict(POINT, extra_rounds=2)
        exp.execute(a, checkpoint=ck)

        sibling = exp.execute(b, checkpoint=ck)
        assert sibling.resumed_from_ns == 100_000, \
            "sibling must reuse the pre-divergence prefix snapshot"
        plain = exp.execute(b)
        assert sibling.record.to_json() == plain.record.to_json()
        assert sibling.record.metrics["laps"] == 32

    def test_mismatched_snapshot_grid_falls_back_to_scratch(self, tmp_path):
        exp = ResumableRingExperiment()
        exp.execute(POINT, checkpoint=_ck(tmp_path))
        # Same point, different grid: resuming would change the snapshot
        # instants, so the loader must refuse and rebuild from t=0.
        other = exp.execute(POINT,
                            checkpoint=_ck(tmp_path, interval_ns=25_000))
        assert other.resumed_from_ns is None
        assert other.record.to_json() == exp.execute(POINT).record.to_json()

    def test_resume_false_ignores_existing_snapshots(self, tmp_path):
        exp = ResumableRingExperiment()
        ck = _ck(tmp_path)
        exp.execute(POINT, checkpoint=ck)
        cold = exp.execute(POINT, checkpoint=_ck(tmp_path, resume=False))
        assert cold.resumed_from_ns is None

    def test_world_pickle_preserves_shared_identity(self, tmp_path):
        """The cluster object graph is full of aliasing (NIC/GPU share
        buffers, events waited on from several places); the checkpoint
        payload must preserve it, not fan it out into copies."""
        exp = ResumableRingExperiment()
        p = exp.resolve_params(POINT)
        cfg = exp.configure(p, default_config())
        cluster = exp.build_cluster(p, cfg, False)
        ctx = exp.setup(cluster, p)
        cluster.sim.run(until=50_000)
        world = pickle.loads(pickle.dumps(
            {"cluster": cluster, "ctx": ctx, "registry": None}))
        ring = world["ctx"]["ring"]
        assert world["cluster"].sim is ring[0]["nic"].sim, \
            "restored cluster and ring NICs must share one Simulator"
