"""CLI smoke tests and Chrome trace-event export validation."""

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.apps.microbench import MicrobenchExperiment
from repro.runtime import chrome_trace, export_chrome_trace

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, capture_output=True, text=True, timeout=600,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )


class TestCliSmoke:
    def test_fig8_tab1_jobs2(self, tmp_path):
        proc = _run_cli(["fig8", "tab1", "--jobs", "2"], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "Figure 8" in proc.stdout
        assert "Table 1" in proc.stdout
        assert "latency decomposition" in proc.stdout
        assert "qualitative comparison" in proc.stdout

    def test_cached_rerun_identical(self, tmp_path):
        # fig1 is the cheapest sweeping exhibit: empty-kernel launches only.
        first = _run_cli(["fig1", "--jobs", "2"], cwd=tmp_path)
        assert first.returncode == 0, first.stderr
        assert (tmp_path / ".repro-cache").is_dir()
        second = _run_cli(["fig1"], cwd=tmp_path)
        assert second.returncode == 0, second.stderr
        assert second.stdout == first.stdout

    def test_no_cache_flag_skips_cache_dir(self, tmp_path):
        proc = _run_cli(["fig1", "--no-cache"], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert not (tmp_path / ".repro-cache").exists()

    def test_bad_jobs_rejected(self, tmp_path):
        proc = _run_cli(["tab1", "--jobs", "0"], cwd=tmp_path)
        assert proc.returncode != 0


class TestTraceExport:
    @pytest.fixture(scope="class")
    def trace_doc(self):
        execution = MicrobenchExperiment().execute({"strategy": "gputn"})
        return chrome_trace(execution.cluster.tracer)

    def test_required_keys(self, trace_doc):
        assert "traceEvents" in trace_doc
        for event in trace_doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] != "M":
                assert "ts" in event

    def test_ts_monotone(self, trace_doc):
        ts = [e["ts"] for e in trace_doc["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_matched_begin_end_pairs(self, trace_doc):
        begins = Counter((e["pid"], e["tid"], e["name"])
                         for e in trace_doc["traceEvents"] if e["ph"] == "B")
        ends = Counter((e["pid"], e["tid"], e["name"])
                       for e in trace_doc["traceEvents"] if e["ph"] == "E")
        assert begins and begins == ends

    def test_process_thread_metadata(self, trace_doc):
        meta = [e for e in trace_doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == {"node0", "node1"}
        assert "gpu" in threads and "nic" in threads

    def test_file_export_is_valid_json(self, tmp_path):
        execution = MicrobenchExperiment().execute({"strategy": "hdn"})
        path = export_chrome_trace(execution.cluster.tracer,
                                   tmp_path / "out" / "t.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_cli_export_trace_flag(self, tmp_path):
        proc = _run_cli(["fig8", "--export-trace", "traces"], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        files = sorted((tmp_path / "traces").glob("fig8-*.json"))
        assert [f.name for f in files] == [
            "fig8-cpu.json", "fig8-gds.json", "fig8-gputn.json",
            "fig8-hdn.json"]
        for f in files:
            doc = json.loads(f.read_text())
            real = [e for e in doc["traceEvents"] if e["ph"] != "M"]
            ts = [e["ts"] for e in real]
            assert ts == sorted(ts)
            begins = Counter((e["pid"], e["tid"], e["name"])
                             for e in real if e["ph"] == "B")
            ends = Counter((e["pid"], e["tid"], e["name"])
                           for e in real if e["ph"] == "E")
            assert begins == ends

    def test_tracer_convenience_method(self, tmp_path):
        execution = MicrobenchExperiment().execute({"strategy": "gds"})
        path = execution.cluster.tracer.export_chrome(tmp_path / "x.json")
        assert json.loads(Path(path).read_text())["traceEvents"]


class TestStatsCommand:
    def test_smoke_default_microbench(self, tmp_path):
        proc = _run_cli(["stats"], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "microbench (gputn)" in proc.stdout
        assert "sim.events" in proc.stdout
        assert "nic.message_latency_ns" in proc.stdout
        assert "cu_occupancy" in proc.stdout

    def test_json_schema_and_nonzero_counters(self, tmp_path):
        out = tmp_path / "stats.json"
        proc = _run_cli(["stats", "microbench", "degraded", "--json",
                         str(out)], cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(out.read_text())
        assert set(doc) == {"microbench", "degraded"}
        for workload, entry in doc.items():
            assert set(entry) == {"params", "metrics", "telemetry"}
            telemetry = entry["telemetry"]
            assert set(telemetry) <= {"counters", "gauges", "histograms",
                                      "series"}
            counters = telemetry["counters"]
            assert counters["sim.events"] > 0
            assert counters["fabric.link.node0->node1.bytes"] > 0
            latency = telemetry["histograms"]["nic.message_latency_ns"]
            assert latency["count"] > 0
            assert 0 < latency["p50"] <= latency["p99"] <= latency["max"]
        # The degraded run must cross-check its app-level histogram
        # against the study's exact percentiles (within log2 rounding).
        deg = doc["degraded"]
        app = deg["telemetry"]["histograms"]["app.message_latency_ns"]
        exact_p50 = deg["metrics"]["p50_latency_ns"]
        assert exact_p50 / 2 <= app["p50"] <= exact_p50 * 2

    def test_export_trace_emits_counter_tracks(self, tmp_path):
        proc = _run_cli(["stats", "microbench", "--export-trace", "traces"],
                        cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        path = tmp_path / "traces" / "microbench-gputn.json"
        assert path.is_file()
        doc = json.loads(path.read_text())
        kinds = Counter(e["ph"] for e in doc["traceEvents"])
        assert kinds["C"] > 0 and kinds["B"] > 0

    def test_bad_workload_rejected(self, tmp_path):
        proc = _run_cli(["stats", "nonsense"], cwd=tmp_path)
        assert proc.returncode != 0
