"""Tests for collective schedules and ring Allreduce executors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import ring_allreduce_schedule, run_ring_allreduce
from repro.collectives.ring import allreduce_reference
from repro.collectives.schedule import OpKind
from repro.config import default_config


class TestScheduleStructure:
    def test_round_count(self):
        s = ring_allreduce_schedule(0, 8)
        assert s.n_rounds == 14  # 2 * (P - 1)

    def test_each_round_sends_and_recvs(self):
        s = ring_allreduce_schedule(2, 5)
        for rnd in s.rounds:
            kinds = [op.kind for op in rnd]
            assert OpKind.SEND in kinds and OpKind.RECV in kinds

    def test_reduce_only_in_first_phase(self):
        s = ring_allreduce_schedule(1, 4)
        for i, rnd in enumerate(s.rounds):
            has_reduce = any(op.kind is OpKind.REDUCE for op in rnd)
            assert has_reduce == (i < 3)

    def test_ring_neighbors(self):
        s = ring_allreduce_schedule(3, 4)
        for rnd in s.rounds:
            for op in rnd:
                if op.kind is OpKind.SEND:
                    assert op.peer == 0   # right of rank 3 in a 4-ring
                elif op.kind is OpKind.RECV:
                    assert op.peer == 2

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce_schedule(0, 1)
        with pytest.raises(ValueError):
            ring_allreduce_schedule(5, 4)

    @settings(max_examples=30, deadline=None)
    @given(n_ranks=st.integers(min_value=2, max_value=16))
    def test_property_every_chunk_fully_reduced_and_distributed(self, n_ranks):
        """Across all ranks' schedules: each chunk is sent exactly 2(P-1)
        times in total, each rank reduces P-1 distinct chunks, and every
        rank receives every chunk it doesn't compute."""
        schedules = [ring_allreduce_schedule(r, n_ranks) for r in range(n_ranks)]
        total_sends = sum(len(s.sends()) for s in schedules)
        assert total_sends == n_ranks * 2 * (n_ranks - 1)
        for s in schedules:
            reduced = [op.chunk for rnd in s.rounds for op in rnd
                       if op.kind is OpKind.REDUCE]
            assert len(set(reduced)) == n_ranks - 1
            received = {op.chunk for rnd in s.rounds for op in rnd
                        if op.kind is OpKind.RECV}
            assert len(received) == n_ranks  # touches every chunk index

    @settings(max_examples=20, deadline=None)
    @given(n_ranks=st.integers(min_value=2, max_value=12))
    def test_property_send_matches_peer_recv(self, n_ranks):
        """What rank r sends in round k is exactly what rank r+1 expects
        to receive in round k."""
        schedules = [ring_allreduce_schedule(r, n_ranks) for r in range(n_ranks)]
        for r, s in enumerate(schedules):
            peer = schedules[(r + 1) % n_ranks]
            for k, rnd in enumerate(s.rounds):
                send = next(op for op in rnd if op.kind is OpKind.SEND)
                recv = next(op for op in peer.rounds[k]
                            if op.kind is OpKind.RECV)
                assert send.chunk == recv.chunk


class TestReference:
    def test_reference_matches_float64_sum_closely(self):
        rng = np.random.default_rng(0)
        vecs = [rng.random(64, dtype=np.float32) for _ in range(4)]
        ref = allreduce_reference(vecs, 4)
        exact = np.sum(np.stack(vecs).astype(np.float64), axis=0)
        assert np.allclose(ref, exact, rtol=1e-5)


class TestExecutors:
    @pytest.mark.parametrize("strategy", ("cpu", "hdn", "gds", "gputn"))
    def test_bitwise_correct(self, strategy):
        r = run_ring_allreduce(strategy=strategy, n_nodes=4, nbytes=64 * 1024)
        assert r.correct

    @pytest.mark.parametrize("strategy", ("cpu", "hdn", "gds", "gputn"))
    def test_no_memory_hazards(self, strategy):
        r = run_ring_allreduce(strategy=strategy, n_nodes=3, nbytes=48 * 1024)
        assert r.memory_hazards == 0

    def test_two_nodes_minimum(self):
        r = run_ring_allreduce(strategy="gputn", n_nodes=2, nbytes=32 * 1024)
        assert r.correct

    def test_ragged_payload_padded(self):
        # 100 KB over 3 nodes does not divide; the runner pads.
        r = run_ring_allreduce(strategy="cpu", n_nodes=3, nbytes=100_000)
        assert r.correct
        assert r.nbytes % (3 * 4) == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError):
            run_ring_allreduce(strategy="rdma2000")

    @settings(max_examples=6, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=6),
        kbytes=st.sampled_from([16, 48, 96]),
        strategy=st.sampled_from(["hdn", "gputn"]),
    )
    def test_property_any_shape_correct(self, n_nodes, kbytes, strategy):
        r = run_ring_allreduce(strategy=strategy, n_nodes=n_nodes,
                               nbytes=kbytes * 1024)
        assert r.correct and r.memory_hazards == 0


class TestFigure10Shape:
    """The paper's Figure 10 claims as assertions (reduced sweep)."""

    @pytest.fixture(scope="class")
    def study(self):
        from repro.apps.allreduce_bench import strong_scaling_study

        return strong_scaling_study(default_config(),
                                    node_counts=(2, 8, 16, 24, 32),
                                    nbytes=8 * 1024 * 1024)

    def test_gpu_strategies_beat_cpu_at_small_node_counts(self, study):
        for s in ("hdn", "gds", "gputn"):
            assert study.speedup_vs_cpu(s)[0] > 1.0, s

    def test_hdn_crosses_below_cpu_near_24_nodes(self, study):
        crossover = study.crossover_node_count("hdn")
        assert crossover is not None and 16 <= crossover <= 32

    def test_gds_and_gputn_never_cross(self, study):
        assert study.crossover_node_count("gds") is None
        assert study.crossover_node_count("gputn") is None

    def test_gputn_beats_hdn_at_scale(self, study):
        at32 = {s: study.speedup_vs_cpu(s)[-1] for s in ("hdn", "gds", "gputn")}
        assert at32["gputn"] > at32["gds"] > at32["hdn"]

    def test_hdn_declines_monotonically(self, study):
        sp = study.speedup_vs_cpu("hdn")
        assert all(a >= b for a, b in zip(sp, sp[1:]))

    def test_cpu_busy_time_lower_for_gputn_than_hdn(self):
        """Table 1's CPU-overhead column, quantified: GPU-TN keeps the
        CPU off the critical path."""
        hdn = run_ring_allreduce(strategy="hdn", n_nodes=4, nbytes=1024 * 1024)
        tn = run_ring_allreduce(strategy="gputn", n_nodes=4, nbytes=1024 * 1024)
        assert tn.cpu_busy_ns < hdn.cpu_busy_ns
